"""Persistence benchmark: warm-start sessions and on-disk sizes.

Two claims of the persistence layer (:mod:`repro.persist`) are
measured and asserted:

1. **Warm start beats cold compile.**  A cold batch pays the f-tree
   optimiser for every canonical template (Figure 9: optimisation
   dominates).  A *warm-start* batch -- a fresh session, as after a
   process restart, pointed at a populated :class:`~repro.persist.
   PlanStore` -- reads every plan from disk instead of compiling, so
   end-to-end latency must drop.

2. **Factorised files are smaller than flat CSV on hierarchical
   data.**  A factorised representation *is* the compressed form of
   its relation (the Szepkuti/EMBANKS argument for compact physical
   organisation), so serialising the f-rep of a many-to-many join
   result must take fewer bytes than the flattened CSV equivalent --
   the codec applies no compression pass of its own.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.engine import FDB
from repro.persist import PlanStore, load, save
from repro.query.query import Query
from repro.relational.csvio import dump_relation
from repro.relational.database import Database
from repro.service import QuerySession
from repro.workloads import random_database, repeated_query_workload


def _params():
    if smoke_mode():
        return dict(
            relations=3, attributes=6, tuples=6, equalities=2,
            unique=2, total=6, keys=4, fanout=6,
        )
    if full_scale():
        return dict(
            relations=8, attributes=24, tuples=10, equalities=6,
            unique=8, total=48, keys=10, fanout=80,
        )
    return dict(
        relations=6, attributes=20, tuples=10, equalities=6,
        unique=6, total=24, keys=8, fanout=40,
    )


def _setup():
    p = _params()
    db = random_database(
        relations=p["relations"],
        attributes=p["attributes"],
        tuples=p["tuples"],
        domain=20,
        seed=21,
    )
    workload = repeated_query_workload(
        db,
        unique=p["unique"],
        total=p["total"],
        equalities=p["equalities"],
        seed=21,
    )
    return p, db, workload


def _run_batch(db, workload, plan_store=None):
    start = time.perf_counter()
    with QuerySession(db, plan_store=plan_store) as session:
        counts = [r.count() for r in session.run_batch(workload)]
        elapsed = time.perf_counter() - start
        stats = session.stats
    return counts, elapsed, stats


@pytest.mark.benchmark(group="persist")
def test_persist_warm_start_beats_cold_compile(tmp_path):
    p, db, workload = _setup()
    store_dir = str(tmp_path / "plans")

    # Cold compile: no store, every template pays the optimiser.
    cold_counts, cold_time, cold_stats = _run_batch(db, workload)

    # Populate the store (a cold run that also writes through).
    _, populate_time, populate_stats = _run_batch(
        db, workload, PlanStore(store_dir)
    )

    # Warm start: a *fresh* session and store handle -- the situation
    # after a process restart -- reads every plan from disk.
    warm_counts, warm_time, warm_stats = _run_batch(
        db, workload, PlanStore(store_dir)
    )

    emit(
        "Persistence: cold compile vs warm start from a plan store",
        "\n".join(
            [
                f"workload: {len(workload)} queries, "
                f"{cold_stats.plan_misses} canonical templates",
                f"cold (compile every template):  {cold_time:8.3f} s",
                f"cold + write-through store:     {populate_time:8.3f} s",
                f"warm start (store populated):   {warm_time:8.3f} s  "
                f"({cold_time / max(warm_time, 1e-9):5.1f}x, "
                f"{warm_stats.store_hits} store hits)",
            ]
        ),
    )

    bench_json(
        "persist",
        {
            "workload_queries": len(workload),
            "canonical_templates": cold_stats.plan_misses,
            "cold_seconds": cold_time,
            "populate_seconds": populate_time,
            "warm_seconds": warm_time,
            "warm_speedup": cold_time / max(warm_time, 1e-9),
            "store_hits": warm_stats.store_hits,
            "store_writes": populate_stats.store_misses,
        },
        workload=_params(),
    )

    # Correctness: the warm path returns identical results.
    assert warm_counts == cold_counts
    # Every template came from disk; the optimiser never ran warm.
    assert warm_stats.plan_misses == 0
    assert warm_stats.store_hits == cold_stats.plan_misses
    # Acceptance: warm start with a populated store beats cold compile
    # (not timed at smoke scale).
    if not smoke_mode():
        assert warm_time < cold_time, (
            f"warm start not faster: warm {warm_time:.3f}s "
            f"vs cold {cold_time:.3f}s"
        )


@pytest.mark.benchmark(group="persist")
def test_persist_factorised_smaller_than_flat_csv(tmp_path):
    p = _params()
    keys, fanout = p["keys"], p["fanout"]

    # A many-to-many join: `fanout` orders and `fanout` listings per
    # key -- the hierarchical shape factorisation compresses best.
    db = Database()
    db.add_rows(
        "Orders",
        ("oid", "o_key"),
        [(i, i % keys) for i in range(keys * fanout)],
    )
    db.add_rows(
        "Listings",
        ("l_key", "price"),
        [(i % keys, 1000 + i) for i in range(keys * fanout)],
    )
    query = Query.make(
        ["Orders", "Listings"], equalities=[("o_key", "l_key")]
    )
    fr = FDB(db).evaluate(query)

    fact_path = str(tmp_path / "result.fdbp")
    start = time.perf_counter()
    save(fr, fact_path)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reloaded = load(fact_path)
    load_seconds = time.perf_counter() - start
    assert reloaded.tree == fr.tree and reloaded.data == fr.data

    flat_path = str(tmp_path / "result.csv")
    dump_relation(fr.to_relation("flat"), flat_path)

    fact_bytes = os.path.getsize(fact_path)
    flat_bytes = os.path.getsize(flat_path)

    emit(
        "Persistence: serialised factorised result vs flat CSV",
        "\n".join(
            [
                f"join result: {fr.count()} tuples, "
                f"{fr.size()} singletons",
                f"factorised file: {fact_bytes:10d} B  "
                f"(saved {save_seconds:.4f}s, "
                f"loaded {load_seconds:.4f}s)",
                f"flat CSV:        {flat_bytes:10d} B  "
                f"({flat_bytes / max(fact_bytes, 1):5.1f}x larger)",
            ]
        ),
    )

    bench_json(
        "persist_sizes",
        {
            "result_tuples": fr.count(),
            "result_singletons": fr.size(),
            "factorised_bytes": fact_bytes,
            "flat_csv_bytes": flat_bytes,
            "compression_ratio": flat_bytes / max(fact_bytes, 1),
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
        },
        workload=p,
    )

    # Structural, not timing-dependent: asserted at every scale.
    assert fact_bytes < flat_bytes, (
        f"factorised file ({fact_bytes} B) not smaller than flat "
        f"CSV ({flat_bytes} B)"
    )
