"""Figure 9 (Experiment 2): optimisation time, full search vs greedy.

Expected shapes (paper): the full-search time grows with the search
space (larger L, smaller K); the greedy heuristic is polynomial and
2-3 orders of magnitude faster.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_json, emit, full_scale
from repro.experiments import exp2, format_table
from repro.experiments.exp2 import run_experiment2


def _params():
    if full_scale():
        return dict(
            k_values=tuple(range(1, 9)),
            l_values=tuple(range(1, 7)),
            repeats=3,
        )
    return dict(k_values=(2, 5), l_values=(1, 2, 4), repeats=2)


@pytest.mark.benchmark(group="fig9")
def test_fig9_optimiser_times(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment2(**_params()), rounds=1, iterations=1
    )
    emit(
        "Figure 9: optimisation time, full search (top) vs greedy",
        format_table(
            ["K", "L", "t full [s]", "t greedy [s]", "speedup"],
            [
                [
                    r.input_equalities,
                    r.query_equalities,
                    r.full_time_seconds,
                    r.greedy_time_seconds,
                    (
                        r.full_time_seconds
                        / max(r.greedy_time_seconds, 1e-9)
                    ),
                ]
                for r in rows
            ],
        ),
    )
    # Greedy must dominate full search overall (paper: 2-3 orders of
    # magnitude); assert on aggregate to tolerate tiny-L noise.
    total_full = sum(r.full_time_seconds for r in rows)
    total_greedy = sum(r.greedy_time_seconds for r in rows)
    bench_json(
        "fig9_optimiser_time",
        {
            "rows": rows,
            "total_full_seconds": total_full,
            "total_greedy_seconds": total_greedy,
            "greedy_speedup": total_full / max(total_greedy, 1e-9),
        },
    )
    assert total_greedy < total_full


@pytest.mark.benchmark(group="fig9")
def test_fig9_greedy_single_point(benchmark):
    """Microbenchmark: one greedy optimisation (K=3, L=3)."""
    from repro.optimiser.ftree_optimiser import (
        FTreeOptimiser,
        query_classes_and_edges,
    )
    from repro.optimiser.greedy import greedy_fplan
    from repro.workloads import (
        random_database,
        random_followup_equalities,
        random_query,
    )

    db = random_database(4, 10, 10, seed=11)
    query = random_query(db, 3, seed=12)
    classes, edges = query_classes_and_edges(db, query)
    tree, _ = FTreeOptimiser(classes, edges).optimise()
    eqs = random_followup_equalities(tree, 3, seed=13)
    plan = benchmark(lambda: greedy_fplan(tree, eqs))
    assert plan.output_tree.satisfies_path_constraint()
