"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper figures -- these quantify *why* the design is as it is:

- **f-tree choice**: factorisation size with the optimal f-tree vs a
  deliberately bad (chain) f-tree over the same query -- the reason
  query optimisation has the second objective (Section 4);
- **swap algorithm**: the Figure 4 priority-queue swap vs the naive
  sort-based reference implementation;
- **cover solver**: the exact Fraction simplex vs scipy's linprog
  (when scipy is available);
- **plan search**: exhaustive vs greedy end-to-end on data (the
  execution-time consequence of Figure 6's quality gap).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import bench_json, emit
from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FNode, FTree
from repro.costs.cost_model import s_tree
from repro.experiments.report import format_table
from repro.ops import swap, swap_reference
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    query_classes_and_edges,
)
from repro.query.hypergraph import Hypergraph
from repro.query.query import Query
from repro.workloads import random_database, random_equalities


def _workload(n=800, seed=3):
    db = random_database(3, 9, n, domain=40, seed=seed)
    query = Query.make(
        db.names, equalities=random_equalities(db, 2, seed=seed + 1)
    )
    return db, query


def _chain_tree(classes, edges) -> FTree:
    """A worst-case f-tree: one chain in path-constraint-safe order.

    Built by repeatedly taking, per connected component, any class and
    nesting the rest below it -- a valid but unoptimised structure.
    """
    components = edges.components(list(classes))
    roots = []
    for component in components:
        node = None
        for label in reversed(list(component)):
            node = FNode(label, [] if node is None else [node])
        roots.append(node)
    return FTree(roots, edges)


@pytest.mark.benchmark(group="ablation-ftree")
def test_ablation_ftree_choice(benchmark):
    """Optimal vs chain f-tree: representation size and cost."""
    db, query = _workload()
    classes, edges = query_classes_and_edges(db, query)
    optimal, cost = FTreeOptimiser(classes, edges).optimise()
    chain = _chain_tree(classes, edges)
    assert chain.satisfies_path_constraint()

    def build_both():
        a = factorise(list(db), optimal)
        b = factorise(list(db), chain)
        return a, b

    opt_data, chain_data = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    opt_fr = FactorisedRelation(optimal, opt_data)
    chain_fr = FactorisedRelation(chain, chain_data)
    emit(
        "Ablation: f-tree choice",
        format_table(
            ["tree", "s(T)", "size [singletons]"],
            [
                ["optimal", float(cost), opt_fr.size()],
                [
                    "chain",
                    float(s_tree(chain)),
                    chain_fr.size(),
                ],
            ],
        ),
    )
    bench_json(
        "ablation_ftree_choice",
        {
            "optimal_cost": float(cost),
            "optimal_singletons": opt_fr.size(),
            "chain_cost": float(s_tree(chain)),
            "chain_singletons": chain_fr.size(),
            "size_ratio": chain_fr.size() / max(opt_fr.size(), 1),
        },
    )
    assert opt_fr.same_relation(chain_fr)
    # The optimal tree must never lose; typically it wins big.
    assert opt_fr.size() <= chain_fr.size()


@pytest.mark.benchmark(group="ablation-swap")
@pytest.mark.parametrize("algorithm", ["priority-queue", "reference"])
def test_ablation_swap_algorithms(benchmark, algorithm):
    """Figure 4's PQ swap vs the naive reference implementation."""
    db, query = _workload(n=1500)
    classes, edges = query_classes_and_edges(db, query)
    tree, _ = FTreeOptimiser(classes, edges).optimise()
    fr = FactorisedRelation(tree, factorise(list(db), tree))
    # Pick a swappable (parent, child) pair.
    pair = None
    for node in fr.tree.iter_nodes():
        parent = fr.tree.parent_of(node)
        if parent is not None:
            pair = (min(parent.label), min(node.label))
            break
    assert pair is not None
    fn = swap if algorithm == "priority-queue" else swap_reference
    result = benchmark(lambda: fn(fr, *pair))
    assert result.same_relation(fr)


@pytest.mark.benchmark(group="ablation-cover")
def test_ablation_cover_solvers(benchmark):
    """Exact Fraction simplex vs scipy linprog on random covers."""
    rng = random.Random(5)
    instances = []
    for _ in range(50):
        attrs = [f"v{i}" for i in range(rng.randint(3, 8))]
        edges = [
            set(rng.sample(attrs, rng.randint(2, min(3, len(attrs)))))
            for _ in range(rng.randint(2, 5))
        ]
        classes = [{a} for a in sorted(set().union(*edges))]
        instances.append((classes, edges))

    from repro.costs.edge_cover import fractional_edge_cover

    def run_exact():
        return [
            fractional_edge_cover(c, e) for c, e in instances
        ]

    exact = benchmark(run_exact)
    try:
        from repro.costs.edge_cover import (
            fractional_edge_cover_scipy,
        )

        approx = [
            fractional_edge_cover_scipy(c, e) for c, e in instances
        ]
        for fraction_value, float_value in zip(exact, approx):
            assert abs(float(fraction_value) - float_value) < 1e-9
    except ImportError:  # scipy genuinely absent
        pass


@pytest.mark.benchmark(group="ablation-plan")
@pytest.mark.parametrize("planner", ["exhaustive", "greedy"])
def test_ablation_plan_search_end_to_end(benchmark, planner):
    """Plan quality consequence: execute both planners' plans."""
    from repro.engine import FDB
    from repro.workloads import random_followup_equalities

    db, query = _workload(n=400, seed=9)
    fdb = FDB(db, plan_search=planner)
    fr = fdb.evaluate(query)
    eqs = random_followup_equalities(fr.tree, 2, seed=4)
    followup = Query.make([], equalities=eqs)

    result, plan = benchmark(
        lambda: fdb.evaluate_on(fr, followup)
    )
    assert result.count() >= 0
