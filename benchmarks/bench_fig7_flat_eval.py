"""Figure 7 (Experiment 3): query evaluation on flat data.

Six panels: result sizes (top) and evaluation times (bottom) for FDB,
RDB and SQLite on (a) three ternary relations of N tuples with uniform
values, (b) the same with Zipf values, (c) the combinatorial four-
relation dataset vs the number K of equalities.

Expected shapes (paper): factorised results are orders of magnitude
smaller than flat results with the gap growing in N (different power-
law exponents); evaluation times are roughly proportional to result
sizes; relational engines hit the timeout on the large many-to-many
configurations (reported as DNF); Zipf slightly widens the gap; on the
combinatorial dataset FDB factorises up to ~5x10^8 flat values into a
few thousand singletons.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.experiments import exp3, format_table
from repro.experiments.exp3 import run_experiment3


def _params():
    if full_scale():
        return dict(
            sizes=(1000, 3162, 10000, 31623, 100000),
            k_values=(2, 3, 4),
            distributions=("uniform", "zipf"),
            timeout=100.0,
            include_combinatorial=True,
            combinatorial_k=tuple(range(1, 9)),
        )
    return dict(
        sizes=(1000, 3162),
        k_values=(2, 3),
        distributions=("uniform", "zipf"),
        timeout=45.0,
        include_combinatorial=True,
        combinatorial_k=(1, 2, 4, 6),
    )


@pytest.mark.benchmark(group="fig7")
def test_fig7_flat_evaluation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment3(**_params()), rounds=1, iterations=1
    )
    emit(
        "Figure 7: sizes and times on flat data "
        "(FDB vs RDB vs SQLite)",
        format_table(exp3.headers(), exp3.as_cells(rows)),
    )
    object_eval = sum(r.fdb_object_eval_seconds for r in rows)
    arena_eval = sum(r.fdb_arena_eval_seconds for r in rows)
    bench_json(
        "fig7_flat_eval",
        {
            "rows": rows,
            "object_eval_seconds": object_eval,
            "arena_eval_seconds": arena_eval,
            "arena_eval_speedup": object_eval / max(arena_eval, 1e-9),
        },
    )
    # Encoding acceptance: with the optimiser factored out, evaluating
    # the paper workloads (factorise + size + count over the optimal
    # tree) in the arena encoding must be >= 2x faster than the object
    # encoding in aggregate.  (Not timed at smoke scale.)
    if not smoke_mode():
        assert object_eval >= 2.0 * arena_eval, (
            f"arena evaluation not >= 2x over objects: "
            f"object {object_eval:.3f}s vs arena {arena_eval:.3f}s"
        )
    # Shape 1: factorised never larger than flat (modulo empties).
    for row in rows:
        if row.flat_size_elements > 0 and not math.isnan(
            row.flat_size_elements
        ):
            assert row.fdb_size_singletons <= row.flat_size_elements

    # Shape 2: on the combinatorial dataset the gap is dramatic for
    # small K (the paper: 500M values vs <4k singletons).
    combinatorial = [
        r
        for r in rows
        if r.dataset == "combinatorial"
        and r.distribution == "uniform"
        and r.equalities <= 2
        and r.flat_size_elements > 0
    ]
    for row in combinatorial:
        assert (
            row.flat_size_elements
            >= 100 * row.fdb_size_singletons
        )

    # Shape 3: the size gap grows with N on non-empty scaling rows.
    by_k = {}
    for r in rows:
        if (
            r.dataset == "scaling"
            and r.distribution == "uniform"
            and r.fdb_size_singletons > 0
        ):
            by_k.setdefault(r.equalities, []).append(r)
    for series in by_k.values():
        series.sort(key=lambda r: r.tuples)
        if len(series) >= 2:
            first, last = series[0], series[-1]
            ratio_first = (
                first.flat_size_elements
                / max(first.fdb_size_singletons, 1)
            )
            ratio_last = (
                last.flat_size_elements
                / max(last.fdb_size_singletons, 1)
            )
            assert ratio_last >= 0.5 * ratio_first  # non-shrinking gap
