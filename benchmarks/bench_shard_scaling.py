"""Shard/worker scaling: batch throughput across the execution layer.

The ROADMAP's production north-star needs the batch path to scale with
hardware, not just with cache hits.  This benchmark runs one
deduplicated workload through the three-layer stack under increasing
parallelism:

- ``serial``      flat database, :class:`~repro.exec.SerialExecutor`
                  (the PR-1 semantics: every unique query pays the
                  optimiser and evaluates in-process);
- ``workers=N``   flat database, :class:`~repro.exec.ParallelExecutor`
                  (cache-missed compilations and evaluations fan out
                  over N pool workers);
- ``shards=NxN``  :class:`~repro.storage.ShardedDatabase` with N
                  shards and N workers (per-(query, shard) tasks whose
                  factorised results are unioned before projection).

Correctness is asserted unconditionally: every configuration must
return the same per-query tuple counts.  The throughput acceptance --
the best parallel configuration beats serial -- is checked whenever
the workload is timed (default and full scale; smoke mode only checks
agreement) and the pool is a real process pool (a thread fallback is
GIL-bound and only proves correctness).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.exec import ParallelExecutor, SerialExecutor
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, repeated_query_workload


def _params():
    if smoke_mode():
        return dict(
            relations=3, attributes=6, tuples=8, equalities=2,
            unique=3, total=6, workers=2, shards=2,
        )
    if full_scale():
        return dict(
            relations=7, attributes=21, tuples=12, equalities=6,
            unique=24, total=48, workers=4, shards=4,
        )
    return dict(
        relations=6, attributes=18, tuples=10, equalities=5,
        unique=16, total=24, workers=4, shards=4,
    )


def _setup():
    p = _params()
    db = random_database(
        relations=p["relations"],
        attributes=p["attributes"],
        tuples=p["tuples"],
        domain=20,
        seed=13,
    )
    workload = repeated_query_workload(
        db,
        unique=p["unique"],
        total=p["total"],
        equalities=p["equalities"],
        seed=13,
    )
    return p, db, workload


def _run(db, workload, executor):
    """One cold session end-to-end; returns (counts, seconds, session)."""
    start = time.perf_counter()
    with QuerySession(db, executor=executor) as session:
        counts = [r.count() for r in session.run_batch(workload)]
        elapsed = time.perf_counter() - start
        stats = session.stats
    return counts, elapsed, stats


@pytest.mark.benchmark(group="shard-scaling")
def test_shard_scaling_throughput():
    p, db, workload = _setup()

    configs = [
        ("serial", db, SerialExecutor()),
        (
            f"workers={p['workers']}",
            db,
            ParallelExecutor(max_workers=p["workers"]),
        ),
        (
            f"shards={p['shards']}x{p['workers']}",
            ShardedDatabase.from_database(db, shards=p["shards"]),
            ParallelExecutor(max_workers=p["workers"]),
        ),
    ]

    rows = []
    counts_by_label = {}
    times = {}
    pool_kinds = {}
    for label, database, executor in configs:
        counts, elapsed, stats = _run(database, workload, executor)
        counts_by_label[label] = counts
        times[label] = elapsed
        pool_kinds[label] = getattr(executor, "pool_kind", None)
        pool_note = (
            f", {pool_kinds[label]} pool" if pool_kinds[label] else ""
        )
        rows.append(
            f"{label:14s} {elapsed:8.3f} s  "
            f"{len(workload) / max(elapsed, 1e-9):7.1f} q/s  "
            f"({stats.plan_misses} compiled, "
            f"{stats.batch_deduped} deduped{pool_note})"
        )

    serial_label = configs[0][0]
    parallel_labels = [label for label, _, _ in configs[1:]]
    best_parallel = min(times[label] for label in parallel_labels)
    rows.append(
        f"best parallel vs serial: "
        f"{times[serial_label] / max(best_parallel, 1e-9):.2f}x"
    )
    emit(
        "Shard/worker scaling: batch throughput per configuration",
        "\n".join(
            [
                f"workload: {len(workload)} queries "
                f"({p['unique']} unique templates), "
                f"database: {db.total_size} tuples "
                f"over {len(db)} relations",
                *rows,
            ]
        ),
    )

    bench_json(
        "shard_scaling",
        {
            "workload_queries": len(workload),
            "unique_templates": p["unique"],
            "database_tuples": db.total_size,
            "seconds": times,
            "pool_kinds": pool_kinds,
            "best_parallel_speedup": (
                times[serial_label] / max(best_parallel, 1e-9)
            ),
        },
        workload=p,
    )

    # Correctness first: every configuration returns the same answers.
    for label, counts in counts_by_label.items():
        assert counts == counts_by_label[serial_label], (
            f"{label} disagrees with {serial_label}"
        )

    # Acceptance: parallelism must pay for itself on a timed workload
    # (smoke mode is too small to time; a thread-fallback pool is
    # GIL-bound and only proves correctness).
    real_pools = all(
        pool_kinds[label] == "process" for label in parallel_labels
    )
    if not smoke_mode() and real_pools:
        assert best_parallel <= times[serial_label], (
            f"parallel execution slower than serial: "
            f"best {best_parallel:.3f}s vs {times[serial_label]:.3f}s"
        )
