"""Plan-cache benchmark: warm vs cold sessions on repeated traffic.

Figure 9 shows optimisation dominating per-query cost in FDB.  The
serving layer (:mod:`repro.service`) amortises it: a cold pass pays the
f-tree optimiser for every arriving query, a warm
:class:`~repro.service.QuerySession` pays it once per *canonical*
query.  The workload is repeated traffic -- a few query templates, each
repeat a reformulated (shuffled/flipped) variant, as produced by
:func:`repro.workloads.repeated_query_workload`.

Acceptance: the warm session must be at least 2x faster end-to-end,
with the optimiser skipped on every cache hit.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.engine import FDB
from repro.service import QuerySession
from repro.workloads import random_database, repeated_query_workload


def _params():
    if smoke_mode():
        return dict(
            relations=3, attributes=6, tuples=6, equalities=2,
            unique=2, total=6,
        )
    if full_scale():
        return dict(
            relations=8, attributes=24, tuples=10, equalities=6,
            unique=8, total=64,
        )
    return dict(
        relations=6, attributes=20, tuples=10, equalities=6,
        unique=6, total=36,
    )


def _setup():
    p = _params()
    db = random_database(
        relations=p["relations"],
        attributes=p["attributes"],
        tuples=p["tuples"],
        domain=20,
        seed=7,
    )
    workload = repeated_query_workload(
        db,
        unique=p["unique"],
        total=p["total"],
        equalities=p["equalities"],
        seed=7,
    )
    return db, workload


def _run_cold(db, workload):
    """Per-query optimisation, the seed's behaviour (no session)."""
    return [FDB(db).evaluate(query).count() for query in workload]


def _run_warm(db, workload):
    """One session, per-query submission: plan-cache hits only."""
    session = QuerySession(db)
    counts = [session.run(query).count() for query in workload]
    return counts, session.stats


def _run_batch(db, workload):
    """One session, batched submission: cache hits + dedup."""
    session = QuerySession(db)
    counts = [r.count() for r in session.run_batch(workload)]
    return counts, session.stats


@pytest.mark.benchmark(group="plan-cache")
def test_plan_cache_warm_speedup(benchmark):
    db, workload = _setup()

    start = time.perf_counter()
    cold_counts = _run_cold(db, workload)
    cold_time = time.perf_counter() - start

    def warm():
        return _run_warm(db, workload)

    # min over rounds: a noisy-neighbour stall on a shared CI runner
    # can only inflate cold_time (which relaxes the assertion below),
    # so warm is the flake risk worth damping.
    (warm_counts, stats) = benchmark.pedantic(
        warm, rounds=3, iterations=1
    )
    warm_time = benchmark.stats.stats.min

    start = time.perf_counter()
    batch_counts, batch_stats = _run_batch(db, workload)
    batch_time = time.perf_counter() - start

    emit(
        "Plan cache: warm vs cold on a repeated-query workload",
        "\n".join(
            [
                f"workload: {len(workload)} queries, "
                f"{stats.plan_misses} canonical templates",
                f"cold (optimiser per query):    {cold_time:8.3f} s",
                f"warm (plan cache, per query):  {warm_time:8.3f} s  "
                f"({cold_time / warm_time:5.1f}x, "
                f"{stats.plan_hits} hits)",
                f"warm (batched, deduplicated):  {batch_time:8.3f} s  "
                f"({cold_time / batch_time:5.1f}x, "
                f"{batch_stats.batch_deduped} deduped)",
            ]
        ),
    )

    bench_json(
        "plan_cache",
        {
            "workload_queries": len(workload),
            "canonical_templates": stats.plan_misses,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "batch_seconds": batch_time,
            "warm_speedup": cold_time / max(warm_time, 1e-9),
            "batch_speedup": cold_time / max(batch_time, 1e-9),
            "plan_hits": stats.plan_hits,
            "batch_deduped": batch_stats.batch_deduped,
        },
        workload=_params(),
    )

    # Correctness first: all three paths agree on every result.
    assert warm_counts == cold_counts
    assert batch_counts == cold_counts
    # The optimiser ran once per template, never on a hit.
    assert stats.plan_hits == len(workload) - stats.plan_misses
    # Acceptance: >= 2x wall-clock for the warm cache (not checked in
    # smoke mode, where the workload is too small to time).
    if not smoke_mode():
        assert cold_time >= 2.0 * warm_time, (
            f"warm cache speedup below 2x: cold {cold_time:.3f}s "
            f"vs warm {warm_time:.3f}s"
        )
        assert cold_time >= 2.0 * batch_time
