"""Cluster robustness cost: healthy ring vs one replica down.

The replicated executor's claim (ISSUE 9 acceptance): losing a single
worker out of a replicated ring must cost availability *nothing* (zero
local degrades -- the surviving replicas own every shard) and
throughput *bounded*: the one-replica-down batch completes within 2x
of the healthy-ring batch on the same pipelined workload.  The retry
machinery, not the coordinator's own CPU, absorbs the failure.

A correctness cross-check runs inline: every answer in both phases
must equal the local in-process evaluation of the same query --
byte-identical degradation is the contract, the benchmark only prices
it.

Scales: default = 3 workers x 24 queries per phase over 6 shards;
smoke = tiny and unasserted (shared CI runners); FDB_BENCH_FULL=1
doubles the workload.
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro import persist
from repro.net import (
    ClusterMap,
    RemoteSession,
    ReplicatedExecutor,
    ServerThread,
)
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


def _params():
    if smoke_mode():
        return dict(queries=6, tuples=6, domain=4, shards=3)
    if full_scale():
        return dict(queries=48, tuples=120, domain=8, shards=6)
    return dict(queries=24, tuples=80, domain=8, shards=6)


WORKERS = 3
REPLICATION = 2


def test_one_replica_down_stays_within_2x_of_healthy(tmp_path):
    p = _params()
    db = random_database(
        relations=4,
        attributes=8,
        tuples=p["tuples"],
        domain=p["domain"],
        seed=171,
    )
    sharded = ShardedDatabase.from_database(db, shards=p["shards"])
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    # Two disjoint phases of fresh queries: a repeat would be served
    # from the delta-maintained result cache with no fan-out at all,
    # and the benchmark would price the cache, not the cluster.
    queries = random_spj_queries(
        db,
        2 * p["queries"],
        seed=172,
        max_relations=3,
        max_equalities=3,
    )
    healthy_queries = queries[: p["queries"]]
    wounded_queries = queries[p["queries"]:]
    with QuerySession(sharded) as reference:
        expected = {str(q): reference.run(q).rows() for q in queries}

    servers = [
        ServerThread(
            QuerySession(persist.load(path), encoding="arena"),
            owned_shards=[],
        )
        for _ in range(WORKERS)
    ]
    keys = [f"{h}:{p_}" for h, p_ in (s.address for s in servers)]
    ring = ClusterMap(keys, p["shards"], REPLICATION)
    assignments = ring.assignments()
    for key, server in zip(keys, servers):
        if assignments[key]:
            with RemoteSession(server.address) as client:
                client.own_shards(assignments[key])
    primaries = [
        ring.replicas_for(s)[0] for s in range(p["shards"])
    ]
    victim = keys.index(max(keys, key=primaries.count))
    executor = ReplicatedExecutor(
        keys,
        replication_factor=REPLICATION,
        timeout=120,
        backoff_base=0.01,
        quarantine_seconds=120,
        seed=173,
    )
    try:
        with QuerySession(
            sharded, executor=executor
        ) as coordinator:
            start = time.perf_counter()
            healthy_results = coordinator.run_batch(healthy_queries)
            healthy_seconds = time.perf_counter() - start
            healthy_tasks = executor.remote_tasks
            for query, result in zip(healthy_queries, healthy_results):
                assert result.rows() == expected[str(query)]
            assert executor.degrade_to_local == 0

            servers[victim].stop()  # the busiest primary dies
            start = time.perf_counter()
            wounded_results = coordinator.run_batch(wounded_queries)
            degraded_seconds = time.perf_counter() - start
            for query, result in zip(wounded_queries, wounded_results):
                assert result.rows() == expected[str(query)]
            # Replication absorbed the loss: answers unchanged, zero
            # local degrades, the retries went to surviving replicas.
            assert executor.degrade_to_local == 0
            assert executor.retries > 0
    finally:
        for server in servers:
            try:
                server.stop()
            except Exception:
                pass

    ratio = degraded_seconds / max(healthy_seconds, 1e-9)
    healthy_qps = len(healthy_queries) / max(healthy_seconds, 1e-9)
    degraded_qps = len(wounded_queries) / max(degraded_seconds, 1e-9)
    emit(
        "cluster: healthy ring vs one replica down "
        f"({WORKERS} workers, R={REPLICATION}, {p['shards']} shards)",
        "\n".join(
            [
                f"healthy : {len(healthy_queries)} queries in "
                f"{healthy_seconds:.4f}s ({healthy_qps:.1f} q/s)",
                f"degraded: {len(wounded_queries)} queries in "
                f"{degraded_seconds:.4f}s ({degraded_qps:.1f} q/s)",
                f"slowdown: {ratio:.2f}x  retries={executor.retries}  "
                f"degrade_to_local={executor.degrade_to_local}",
            ]
        ),
    )
    bench_json(
        "cluster",
        {
            # Deterministic contract metrics (gated by bench_diff).
            "queries": len(healthy_queries),
            "workers": WORKERS,
            "replication_factor": REPLICATION,
            "shards": p["shards"],
            "healthy_shard_tasks": healthy_tasks,
            "degrade_to_local": executor.degrade_to_local,
            # Timing metrics (informational: names carry markers).
            "healthy_seconds": healthy_seconds,
            "degraded_seconds": degraded_seconds,
            "healthy_q_per_s": healthy_qps,
            "degraded_q_per_s": degraded_qps,
            "slowdown_time_ratio": ratio,
        },
        workload={
            "queries_per_phase": p["queries"],
            "tuples": p["tuples"],
            "domain": p["domain"],
            "shards": p["shards"],
            "workers": WORKERS,
            "replication_factor": REPLICATION,
        },
    )
    if not smoke_mode():
        assert ratio <= 2.0, (
            f"one replica down cost {ratio:.2f}x "
            f"({healthy_seconds:.3f}s -> {degraded_seconds:.3f}s); "
            f"the acceptance bound is 2x"
        )
