"""Incremental-maintenance benchmark: append-then-requery.

PR 6 teaches the serving layer to maintain cached factorised results
under mutation (:mod:`repro.ivm`): an absorbable append factorises
only a delta view -- the fresh rows plus the *other* referenced
relations -- over the cached entry's own f-tree and unions it in,
instead of refactorising the whole database.  The workload is the
shape that maintenance is for: a large, growing fact relation joined
with small, stable dimension relations, so the delta view is tiny
against the full input.  Each round appends a batch of fact rows and
re-runs every query:

- **incremental**: a session with the delta-maintained result cache
  (the default) answers each requery by catching the cached entry up.
- **recompute**: an identical session with the result cache disabled
  (``result_cache_size=0``) pays a full factorisation per requery;
  its plan cache stays warm, so the diff isolates result maintenance.

Acceptance: the incremental path must be at least 2x faster over the
mutation rounds (not checked in smoke mode), with both paths agreeing
on every result count and the final round's exact rows.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.engine import FDB
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.service import QuerySession

#: Dimension sizes (stable lookup relations).
CUSTOMERS = 100
ITEMS = 150


def _params():
    if smoke_mode():
        return dict(facts=40, queries=6, rounds=3, batch=4)
    if full_scale():
        return dict(facts=20000, queries=6, rounds=8, batch=40)
    return dict(facts=6000, queries=6, rounds=6, batch=10)


def _fact_row(rng: random.Random):
    return (rng.randint(1, CUSTOMERS), rng.randint(1, ITEMS))


def _setup():
    p = _params()
    rng = random.Random(19)
    db = Database()
    db.add_rows(
        "Fact",
        ("f_cust", "f_item"),
        [_fact_row(rng) for _ in range(p["facts"])],
    )
    db.add_rows(
        "Cust",
        ("d_cust", "d_region"),
        [(c, c % 7) for c in range(1, CUSTOMERS + 1)],
    )
    db.add_rows(
        "Item",
        ("e_item", "e_price"),
        [(i, (i * 13) % 50) for i in range(1, ITEMS + 1)],
    )
    queries = [
        parse_query(sql)
        for sql in [
            "SELECT * FROM Fact, Cust WHERE f_cust = d_cust",
            "SELECT * FROM Fact, Item WHERE f_item = e_item",
            "SELECT f_cust, e_price FROM Fact, Item "
            "WHERE f_item = e_item",
            "SELECT * FROM Fact, Cust, Item "
            "WHERE f_cust = d_cust AND f_item = e_item",
            "SELECT d_region FROM Fact, Cust "
            "WHERE f_cust = d_cust AND d_region = 3",
            "SELECT f_item FROM Fact, Item "
            "WHERE f_item = e_item AND e_price >= 25",
        ][: p["queries"]]
    ]
    return p, rng, db, queries


def test_incremental_maintenance_speedup():
    p, rng, db, queries = _setup()

    incremental = QuerySession(db)
    recompute = QuerySession(db, result_cache_size=0)

    # Warm both sessions (plans compiled, the incremental session's
    # result cache populated) before any mutation.
    for query in queries:
        incremental.run(query)
        recompute.run(query)

    incremental_time = 0.0
    recompute_time = 0.0
    appended = 0
    count_checksum = 0
    for round_index in range(p["rounds"]):
        before = len(db["Fact"])
        db.extend_rows(
            "Fact", [_fact_row(rng) for _ in range(p["batch"])]
        )
        appended += len(db["Fact"]) - before

        start = time.perf_counter()
        inc_counts = [
            incremental.run(query).count() for query in queries
        ]
        incremental_time += time.perf_counter() - start

        start = time.perf_counter()
        full_counts = [
            recompute.run(query).count() for query in queries
        ]
        recompute_time += time.perf_counter() - start

        assert inc_counts == full_counts, f"round {round_index}"
        count_checksum += sum(inc_counts)

    # Exact-rows check on the final state against a fresh engine.
    for query in queries:
        fr = FDB(db, check_invariants=True).evaluate(query)
        expected = sorted(set(fr.rows(fr.attributes)))
        assert incremental.run(query).rows() == expected
        assert recompute.run(query).rows() == expected

    counters = incremental.cache_counters()["results"]
    speedup = recompute_time / max(incremental_time, 1e-9)
    emit(
        "Incremental maintenance: append-then-requery vs recompute",
        "\n".join(
            [
                f"workload: {len(queries)} queries x {p['rounds']} "
                f"rounds over {len(db['Fact'])} fact rows "
                f"({appended} appended in batches of {p['batch']})",
                f"recompute  (no result cache): "
                f"{recompute_time:8.3f} s",
                f"incremental (delta merges):   "
                f"{incremental_time:8.3f} s  ({speedup:5.1f}x)",
                f"delta merges: {counters['delta_merges']} "
                f"({counters['delta_rows']} rows), "
                f"invalidations: {counters['invalidations']}",
            ]
        ),
    )

    bench_json(
        "incremental",
        {
            "rounds": p["rounds"],
            "fact_rows_final": len(db["Fact"]),
            "rows_appended": appended,
            "count_checksum": count_checksum,
            "delta_merges": counters["delta_merges"],
            "delta_rows": counters["delta_rows"],
            "result_invalidations": counters["invalidations"],
            "recompute_seconds": recompute_time,
            "incremental_seconds": incremental_time,
            "incremental_speedup": speedup,
        },
        workload=p,
    )

    incremental.close()
    recompute.close()

    # Appends only: the incremental session never had to invalidate.
    assert counters["invalidations"] == 0
    assert counters["delta_merges"] > 0
    # Acceptance: >= 2x wall-clock for delta maintenance (skipped at
    # smoke scale, where a requery costs microseconds either way).
    if not smoke_mode():
        assert speedup >= 2.0, (
            f"incremental maintenance below 2x: recompute "
            f"{recompute_time:.3f}s vs incremental "
            f"{incremental_time:.3f}s"
        )
