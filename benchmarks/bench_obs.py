"""Observability overhead benchmark: tracing must be near-free.

PR 8 threads spans, a metrics registry and a slow-query log through
the hot query path.  The contract that makes that acceptable is that
an *instrumented* session costs (almost) the same as an uninstrumented
one: the contextvar lookup, the handful of ``perf_counter`` pairs per
query and the histogram observe must disappear into the evaluation
cost.  This benchmark runs the same seeded workload through two
otherwise identical sessions -- ``tracing=False`` vs ``tracing=True``
-- interleaved best-of-N, and asserts the traced session is within 5%
of the untraced one (skipped at smoke scale, where per-query work is
too small for the ratio to mean anything on shared runners).

``BENCH_obs.json`` additionally records the deterministic shape of the
instrumentation -- spans per query, traces opened, Prometheus metric
families exported -- so a PR that silently fattens the per-query span
count shows up in the cross-PR diff even when the runner absorbs the
cost.
"""

from __future__ import annotations

import gc
import time

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.net import ReplicatedExecutor, ServerThread
from repro.obs.cluster import ClusterFederation
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


def _params():
    if smoke_mode():
        return dict(tuples=60, queries=4, repeats=2)
    if full_scale():
        return dict(tuples=4000, queries=16, repeats=9)
    return dict(tuples=1500, queries=10, repeats=7)


def _sessions_and_queries(p):
    db = random_database(
        relations=4,
        attributes=8,
        tuples=p["tuples"],
        domain=max(4, p["tuples"] // 8),
        seed=23,
    )
    queries = random_spj_queries(
        db, p["queries"], seed=29, max_relations=3, max_equalities=2
    )
    # result_cache_size=0: repeats must re-evaluate, not replay the
    # ivm cache, or we would be timing a dict lookup in both columns.
    off = QuerySession(
        db, encoding="arena", tracing=False, result_cache_size=0
    )
    on = QuerySession(
        db, encoding="arena", tracing=True, result_cache_size=0
    )
    return off, on, queries


def _timed(session, query):
    start = time.perf_counter()
    session.run(query)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="obs")
def test_tracing_overhead_is_near_free():
    p = _params()
    off, on, queries = _sessions_and_queries(p)
    try:
        # Warm both plan caches so the measured loop times evaluation,
        # not one-off optimiser runs.
        for session in (off, on):
            for query in queries:
                session.run(query)

        # Per-query best-of, interleaved, GC paused: each query's
        # fastest observed run is its noise floor, and summing those
        # compares the two sessions on identical work.
        best_off = [float("inf")] * len(queries)
        best_on = [float("inf")] * len(queries)
        gc.disable()
        try:
            for _ in range(p["repeats"]):
                for i, query in enumerate(queries):
                    best_off[i] = min(best_off[i], _timed(off, query))
                    best_on[i] = min(best_on[i], _timed(on, query))
        finally:
            gc.enable()
        off_best = sum(best_off)
        on_best = sum(best_on)

        overhead = on_best / max(off_best, 1e-9) - 1.0

        # The deterministic shape of the instrumentation.
        last = on.run(queries[0])
        spans_per_query = len(last.spans or ())
        snapshot = on.snapshot()
        families = on.registry.prometheus_text().count("# TYPE ")
        assert last.trace_id is not None
        assert spans_per_query >= 3
        assert snapshot["metrics"]["traces_total"] > 0
        assert (
            snapshot["metrics"]["query_seconds"]["count"]
            == snapshot["metrics"]["traces_total"]
        )

        if not smoke_mode():
            assert overhead < 0.05, (
                f"tracing overhead {overhead:.1%} >= 5% "
                f"(off {off_best:.4f}s, on {on_best:.4f}s)"
            )

        emit(
            "Observability overhead: tracing off vs on",
            "\n".join(
                [
                    f"queries: {len(queries)} x {p['repeats']} repeats "
                    f"(best-of, interleaved)",
                    f"tracing off: {off_best:8.4f}s",
                    f"tracing on:  {on_best:8.4f}s  "
                    f"({overhead:+.1%} overhead)",
                    f"spans/query: {spans_per_query}, "
                    f"metric families: {families}",
                ]
            ),
        )
        bench_json(
            "obs",
            {
                "off_seconds": off_best,
                "on_seconds": on_best,
                # "_time" suffix: this ratio is timing-derived, so
                # bench_diff must report it, not gate it at 20%.
                "overhead_time": overhead,
                "spans_per_query": spans_per_query,
                "metric_families": families,
                "traces_total": snapshot["metrics"]["traces_total"],
            },
            workload=dict(p, seed=23, relations=4, attributes=8),
        )
    finally:
        off.close()
        on.close()


@pytest.mark.benchmark(group="obs")
def test_federated_scrape_overhead_is_near_free():
    """The cluster observability plane must not tax the serving path.

    A :class:`ClusterFederation` poller scrapes the worker's
    ``metrics`` wire frame on a tight interval while a replicated
    coordinator runs the seeded workload against that same worker.
    Interleaved best-of batches, poller off vs on, within 5% (asserted
    outside smoke scale, same policy as the tracing column above).
    """
    p = _params()
    db = random_database(
        relations=4,
        attributes=8,
        tuples=p["tuples"],
        domain=max(4, p["tuples"] // 8),
        seed=23,
    )
    sharded = ShardedDatabase.from_database(db, shards=4)
    queries = random_spj_queries(
        db, p["queries"], seed=31, max_relations=3, max_equalities=2
    )
    server = ServerThread(QuerySession(sharded, encoding="arena"))
    key = f"{server.address[0]}:{server.address[1]}"
    executor = ReplicatedExecutor(
        [key], replication_factor=1, timeout=60
    )
    coordinator = QuerySession(
        sharded, executor=executor, result_cache_size=0
    )
    federation = ClusterFederation([key], replication_factor=1)
    try:
        coordinator.run_batch(queries)  # warm plans + connections

        def batch_seconds():
            start = time.perf_counter()
            coordinator.run_batch(queries)
            return time.perf_counter() - start

        best_off = float("inf")
        best_on = float("inf")
        gc.disable()
        try:
            for _ in range(p["repeats"]):
                best_off = min(best_off, batch_seconds())
                federation.start(interval=0.02)
                try:
                    best_on = min(best_on, batch_seconds())
                finally:
                    federation.stop()
        finally:
            gc.enable()
        overhead = best_on / max(best_off, 1e-9) - 1.0

        # The deterministic shape of the federated view.
        federation.poll()
        view = federation.view()
        assert view["live_workers"] == 1
        assert view["shard_count"] == 4
        heat_shards = len(view["heat"]["shards"])
        assert heat_shards > 0, "expected a populated heat map"
        labelled_families = federation.prometheus_text(view).count(
            "# TYPE "
        )

        if not smoke_mode():
            assert overhead < 0.05, (
                f"federated scrape overhead {overhead:.1%} >= 5% "
                f"(off {best_off:.4f}s, on {best_on:.4f}s)"
            )

        emit(
            "Observability overhead: federated scrape off vs on",
            "\n".join(
                [
                    f"batches: {p['repeats']} repeats of "
                    f"{len(queries)} queries (best-of, interleaved; "
                    f"poller at 20ms)",
                    f"poller off: {best_off:8.4f}s",
                    f"poller on:  {best_on:8.4f}s  "
                    f"({overhead:+.1%} overhead)",
                    f"heat shards: {heat_shards}, "
                    f"labelled families: {labelled_families}",
                ]
            ),
        )
        bench_json(
            "obs_federation",
            {
                "off_seconds": best_off,
                "on_seconds": best_on,
                "scrape_overhead_time": overhead,
                "workers": 1,
                "shard_count": 4,
                "heat_shards": heat_shards,
                "labelled_families": labelled_families,
            },
            workload=dict(p, seed=23, relations=4, attributes=8),
        )
    finally:
        federation.stop()
        coordinator.close()
        server.stop()
