"""Whole-f-plan pipeline benchmark: object vs arena vs fused kernels.

The arena-native operator kernels (:mod:`repro.ops.arena_kernels`)
exist so a restructuring f-plan -- the swap/merge chains behind the
Figure 7/8 follow-up selections -- never leaves the columnar encoding.
This benchmark runs the same seeded restructuring plans three ways on
paper-shaped inputs and writes ``BENCH_plan_pipeline.json`` for the
cross-PR diff:

- **object**: the kernel-at-a-time object path (the pre-arena engine
  and the differential oracle);
- **arena steps**: the same plan replayed one columnar kernel at a
  time (each step pays its own writer + finish);
- **arena fused**: ``FPlan.execute`` on arena input -- the whole plan
  compiled once (weakly cached) into a chain of prepared kernels.

``adapter_round_trips`` counts arena->object conversions during the
arena runs and is asserted (and baseline-gated) to be **zero**: a
kernel silently falling back to the object encoding fails this
benchmark even when it happens to be fast.  The fused-vs-object
speedup floor is >= 2x in smoke mode and >= 6x at default/full scale.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.core.factorised import ADAPTER
from repro.engine import FDB
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.relational.database import Database
from repro.workloads import (
    combinatorial_database,
    random_followup_equalities,
)


def _params():
    if smoke_mode():
        return dict(
            keys=40, fanout=75, queries=3, equalities=2, repeats=1
        )
    if full_scale():
        return dict(
            keys=150, fanout=300, queries=8, equalities=3, repeats=5
        )
    return dict(
        keys=100, fanout=200, queries=5, equalities=2, repeats=3
    )


def _workloads(p):
    """(label, database, base join query, followup equality lists)."""
    out = []

    db = combinatorial_database(seed=7)
    base = Query.make(db.names)
    tree = FDB(db).optimal_tree(base)
    followups = [
        random_followup_equalities(
            tree, p["equalities"], seed=11 + i
        )
        for i in range(p["queries"])
    ]
    out.append(("combinatorial", db, base, followups))

    # Figure 8 shape: a follow-up equality between two non-root
    # attributes of independently factorised relations; the plan must
    # swap both attributes up before it can merge them.
    keys, fanout = p["keys"], p["fanout"]
    rows = keys * fanout
    ids = max(1, rows // 3)
    hier = Database()
    hier.add_rows(
        "Orders",
        ("oid", "o_key"),
        [(i % ids, i % keys) for i in range(rows)],
    )
    hier.add_rows(
        "Listings",
        ("l_key", "price"),
        [(1000 + (i % ids), i % keys) for i in range(rows)],
    )
    join = parse_query("SELECT * FROM Orders, Listings")
    out.append(
        (
            "hierarchical",
            hier,
            join,
            [[("oid", "price")], [("o_key", "l_key")]],
        )
    )
    return out


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.benchmark(group="plan_pipeline")
def test_plan_pipeline_fused_vs_object():
    p = _params()
    totals = {
        "object_seconds": 0.0,
        "arena_step_seconds": 0.0,
        "arena_fused_seconds": 0.0,
        "plans": 0,
        "plans_with_steps": 0,
        "total_steps": 0,
        "result_tuples": 0,
        "adapter_round_trips": 0,
    }

    for label, db, base, followups in _workloads(p):
        object_engine = FDB(db)
        arena_engine = FDB(db, encoding="arena")
        tree = object_engine.optimal_tree(base)
        object_fr = object_engine.factorise_query(base, tree=tree)
        arena_fr = arena_engine.factorise_query(base, tree=tree)

        for pairs in followups:
            plan = object_engine.plan_for(tree, pairs)
            totals["plans"] += 1
            if plan.steps:
                totals["plans_with_steps"] += 1
                totals["total_steps"] += len(plan.steps)

            object_secs, object_out = _best_of(
                p["repeats"], lambda: plan.execute(object_fr)
            )

            def arena_stepwise():
                current = arena_fr
                for step in plan.steps:
                    current = step.apply(current)
                return current

            before = ADAPTER.snapshot()["to_object_calls"]
            step_secs, step_out = _best_of(
                p["repeats"], arena_stepwise
            )
            fused_secs, fused_out = _best_of(
                p["repeats"], lambda: plan.execute(arena_fr)
            )
            after = ADAPTER.snapshot()["to_object_calls"]
            totals["adapter_round_trips"] += after - before

            # Correctness before speed, at every scale.
            assert step_out.encoding == "arena"
            assert fused_out.encoding == "arena"
            count = object_out.count()
            assert step_out.count() == fused_out.count() == count, (
                f"{label} plan {plan}"
            )
            assert (
                step_out.size() == fused_out.size() == object_out.size()
            ), f"{label} plan {plan}"
            totals["result_tuples"] += count
            totals["object_seconds"] += object_secs
            totals["arena_step_seconds"] += step_secs
            totals["arena_fused_seconds"] += fused_secs

    fused_speedup = totals["object_seconds"] / max(
        totals["arena_fused_seconds"], 1e-9
    )
    step_speedup = totals["object_seconds"] / max(
        totals["arena_step_seconds"], 1e-9
    )
    fusion_gain = totals["arena_step_seconds"] / max(
        totals["arena_fused_seconds"], 1e-9
    )

    emit(
        "Whole-plan pipeline: restructuring f-plans, object vs arena",
        "\n".join(
            [
                f"plans: {totals['plans']} "
                f"({totals['plans_with_steps']} restructuring, "
                f"{totals['total_steps']} steps), "
                f"{totals['result_tuples']} result tuples",
                f"object:      {totals['object_seconds']:8.4f}s",
                f"arena steps: {totals['arena_step_seconds']:8.4f}s"
                f"  ({step_speedup:5.2f}x)",
                f"arena fused: {totals['arena_fused_seconds']:8.4f}s"
                f"  ({fused_speedup:5.2f}x, "
                f"{fusion_gain:4.2f}x over stepwise)",
                f"adapter round trips: {totals['adapter_round_trips']}",
            ]
        ),
    )

    assert totals["plans_with_steps"] >= 1, (
        "no followup produced a restructuring plan"
    )
    assert totals["adapter_round_trips"] == 0, (
        "arena plan execution fell back to the object encoding"
    )
    floor = 2.0 if smoke_mode() else 6.0
    assert fused_speedup >= floor, (
        f"fused arena pipeline only {fused_speedup:.2f}x over the "
        f"object path (floor {floor}x)"
    )

    bench_json(
        "plan_pipeline",
        {
            **totals,
            "fused_speedup": fused_speedup,
            "step_speedup": step_speedup,
            "fusion_gain": fusion_gain,
        },
        workload=_params(),
    )
