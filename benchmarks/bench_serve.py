"""Serving-tier throughput: pipelined concurrent clients vs one
sequential connection.

The network tier's aggregate-throughput claim (ISSUE 5 acceptance):
the *same* set of requests, issued by 8 concurrent pipelined clients,
must complete >= 2x faster than issued sequentially over a single
connection.  The win is architectural, not parallelism-for-free: the
server coalesces requests that overlap in time into shared batch
waves (:mod:`repro.service.batching`), so canonically-equal queries
from different clients are evaluated once per wave instead of once
per request, and every result still travels factorised.

A correctness cross-check runs inline: every response must carry
exactly the rows the in-process session returns for the same query.

Scales: default = 8 clients x 12 queries x 2 rounds; smoke = tiny and
unasserted (shared CI runners); FDB_BENCH_FULL=1 doubles the rounds.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.exec import ParallelExecutor
from repro.net import RemoteSession, ServerThread
from repro.service import QuerySession
from repro.workloads import random_database, random_spj_queries


def _params():
    if smoke_mode():
        return dict(
            clients=3, unique=4, rounds=1, tuples=6, domain=5, workers=2
        )
    if full_scale():
        return dict(
            clients=8, unique=12, rounds=4, tuples=200, domain=10,
            workers=4,
        )
    return dict(
        clients=8, unique=12, rounds=2, tuples=200, domain=10, workers=4
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_pipelined_clients_beat_sequential_connection():
    p = _params()
    db = random_database(
        relations=4,
        attributes=8,
        tuples=p["tuples"],
        domain=p["domain"],
        seed=71,
    )
    queries = random_spj_queries(
        db,
        p["unique"],
        seed=72,
        max_relations=3,
        max_equalities=3,
    )
    # Each client issues the full workload `rounds` times -- repeated
    # hot queries, the traffic shape the serving tier exists for.
    per_client = queries * p["rounds"]
    total_requests = p["clients"] * len(per_client)

    # The served session pushes CPU-bound evaluation through the
    # existing ParallelExecutor: coalesced waves then evaluate on all
    # cores, which a one-at-a-time connection can never exploit.
    with QuerySession(db, encoding="arena") as reference:
        expected = {str(q): reference.run(q).rows() for q in queries}
    session = QuerySession(
        db,
        encoding="arena",
        executor=ParallelExecutor(max_workers=p["workers"]),
    )

    with ServerThread(session) as server:
        # Warm the plan cache so both phases measure serving, not the
        # one-off optimiser cost -- and cross-check every served
        # answer (untimed) against the in-process reference.
        with RemoteSession(server.address) as warm:
            for query, result in zip(queries, warm.run_batch(queries)):
                assert result.rows() == expected[str(query)]

        # Phase 1: the same total request stream, one connection, one
        # request in flight at a time.
        def sequential() -> None:
            with RemoteSession(server.address) as client:
                for _ in range(p["clients"]):
                    for query in per_client:
                        assert client.run(query) is not None

        seq_seconds = _timed(sequential)

        # Phase 2: 8 concurrent clients, each pipelining its whole
        # stream before collecting -- overlapping submissions coalesce
        # into shared, deduplicated waves.
        errors = []

        def pipelined_client() -> None:
            try:
                with RemoteSession(server.address) as client:
                    futures = [
                        (query, client.submit(query))
                        for query in per_client
                    ]
                    for query, future in futures:
                        assert future.result(120) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def pipelined() -> None:
            threads = [
                threading.Thread(target=pipelined_client)
                for _ in range(p["clients"])
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        pipe_seconds = _timed(pipelined)
        assert not errors

        with RemoteSession(server.address) as probe:
            stats = probe.stats()

    speedup = seq_seconds / max(pipe_seconds, 1e-9)
    submitter = stats["submitter"] or {}
    waves = max(submitter.get("waves", 1), 1)
    emit(
        "serve: pipelined clients vs sequential connection",
        "\n".join(
            [
                f"requests per phase        {total_requests}",
                f"unique queries            {p['unique']}",
                f"sequential                {seq_seconds:.4f}s "
                f"({total_requests / max(seq_seconds, 1e-9):.0f} rq/s)",
                f"{p['clients']} pipelined clients      "
                f"{pipe_seconds:.4f}s "
                f"({total_requests / max(pipe_seconds, 1e-9):.0f} rq/s)",
                f"aggregate speedup         {speedup:.1f}x",
                f"waves                     {submitter.get('waves')}"
                f" (mean {submitter.get('wave_queries', 0) / waves:.1f}"
                f" queries/wave)",
                f"batch-deduplicated        "
                f"{stats['session']['batch_deduped']}",
            ]
        ),
    )
    bench_json(
        "serve",
        {
            "requests_per_phase": total_requests,
            "sequential_seconds": seq_seconds,
            "pipelined_seconds": pipe_seconds,
            "throughput_speedup": speedup,
            "sequential_rq_per_s_timing": total_requests
            / max(seq_seconds, 1e-9),
            "pipelined_rq_per_s_timing": total_requests
            / max(pipe_seconds, 1e-9),
        },
        workload=p,
    )
    # Acceptance floor (ISSUE 5): >= 2x aggregate throughput with
    # pipelined concurrent clients.  Not asserted at smoke scale --
    # shared-runner wall clocks gate nothing -- but the correctness
    # cross-checks above always ran.
    if not smoke_mode():
        assert speedup >= 2.0, (
            f"pipelined clients only {speedup:.2f}x over sequential"
        )
