"""Figure 6 (Experiment 2): quality of full-search vs greedy f-plans.

For input f-trees produced by K-equality queries (R = 4, A = 10) and
follow-up queries of L equalities, compares the f-plan cost ``s(f)``
and the result f-tree cost ``s(T)`` of both optimisers.

Expected shapes (paper): greedy is optimal or near-optimal in most
cases, with exceptions at small K / large L; all average plan costs
lie between 1 and 2; for small L the plan cost is dominated by the
final tree, for large L by the intermediate trees.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_json, emit, full_scale
from repro.experiments import exp2, format_table
from repro.experiments.exp2 import run_experiment2


def _params():
    if full_scale():
        return dict(
            k_values=tuple(range(1, 9)),
            l_values=tuple(range(1, 7)),
            repeats=3,
        )
    return dict(k_values=(1, 3, 5, 7), l_values=(1, 2, 3), repeats=2)


@pytest.mark.benchmark(group="fig6")
def test_fig6_plan_quality(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment2(**_params()), rounds=1, iterations=1
    )
    emit(
        "Figure 6: f-plan / result f-tree costs, full vs greedy",
        format_table(exp2.headers(), exp2.as_cells(rows)),
    )
    bench_json("fig6_plan_quality", {"rows": rows})
    for row in rows:
        # Full search is optimal: never worse than greedy.
        assert row.full_plan_cost <= row.greedy_plan_cost + 1e-9
        # Paper: average plan costs stay within [1, 2].
        assert 1.0 <= row.full_plan_cost <= 2.5
        # The final tree can never cost more than the whole plan.
        assert row.full_result_cost <= row.full_plan_cost + 1e-9
