"""Figure 5 (Experiment 1): query optimisation on flat data.

Left plot: time to find an optimal f-tree for a random query with K
equalities on R relations (A = 40 attributes).  Right plot: the cost
``s(T)`` of the optimal f-tree.

Expected shapes (paper): s(T) = 1 for R <= 2; mostly <= 2 elsewhere,
rarely above; optimisation time under a second for fewer than 8 joins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_json, emit, full_scale
from repro.experiments import exp1, format_table
from repro.experiments.exp1 import run_experiment1


def _params():
    if full_scale():
        return dict(
            relations_values=(1, 2, 3, 4, 5, 6, 7, 8),
            equalities_values=tuple(range(1, 10)),
            attributes=40,
            repeats=5,
        )
    return dict(
        relations_values=(1, 2, 4, 6, 8),
        equalities_values=(1, 3, 5, 7, 9),
        attributes=40,
        repeats=2,
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5_optimal_ftree_search(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment1(**_params()), rounds=1, iterations=1
    )
    emit(
        "Figure 5: optimal f-tree time and cost s(T)",
        format_table(exp1.headers(), exp1.as_cells(rows)),
    )
    bench_json("fig5_optimisation", {"rows": rows})
    # Paper shapes: cost 1 for up to two relations, never wild.
    for row in rows:
        if row.relations <= 2:
            assert row.max_cost == 1.0
        assert row.max_cost <= 3.0


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("relations", [2, 4, 8])
def test_fig5_single_configuration(benchmark, relations):
    """Per-R timing point (K = 5, A = 40) for the benchmark table."""

    def run():
        return run_experiment1(
            relations_values=(relations,),
            equalities_values=(5,),
            attributes=40,
            repeats=1,
        )

    rows = benchmark(run)
    assert rows and rows[0].relations == relations
