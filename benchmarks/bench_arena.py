"""Arena encoding benchmark: build, enumerate, load, and memory.

The arena (:mod:`repro.core.arena`) exists to make the factorised hot
path allocation-free: flat interned-value and offset-range columns
instead of one Python object per union entry.  This benchmark measures
the four claims on paper-shaped workloads (the combinatorial database
of Experiments 3/4 and a hierarchical many-to-many join) and writes
them to ``BENCH_arena.json`` for the cross-PR diff:

- **build**: ground-representation construction from the input
  relations over the optimal f-tree, object vs arena;
- **enumerate**: streaming every tuple of the result (the compiled
  per-skeleton loop nest vs the object walk), plus count and size;
- **load**: ``repro.persist`` round trip -- the ``arena`` blob kind
  reloads columns ~O(bytes) while the ``factorised`` kind rebuilds the
  object graph;
- **memory**: retained bytes of the built representation (tracemalloc).

Correctness (both encodings describe the same relation) is asserted at
every scale; the speedup floors are skipped in smoke mode, and the
headline >= 2x acceptance lives with the paper workloads in
``bench_fig7`` / ``bench_fig8``.
"""

from __future__ import annotations

import gc
import time
import tracemalloc

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.engine import FDB
from repro.persist import load, save
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.relational.database import Database
from repro.workloads import combinatorial_database, random_equalities


def _params():
    if smoke_mode():
        # K=5 keeps the combinatorial result small enough that the CI
        # smoke job enumerates thousands of tuples, not millions.
        return dict(keys=6, fanout=8, combinatorial_k=5, repeats=1)
    if full_scale():
        return dict(keys=12, fanout=120, combinatorial_k=2, repeats=5)
    return dict(keys=10, fanout=60, combinatorial_k=2, repeats=3)


def _workloads(p):
    """(label, relations, tree) triples for paper-shaped inputs."""
    out = []

    db = combinatorial_database(seed=7)
    query = Query.make(
        db.names,
        equalities=random_equalities(db, p["combinatorial_k"], seed=9),
    )
    tree = FDB(db).optimal_tree(query)
    out.append(("combinatorial", [db[n] for n in query.relations], tree))

    keys, fanout = p["keys"], p["fanout"]
    hier = Database()
    hier.add_rows(
        "Orders",
        ("oid", "o_key"),
        [(i, i % keys) for i in range(keys * fanout)],
    )
    hier.add_rows(
        "Listings",
        ("l_key", "price"),
        [(i % keys, 1000 + i) for i in range(keys * fanout)],
    )
    join = parse_query(
        "SELECT * FROM Orders, Listings WHERE o_key = l_key"
    )
    out.append(
        (
            "hierarchical",
            [hier[n] for n in join.relations],
            FDB(hier).optimal_tree(join),
        )
    )
    return out


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _retained_bytes(build):
    """Bytes retained by the value ``build`` returns (tracemalloc)."""
    gc.collect()
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    kept = build()
    gc.collect()
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del kept
    return max(current - baseline, 1)


@pytest.mark.benchmark(group="arena")
def test_arena_hot_paths(tmp_path):
    p = _params()
    totals = {
        "build_object_seconds": 0.0,
        "build_arena_seconds": 0.0,
        "enumerate_object_seconds": 0.0,
        "enumerate_arena_seconds": 0.0,
        "load_object_seconds": 0.0,
        "load_arena_seconds": 0.0,
        "memory_object_bytes": 0,
        "memory_arena_bytes": 0,
        "object_file_bytes": 0,
        "arena_file_bytes": 0,
        "result_tuples": 0,
        "result_singletons": 0,
    }

    for label, relations, tree in _workloads(p):
        build_obj, product = _best_of(
            p["repeats"], lambda: factorise(relations, tree)
        )
        build_arena, columns = _best_of(
            p["repeats"],
            lambda: factorise(relations, tree, encoding="arena"),
        )
        fr = FactorisedRelation(tree, product)
        fa = FactorisedRelation(tree, arena=columns)

        # Correctness before speed, at every scale.
        assert fa.count() == fr.count() and fa.size() == fr.size()
        order = fr.attributes
        enum_obj, object_rows = _best_of(
            p["repeats"], lambda: sum(1 for _ in fr.rows(order))
        )
        enum_arena, arena_rows = _best_of(
            p["repeats"], lambda: sum(1 for _ in fa.rows(order))
        )
        assert object_rows == arena_rows == fr.count()

        object_path = str(tmp_path / f"{label}-object.fdbp")
        arena_path = str(tmp_path / f"{label}-arena.fdbp")
        save(fr, object_path)
        save(fa, arena_path)
        load_obj, reloaded_obj = _best_of(
            p["repeats"], lambda: load(object_path)
        )
        load_arena, reloaded_arena = _best_of(
            p["repeats"], lambda: load(arena_path)
        )
        assert reloaded_obj.count() == reloaded_arena.count() == fr.count()

        import os

        totals["object_file_bytes"] += os.path.getsize(object_path)
        totals["arena_file_bytes"] += os.path.getsize(arena_path)
        totals["build_object_seconds"] += build_obj
        totals["build_arena_seconds"] += build_arena
        totals["enumerate_object_seconds"] += enum_obj
        totals["enumerate_arena_seconds"] += enum_arena
        totals["load_object_seconds"] += load_obj
        totals["load_arena_seconds"] += load_arena
        totals["memory_object_bytes"] += _retained_bytes(
            lambda: factorise(relations, tree)
        )
        totals["memory_arena_bytes"] += _retained_bytes(
            lambda: factorise(relations, tree, encoding="arena")
        )
        totals["result_tuples"] += fr.count()
        totals["result_singletons"] += fr.size()

    build_speedup = totals["build_object_seconds"] / max(
        totals["build_arena_seconds"], 1e-9
    )
    enumerate_speedup = totals["enumerate_object_seconds"] / max(
        totals["enumerate_arena_seconds"], 1e-9
    )
    load_speedup = totals["load_object_seconds"] / max(
        totals["load_arena_seconds"], 1e-9
    )
    memory_reduction = totals["memory_object_bytes"] / max(
        totals["memory_arena_bytes"], 1
    )

    emit(
        "Arena encoding: hot-path speedups over the object encoding",
        "\n".join(
            [
                f"result: {totals['result_tuples']} tuples, "
                f"{totals['result_singletons']} singletons",
                f"build:     object {totals['build_object_seconds']:8.4f}s"
                f"  arena {totals['build_arena_seconds']:8.4f}s"
                f"  ({build_speedup:5.2f}x)",
                f"enumerate: object {totals['enumerate_object_seconds']:8.4f}s"
                f"  arena {totals['enumerate_arena_seconds']:8.4f}s"
                f"  ({enumerate_speedup:5.2f}x)",
                f"codec load: object {totals['load_object_seconds']:8.4f}s"
                f"  arena {totals['load_arena_seconds']:8.4f}s"
                f"  ({load_speedup:5.2f}x)",
                f"retained:  object {totals['memory_object_bytes']:9d}B"
                f"  arena {totals['memory_arena_bytes']:9d}B"
                f"  ({memory_reduction:5.2f}x smaller)",
            ]
        ),
    )

    bench_json(
        "arena",
        {
            **totals,
            "build_speedup": build_speedup,
            "enumerate_speedup": enumerate_speedup,
            "load_speedup": load_speedup,
            "memory_reduction": memory_reduction,
        },
        workload=_params(),
    )

    # Acceptance floors (not timed at smoke scale; the >= 2x headline
    # over the paper workloads is asserted in bench_fig7 / bench_fig8).
    # Build is near parity by design -- the candidate intersection
    # dominates and is shared by both encodings -- so its floor only
    # guards against the arena writer regressing badly.
    if not smoke_mode():
        assert build_speedup > 0.9, f"arena build slower: {build_speedup:.2f}x"
        assert enumerate_speedup > 1.0, (
            f"arena enumeration slower: {enumerate_speedup:.2f}x"
        )
        assert load_speedup > 1.0, f"arena load slower: {load_speedup:.2f}x"
        assert memory_reduction > 1.0, (
            f"arena retains more memory: {memory_reduction:.2f}x"
        )
