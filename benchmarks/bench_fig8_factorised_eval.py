"""Figure 8 (Experiment 4): query evaluation on factorised data.

Follow-up queries of L equalities run on factorised inputs (FDB,
executing full-search f-plans) vs one selection scan over the
materialised flat result (RDB).

Expected shapes (paper): FDB result sizes and times track the
factorised input and stay up to four orders of magnitude below RDB's;
the representation quality does not decay across query generations
("sustainable" factorisation); the gap closes when inputs shrink to
~1000 tuples, where both answer in <0.1 s.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import bench_json, emit, full_scale, smoke_mode
from repro.experiments import exp4, format_table
from repro.experiments.exp4 import run_experiment4


def _params():
    if full_scale():
        return dict(
            k_values=tuple(range(1, 9)),
            l_values=tuple(range(1, 6)),
            distributions=("uniform", "zipf"),
            timeout=100.0,
        )
    return dict(
        k_values=(2, 4, 6),
        l_values=(1, 2, 3),
        distributions=("uniform",),
        timeout=45.0,
    )


@pytest.mark.benchmark(group="fig8")
def test_fig8_factorised_evaluation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment4(**_params()), rounds=1, iterations=1
    )
    emit(
        "Figure 8: follow-up queries on factorised (FDB) vs "
        "flat (RDB) results",
        format_table(exp4.headers(), exp4.as_cells(rows)),
    )
    consume_object = sum(
        r.consume_object_seconds
        for r in rows
        if not math.isnan(r.consume_object_seconds)
    )
    consume_arena = sum(
        r.consume_arena_seconds
        for r in rows
        if not math.isnan(r.consume_arena_seconds)
    )
    bench_json(
        "fig8_factorised_eval",
        {
            "rows": rows,
            "consume_object_seconds": consume_object,
            "consume_arena_seconds": consume_arena,
            "arena_consume_speedup": (
                consume_object / max(consume_arena, 1e-9)
            ),
        },
    )
    # Encoding acceptance: consuming the paper's factorised inputs
    # (enumerate every tuple + count + size) must be >= 2x faster in
    # the arena encoding in aggregate.  (Not timed at smoke scale.)
    if not smoke_mode() and consume_arena > 0:
        assert consume_object >= 2.0 * consume_arena, (
            f"arena consumption not >= 2x over objects: "
            f"object {consume_object:.3f}s vs arena "
            f"{consume_arena:.3f}s"
        )
    for row in rows:
        # Factorised result never exceeds its flat equivalent.
        if row.flat_result_elements > 0 and not math.isnan(
            row.flat_result_elements
        ):
            assert (
                row.fdb_result_singletons
                <= row.flat_result_elements
            )
    # Sustainability: results of follow-up queries stay factorised
    # (well below the flat size) for the combinatorial small-K rows.
    heavy = [
        r
        for r in rows
        if r.input_equalities <= 2
        and r.flat_result_elements > 10_000
    ]
    for row in heavy:
        assert (
            row.fdb_result_singletons
            <= row.flat_result_elements / 10
        )
