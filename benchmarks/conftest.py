"""Shared configuration for the figure benchmarks.

Every benchmark regenerates one figure of Section 5 and prints the
series it plots (run pytest with ``-s`` to see the tables).  Default
parameters are laptop-scale; set ``FDB_BENCH_FULL=1`` for sweeps close
to the paper's (long runtimes in pure Python).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("FDB_BENCH_FULL", "") not in ("", "0")


def smoke_mode() -> bool:
    """CI bit-rot guard: tiny workloads, no timing assertions.

    ``FDB_BENCH_SMOKE=1`` runs every benchmark end-to-end (so API
    drift still fails the build) while skipping the wall-clock
    acceptance checks, which are meaningless on noisy shared runners
    at toy scale.  Correctness assertions always stay on.
    """
    return os.environ.get("FDB_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(scope="session")
def scale() -> str:
    return "full" if full_scale() else "default"


def emit(title: str, table: str) -> None:
    print()
    print(f"=== {title} ===")
    print(table)
