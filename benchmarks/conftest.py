"""Shared configuration for the figure benchmarks.

Every benchmark regenerates one figure of Section 5 and prints the
series it plots (run pytest with ``-s`` to see the tables).  Default
parameters are laptop-scale; set ``FDB_BENCH_FULL=1`` for sweeps close
to the paper's (long runtimes in pure Python).

Besides the human-readable table, every benchmark writes a
machine-readable ``BENCH_<name>.json`` (see :func:`bench_json`) so the
performance trajectory is tracked across PRs instead of being lost in
stdout; CI uploads the files as workflow artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import time

import pytest


def full_scale() -> bool:
    return os.environ.get("FDB_BENCH_FULL", "") not in ("", "0")


def smoke_mode() -> bool:
    """CI bit-rot guard: tiny workloads, no timing assertions.

    ``FDB_BENCH_SMOKE=1`` runs every benchmark end-to-end (so API
    drift still fails the build) while skipping the wall-clock
    acceptance checks, which are meaningless on noisy shared runners
    at toy scale.  Correctness assertions always stay on.
    """
    return os.environ.get("FDB_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(scope="session")
def scale() -> str:
    return "full" if full_scale() else "default"


def emit(title: str, table: str) -> None:
    print()
    print(f"=== {title} ===")
    print(table)


def _jsonable(value):
    """Best-effort conversion of benchmark rows to JSON values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            k: _jsonable(v)
            for k, v in dataclasses.asdict(value).items()
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN -> null
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


#: Version of the BENCH_*.json document layout itself.  Bump when the
#: stamping below changes shape; ``scripts/bench_diff.py`` refuses to
#: compare documents whose schema versions differ.
BENCH_SCHEMA = 2


def bench_json(name: str, payload: dict, workload: dict = None) -> str:
    """Write ``BENCH_<name>.json`` next to the human output.

    The directory defaults to the current working directory and can be
    redirected with ``FDB_BENCH_JSON_DIR``.  Every document carries
    schema/provenance stamps -- the bench name, the scale it ran at
    (timings at smoke scale are not comparable with default/full
    runs), the python version, the platform, and the
    :data:`BENCH_SCHEMA` document version -- so a cross-PR diff can
    tell "the metric moved" apart from "this is a different experiment
    entirely".  ``workload`` optionally pins the workload *shape*
    (query counts, relation sizes, client counts): two documents whose
    workloads differ are never metric-compared, they are reported as a
    mismatch by ``scripts/bench_diff.py``.  Returns the path written.
    """
    directory = os.environ.get("FDB_BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {
        "benchmark": name,
        "bench_schema": BENCH_SCHEMA,
        "scale": (
            "smoke"
            if smoke_mode()
            else ("full" if full_scale() else "default")
        ),
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        **_jsonable(payload),
    }
    if workload is not None:
        document["workload"] = _jsonable(workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench-json] wrote {path}")
    return path
