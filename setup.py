"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in environments without the ``wheel`` package
(PEP 660 editable installs need to build a wheel):

    python setup.py develop        # editable install without wheel
    pip install -e .               # where wheel is available
"""

from setuptools import setup

setup()
