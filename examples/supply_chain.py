#!/usr/bin/env python
"""Many-to-many supply chains: where factorisation wins big.

The paper's motivating scenario is data with many-to-many
relationships, whose join results explode quadratically (or worse)
while their factorisations stay near-linear.  This example builds a
synthetic but realistic supply chain --

    Suppliers --supplies--> Parts --used_in--> Products
                                   --stocked_at--> Warehouses

-- and contrasts FDB with the flat engines on the full join, then
drills into the result with follow-up queries evaluated *directly on
the factorised representation*.

Run:  python examples/supply_chain.py
"""

import random
import time

from repro import FDB, Database, Query, RelationalEngine
from repro.costs import s_tree


def build_supply_chain(
    suppliers: int = 40,
    parts: int = 60,
    products: int = 30,
    warehouses: int = 12,
    fanout: int = 6,
    seed: int = 7,
) -> Database:
    """A four-relation many-to-many schema with controlled fan-out."""
    rng = random.Random(seed)
    db = Database()
    db.add_rows(
        "Supplies",
        ("sup_id", "sup_part"),
        [
            (s, rng.randrange(parts))
            for s in range(suppliers)
            for _ in range(fanout)
        ],
    )
    db.add_rows(
        "UsedIn",
        ("ui_part", "ui_product"),
        [
            (p, rng.randrange(products))
            for p in range(parts)
            for _ in range(fanout)
        ],
    )
    db.add_rows(
        "StockedAt",
        ("st_part", "st_warehouse"),
        [
            (p, rng.randrange(warehouses))
            for p in range(parts)
            for _ in range(fanout // 2)
        ],
    )
    return db


def main() -> None:
    db = build_supply_chain()
    print("supply chain database:")
    for relation in db:
        print(f"  {relation.name}: {relation.cardinality} rows")
    print()

    query = Query.make(
        ["Supplies", "UsedIn", "StockedAt"],
        equalities=[("sup_part", "ui_part"), ("ui_part", "st_part")],
    )
    print(f"query: {query}")

    # Flat evaluation (RDB).
    start = time.perf_counter()
    flat = RelationalEngine(db).evaluate(query)
    rdb_time = time.perf_counter() - start
    flat_values = len(flat) * flat.schema.arity
    print(f"RDB:  {len(flat):>9} tuples = {flat_values:>9} values "
          f"in {rdb_time:.3f}s")

    # Factorised evaluation (FDB).
    fdb = FDB(db)
    start = time.perf_counter()
    fr = fdb.evaluate(query)
    fdb_time = time.perf_counter() - start
    print(f"FDB:  {fr.count():>9} tuples = {fr.size():>9} singletons "
          f"in {fdb_time:.3f}s")
    print(f"compression: {flat_values / max(fr.size(), 1):.1f}x "
          f"fewer data values; s(T) = {s_tree(fr.tree)}")
    print("f-tree:")
    print(fr.tree.pretty())
    print()

    assert fr.equals_flat(flat)

    # Follow-up analytics on the factorised result.
    print("follow-up on the factorised result: "
          "parts both used and stocked, for warehouse 3 only")
    followup = Query.make(
        [],
        constants=[("st_warehouse", "=", 3)],
        projection=["sup_id", "ui_product"],
    )
    start = time.perf_counter()
    drill, plan = fdb.evaluate_on(fr, followup)
    drill_time = time.perf_counter() - start
    print(f"  plan: {plan if len(plan) else '<no restructuring needed>'}")
    print(f"  {drill.count()} (supplier, product) pairs in "
          f"{drill.size()} singletons, {drill_time:.3f}s")
    sample = list(drill.rows())[:5]
    print(f"  sample rows: {sample}")


if __name__ == "__main__":
    main()
