#!/usr/bin/env python
"""Engine shoot-out: FDB vs RDB vs SQLite on one growing workload.

A miniature of Experiment 3 (Figure 7) that you can eyeball in under a
minute: three ternary relations with values in [1, 100], sizes growing
geometrically, K = 2 equalities.  Prints a table of result sizes and
times per engine, demonstrating the widening gap the paper reports.

Run:  python examples/engine_shootout.py [max_n]
"""

import sys
import time

from repro import FDB, Budget, BudgetExceeded, Query, RelationalEngine
from repro import SQLiteEngine
from repro.experiments.report import format_table
from repro.workloads import random_database, random_equalities


def measure(n: int, seed: int = 0, timeout: float = 30.0):
    db = random_database(3, 9, n, domain=100, seed=seed)
    query = Query.make(
        db.names, equalities=random_equalities(db, 2, seed=seed + 1)
    )

    start = time.perf_counter()
    fr = FDB(db).evaluate(query)
    fdb_time = time.perf_counter() - start

    rdb = RelationalEngine(
        db, budget=Budget(timeout_seconds=timeout, max_rows=5_000_000)
    )
    start = time.perf_counter()
    try:
        flat = rdb.evaluate(query)
        rdb_time = time.perf_counter() - start
        flat_size = len(flat) * flat.schema.arity
    except BudgetExceeded:
        rdb_time = float("nan")
        flat_size = fr.flat_data_elements()

    with SQLiteEngine(db) as sqlite:
        start = time.perf_counter()
        try:
            sqlite.count_with_timeout(query, timeout)
            sqlite_time = time.perf_counter() - start
        except BudgetExceeded:
            sqlite_time = float("nan")

    return [
        n,
        fr.size(),
        flat_size,
        f"{flat_size / max(fr.size(), 1):.0f}x",
        fdb_time,
        rdb_time,
        sqlite_time,
    ]


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    sizes = []
    n = 500
    while n <= max_n:
        sizes.append(n)
        n *= 2
    rows = [measure(n) for n in sizes]
    print(
        format_table(
            [
                "N",
                "FDB singletons",
                "flat values",
                "gap",
                "FDB t[s]",
                "RDB t[s]",
                "SQLite t[s]",
            ],
            rows,
        )
    )
    print()
    print("('timeout' marks configurations the flat engines "
          "could not finish, like the paper's missing points)")


if __name__ == "__main__":
    main()
