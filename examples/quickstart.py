#!/usr/bin/env python
"""Quickstart: the paper's grocery retailer, end to end.

Reproduces Examples 1 and 2 of the paper on the Figure 1 database:

1. evaluate Q1 (orders x stock x dispatchers) into a factorised
   result and print the factorisation;
2. restructure it with the swap operator (T1 -> T2);
3. evaluate Q2 (producers x served locations), restructure T3 -> T4;
4. join the two *factorised* results on item and location (Example 2),
   letting the optimiser pick the f-plan.

Run:  python examples/quickstart.py
"""

from repro import FDB, Query, RelationalEngine
from repro.ops import product, swap
from repro.workloads import (
    grocery_database,
    query_q1,
    query_q2,
    tree_t1,
)


def main() -> None:
    db = grocery_database()
    fdb = FDB(db)

    # -- Example 1: Q1 over T1 ------------------------------------------
    q1 = query_q1()
    print(f"Q1: {q1}")
    # Factorise over the paper's T1 (items on top); the optimiser's own
    # choice (location on top, i.e. T2) has the same cost s = 2.
    result_q1 = fdb.factorise_query(q1, tree_t1())
    print("f-tree T1:")
    print(result_q1.tree.pretty())
    print(f"factorised size: {result_q1.size()} singletons, "
          f"{result_q1.count()} tuples "
          f"({result_q1.flat_data_elements()} flat values)")
    print("factorisation:")
    print(" ", result_q1.pretty())
    print()

    # Flat evaluation gives the same relation.
    flat = RelationalEngine(db).evaluate(q1)
    assert result_q1.equals_flat(flat)
    print(f"RDB agrees: {len(flat)} tuples, "
          f"{len(flat) * flat.schema.arity} values stored flat")
    print()

    # -- Example 1 continued: restructure T1 -> T2 ----------------------
    regrouped = swap(result_q1, "o_item", "s_location")
    print("after swap(item, location)  [T1 -> T2]:")
    print(" ", regrouped.pretty())
    assert regrouped.same_relation(result_q1)
    print()

    # -- Q2 over T3, restructured to T4 ---------------------------------
    q2 = query_q2()
    print(f"Q2: {q2}")
    result_q2 = fdb.evaluate(q2)
    print("optimal f-tree (s=1, linear-size factorisation):")
    print(result_q2.tree.pretty())
    print(" ", result_q2.pretty())
    by_item = swap(result_q2, "p_supplier", "p_item")
    print("regrouped by item  [T3 -> T4]:")
    print(" ", by_item.pretty())
    print()

    # -- Example 2: join the two factorised results ---------------------
    joined = product(result_q1, result_q2)
    followup = Query.make(
        [],
        equalities=[
            ("o_item", "p_item"),
            ("s_location", "v_location"),
        ],
    )
    result, plan = fdb.evaluate_on(joined, followup)
    print("Example 2: Q1 JOIN Q2 on item and location")
    print(f"f-plan chosen by the optimiser: {plan}")
    print(f"plan cost: {plan.cost}")
    print("result f-tree [T6]:")
    print(result.tree.pretty())
    print(f"result: {result.count()} tuples in "
          f"{result.size()} singletons")
    for row in result:
        print("  ", {k: row[k] for k in sorted(row)})


if __name__ == "__main__":
    main()
