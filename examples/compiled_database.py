#!/usr/bin/env python
"""Compiled databases: a read-optimised factorised workload.

Section 1 envisages "compiled databases: static databases ... that can
be aggressively factorised to efficiently support a particular
scientific workload".  This example plays that scenario out on a
gene-annotation-flavoured dataset:

    Genes --annotated_with--> Terms --grouped_in--> Ontologies
    Genes --expressed_in--> Tissues

The universal relation is factorised *once* (the compilation step);
afterwards an interactive workload of selections and projections runs
entirely on the factorised form, and we track how representation size
evolves across query generations -- the paper's "sustainability"
observation (Experiments 2 and 4): factorisation quality does not
decay with the number of operations.

Run:  python examples/compiled_database.py
"""

import random
import time

from repro import FDB, Database, Query


def build_genome_database(
    genes: int = 120,
    terms: int = 40,
    ontologies: int = 6,
    tissues: int = 10,
    seed: int = 21,
) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.add_rows(
        "Annotated",
        ("gene", "a_term"),
        [
            (g, rng.randrange(terms))
            for g in range(genes)
            for _ in range(rng.randint(1, 4))
        ],
    )
    db.add_rows(
        "Grouped",
        ("g_term", "ontology"),
        [(t, t % ontologies) for t in range(terms)],
    )
    db.add_rows(
        "Expressed",
        ("e_gene", "tissue"),
        [
            (g, rng.randrange(tissues))
            for g in range(genes)
            for _ in range(rng.randint(1, 3))
        ],
    )
    return db


def main() -> None:
    db = build_genome_database()

    # -- compile: factorise the universal relation once ---------------
    fdb = FDB(db)
    query = Query.make(
        ["Annotated", "Grouped", "Expressed"],
        equalities=[("a_term", "g_term"), ("gene", "e_gene")],
    )
    start = time.perf_counter()
    compiled = fdb.evaluate(query)
    print(f"compiled in {time.perf_counter() - start:.3f}s: "
          f"{compiled.count()} tuples as {compiled.size()} singletons "
          f"(flat would be {compiled.flat_data_elements()} values)")
    print(compiled.tree.pretty())
    print()

    # -- interactive workload on the compiled form ---------------------
    workload = [
        Query.make([], constants=[("ontology", "=", 2)]),
        Query.make([], constants=[("tissue", "=", 4)]),
        Query.make(
            [],
            constants=[("ontology", "=", 1)],
            projection=["gene", "tissue"],
        ),
        Query.make([], projection=["ontology", "tissue"]),
    ]
    current = compiled
    for step, q in enumerate(workload, start=1):
        start = time.perf_counter()
        result, plan = fdb.evaluate_on(compiled, q)
        elapsed = time.perf_counter() - start
        flat_equiv = result.flat_data_elements()
        ratio = flat_equiv / max(result.size(), 1)
        print(f"query {step}: {q}")
        print(f"  -> {result.count()} tuples, {result.size()} "
              f"singletons ({ratio:.1f}x below flat), {elapsed:.4f}s")
    print()
    print("sustainability: every derived result stayed factorised -- "
          "no query flattened the data.")


if __name__ == "__main__":
    main()
