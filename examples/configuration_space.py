#!/usr/bin/env python
"""Configuration spaces: factorised representations of feasible builds.

Section 1: "factorised relations can be used to compactly represent
the space of feasible solutions to configuration problems ... where we
need to connect a fixed finite set of given components so as to meet a
given objective while respecting given constraints."

This example models a build-to-order PC configurator.  Compatibility
constraints are binary relations (CPU-board, board-case, PSU-case,
GPU-PSU); the *configuration space* is their join.  Flat, the space
has tens of thousands of combinations; factorised, it stays tiny, and
interactive narrowing (customer picks a case; requires a beefy PSU)
runs directly on the factorised form -- including instant counts and
per-component availability via factorised aggregation.

Run:  python examples/configuration_space.py
"""

import itertools
import random
import time

from repro import FDB, Database, Query


def build_catalog(seed: int = 3) -> Database:
    rng = random.Random(seed)
    cpus = [f"cpu{i}" for i in range(12)]
    boards = [f"board{i}" for i in range(8)]
    cases = [f"case{i}" for i in range(10)]
    psus = list(range(300, 1100, 100))  # wattages
    gpus = [f"gpu{i}" for i in range(9)]

    db = Database()
    db.add_rows(
        "CpuBoard",
        ("cb_cpu", "cb_board"),
        [
            (c, b)
            for c in cpus
            for b in boards
            if rng.random() < 0.5
        ],
    )
    db.add_rows(
        "BoardCase",
        ("bc_board", "bc_case"),
        [
            (b, k)
            for b in boards
            for k in cases
            if rng.random() < 0.6
        ],
    )
    db.add_rows(
        "PsuCase",
        ("pc_psu", "pc_case"),
        [
            (w, k)
            for w in psus
            for k in cases
            if rng.random() < 0.7
        ],
    )
    db.add_rows(
        "GpuPsu",
        ("gp_gpu", "gp_psu"),
        [
            (g, w)
            for g in gpus
            for w in psus
            # bigger GPUs need bigger PSUs
            if w >= 300 + 80 * int(g[3:])
        ],
    )
    return db


def main() -> None:
    db = build_catalog()
    fdb = FDB(db)
    space_query = Query.make(
        ["CpuBoard", "BoardCase", "PsuCase", "GpuPsu"],
        equalities=[
            ("cb_board", "bc_board"),
            ("bc_case", "pc_case"),
            ("pc_psu", "gp_psu"),
        ],
    )

    start = time.perf_counter()
    space = fdb.evaluate(space_query)
    elapsed = time.perf_counter() - start
    print(f"configuration space compiled in {elapsed:.3f}s")
    print(f"  feasible builds : {space.count():,}")
    print(f"  factorised size : {space.size():,} singletons")
    print(f"  flat size       : {space.flat_data_elements():,} values")
    print("  f-tree:")
    print("   ", space.tree.pretty_inline())
    print()

    # Interactive narrowing, all on the factorised representation.
    print("customer: 'case3, and at least 700W please'")
    narrowed, plan = fdb.evaluate_on(
        space,
        Query.make(
            [],
            constants=[
                ("bc_case", "=", "case3"),
                ("pc_psu", ">=", 700),
            ],
        ),
    )
    print(f"  remaining builds: {narrowed.count():,} "
          f"({narrowed.size():,} singletons)")

    # Factorised aggregation: instant per-component availability.
    print("  GPUs still available (builds per GPU):")
    for gpu, builds in sorted(narrowed.group_count("gp_gpu").items()):
        print(f"    {gpu}: {builds}")
    print(f"  distinct CPUs remaining: "
          f"{narrowed.count_distinct('cb_cpu')}")

    # Sanity: the factorised space is the real one.
    cheap_check = sum(
        1
        for d in narrowed
        if d["bc_case"] == "case3" and d["pc_psu"] >= 700
    )
    assert cheap_check == narrowed.count()
    print()
    print("(space verified by enumeration)")


if __name__ == "__main__":
    main()
