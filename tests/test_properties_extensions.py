"""Property-based tests for aggregation and serialisation.

Complements ``test_properties.py``: the extension features must agree
with brute-force enumeration / round-trip exactly, on arbitrary small
databases and queries.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core import serialize
from repro.engine import FDB
from repro.ops import absorb, push_up, pushable_nodes
from repro.query.equivalence import UnionFind
from repro.query.query import ConstantCondition, EqualityCondition, Query
from repro.workloads import permuted_variant
from tests.conftest import assignments
from tests.test_properties import databases, databases_with_query

SETTINGS = settings(max_examples=30, deadline=None)


@SETTINGS
@given(databases_with_query())
def test_serialisation_round_trip(db_query):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    restored = serialize.loads(serialize.dumps(fr))
    assert restored.tree.key() == fr.tree.key()
    assert restored.data == fr.data
    assert assignments(restored) == assignments(fr)


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_sum_and_extremes_match_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    rows = list(fr)
    attrs = sorted(fr.attributes)
    attr = attrs[pick % len(attrs)]
    assert fr.sum(attr) == sum(d[attr] for d in rows)
    assert fr.min(attr) == min(d[attr] for d in rows)
    assert fr.max(attr) == max(d[attr] for d in rows)
    assert fr.count_distinct(attr) == len({d[attr] for d in rows})


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_group_count_matches_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    attrs = sorted(fr.attributes)
    attr = attrs[pick % len(attrs)]
    expected = {}
    for d in fr:
        expected[d[attr]] = expected.get(d[attr], 0) + 1
    assert fr.group_count(attr) == expected


@SETTINGS
@given(databases_with_query())
def test_push_up_trace_is_semantics_preserving(db_query):
    """Every individually applied push-up preserves the relation."""
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    # Build an artificially deep (still valid) variant by using a
    # non-normalised evaluation order: absorb after product keeps
    # normalisation, so instead check the existing normalised tree
    # simply has no pushable nodes and push-ups on a denormalised
    # variant restore it.
    assert pushable_nodes(fr.tree) == []


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_absorb_equals_filtered_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    pairs = []
    for node in fr.tree.iter_nodes():
        for anc in fr.tree.ancestors(node):
            pairs.append((min(anc.label), min(node.label)))
    assume(pairs)
    a, b = pairs[pick % len(pairs)]
    out = absorb(fr, a, b)
    expected = {
        tuple(sorted(d.items())) for d in fr if d[a] == d[b]
    }
    assert assignments(out) == expected
    if not out.is_empty():
        out.validate()


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_canonical_key_invariant_under_permutation(db_query, seed):
    """Reformulation never changes the key -- and never the result.

    ``permuted_variant`` shuffles relation order, equality order and
    direction, constant order and projection order; the plan cache is
    only sound if every such rewrite maps to the same key and the same
    relation.
    """
    db, query = db_query
    variant = permuted_variant(query, seed=seed)
    assert variant.canonical_key() == query.canonical_key()
    fdb = FDB(db)
    assert assignments(fdb.evaluate(variant)) == assignments(
        fdb.evaluate(query)
    )


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_canonical_key_distinguishes_modified_queries(db_query, pick):
    """Non-equivalent rewrites must land on different keys."""
    db, query = db_query
    key = query.canonical_key()
    attrs = sorted(db.attributes())

    # Adding a constant selection is a different query.
    cond = ConstantCondition(attrs[pick % len(attrs)], "=", 1)
    assume(cond not in query.constants)
    narrowed = Query(
        query.relations,
        query.equalities,
        query.constants + (cond,),
        query.projection,
    )
    assert narrowed.canonical_key() != key

    # Merging two previously distinct attribute classes is too.
    uf = UnionFind(attrs)
    for eq in query.equalities:
        uf.union(eq.left, eq.right)
    unconnected = next(
        (
            (a, b)
            for a in attrs
            for b in attrs
            if a < b and not uf.connected(a, b)
        ),
        None,
    )
    assume(unconnected is not None)
    joined = Query(
        query.relations,
        query.equalities + (EqualityCondition(*unconnected),),
        query.constants,
        query.projection,
    )
    assert joined.canonical_key() != key

    # As is dropping a relation from the product.
    if len(query.relations) > 1:
        truncated = Query(
            query.relations[1:],
            query.equalities,
            query.constants,
            query.projection,
        )
        assert truncated.canonical_key() != key


@SETTINGS
@given(databases_with_query())
def test_redundant_equality_keeps_key(db_query):
    """An already-implied equality does not change the partition.

    The flipped duplicate of any present condition is always implied;
    when a class chains three attributes, so is the transitive edge.
    """
    db, query = db_query
    assume(query.equalities)
    eq = query.equalities[0]
    implied = [EqualityCondition(eq.right, eq.left)]
    uf = UnionFind(db.attributes())
    for cond in query.equalities:
        uf.union(cond.left, cond.right)
    big = [cls for cls in uf.classes() if len(cls) >= 3]
    if big:
        a, _, c = sorted(big[0])[:3]
        implied.append(EqualityCondition(a, c))
    for extra in implied:
        redundant = Query(
            query.relations,
            query.equalities + (extra,),
            query.constants,
            query.projection,
        )
        assert redundant.canonical_key() == query.canonical_key()


@SETTINGS
@given(databases())
def test_evaluate_on_identity_query(db):
    """A follow-up query with no conditions is the identity."""
    fdb = FDB(db)
    fr = fdb.evaluate(Query.make(db.names))
    out, plan = fdb.evaluate_on(fr, Query.make([]))
    assert len(plan) == 0
    assert assignments(out) == assignments(fr)
