"""Property-based tests for aggregation and serialisation.

Complements ``test_properties.py``: the extension features must agree
with brute-force enumeration / round-trip exactly, on arbitrary small
databases and queries.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core import serialize
from repro.engine import FDB
from repro.ops import absorb, push_up, pushable_nodes
from repro.query.query import Query
from tests.conftest import assignments
from tests.test_properties import databases, databases_with_query

SETTINGS = settings(max_examples=30, deadline=None)


@SETTINGS
@given(databases_with_query())
def test_serialisation_round_trip(db_query):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    restored = serialize.loads(serialize.dumps(fr))
    assert restored.tree.key() == fr.tree.key()
    assert restored.data == fr.data
    assert assignments(restored) == assignments(fr)


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_sum_and_extremes_match_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    rows = list(fr)
    attrs = sorted(fr.attributes)
    attr = attrs[pick % len(attrs)]
    assert fr.sum(attr) == sum(d[attr] for d in rows)
    assert fr.min(attr) == min(d[attr] for d in rows)
    assert fr.max(attr) == max(d[attr] for d in rows)
    assert fr.count_distinct(attr) == len({d[attr] for d in rows})


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_group_count_matches_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    attrs = sorted(fr.attributes)
    attr = attrs[pick % len(attrs)]
    expected = {}
    for d in fr:
        expected[d[attr]] = expected.get(d[attr], 0) + 1
    assert fr.group_count(attr) == expected


@SETTINGS
@given(databases_with_query())
def test_push_up_trace_is_semantics_preserving(db_query):
    """Every individually applied push-up preserves the relation."""
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    # Build an artificially deep (still valid) variant by using a
    # non-normalised evaluation order: absorb after product keeps
    # normalisation, so instead check the existing normalised tree
    # simply has no pushable nodes and push-ups on a denormalised
    # variant restore it.
    assert pushable_nodes(fr.tree) == []


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_absorb_equals_filtered_enumeration(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    pairs = []
    for node in fr.tree.iter_nodes():
        for anc in fr.tree.ancestors(node):
            pairs.append((min(anc.label), min(node.label)))
    assume(pairs)
    a, b = pairs[pick % len(pairs)]
    out = absorb(fr, a, b)
    expected = {
        tuple(sorted(d.items())) for d in fr if d[a] == d[b]
    }
    assert assignments(out) == expected
    if not out.is_empty():
        out.validate()


@SETTINGS
@given(databases())
def test_evaluate_on_identity_query(db):
    """A follow-up query with no conditions is the identity."""
    fdb = FDB(db)
    fr = fdb.evaluate(Query.make(db.names))
    out, plan = fdb.evaluate_on(fr, Query.make([]))
    assert len(plan) == 0
    assert assignments(out) == assignments(fr)
