"""Unit tests for the union-find structure."""

import pytest

from repro.query.equivalence import UnionFind


def test_singletons_after_construction():
    uf = UnionFind(["a", "b", "c"])
    assert len(uf) == 3
    assert uf.find("a") == "a"
    assert not uf.connected("a", "b")


def test_union_merges_classes():
    uf = UnionFind(["a", "b", "c"])
    assert uf.union("a", "b") is True
    assert uf.connected("a", "b")
    assert not uf.connected("a", "c")


def test_union_is_idempotent_and_reports_redundancy():
    uf = UnionFind(["a", "b", "c"])
    assert uf.union("a", "b")
    assert uf.union("b", "c")
    # a-c is now implied, the merge is redundant.
    assert uf.union("a", "c") is False


def test_transitive_connectivity():
    uf = UnionFind(range(10))
    for i in range(9):
        uf.union(i, i + 1)
    assert uf.connected(0, 9)
    assert len(uf.classes()) == 1


def test_classes_partition_the_items():
    uf = UnionFind("abcdef")
    uf.union("a", "b")
    uf.union("c", "d")
    classes = uf.classes()
    assert sorted(sorted(c) for c in classes) == [
        ["a", "b"],
        ["c", "d"],
        ["e"],
        ["f"],
    ]
    covered = set()
    for cls in classes:
        assert not (covered & cls)
        covered |= cls
    assert covered == set("abcdef")


def test_class_of_returns_full_class():
    uf = UnionFind(["a", "b", "c"])
    uf.union("a", "c")
    assert uf.class_of("a") == frozenset({"a", "c"})
    assert uf.class_of("b") == frozenset({"b"})


def test_add_is_idempotent():
    uf = UnionFind()
    uf.add("x")
    uf.union("x", "y")  # auto-adds y
    uf.add("x")
    assert uf.connected("x", "y")
    assert len(uf) == 2


def test_find_unknown_raises():
    uf = UnionFind(["a"])
    with pytest.raises(KeyError):
        uf.find("zzz")


def test_copy_is_independent():
    uf = UnionFind(["a", "b"])
    clone = uf.copy()
    uf.union("a", "b")
    assert uf.connected("a", "b")
    assert not clone.connected("a", "b")


def test_union_by_size_keeps_structure_flat():
    uf = UnionFind(range(100))
    for i in range(1, 100):
        uf.union(0, i)
    root = uf.find(0)
    assert all(uf.find(i) == root for i in range(100))
