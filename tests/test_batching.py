"""Overlapping batch submission (repro.service.batching)."""

from __future__ import annotations

import threading

import pytest

from repro.query.parser import parse_query
from repro.query.query import QueryError
from repro.service import BatchSubmitter, QuerySession
from repro.workloads import random_database, random_spj_queries


def _session(seed: int = 31) -> QuerySession:
    db = random_database(
        relations=3, attributes=6, tuples=6, domain=4, seed=seed
    )
    return QuerySession(db)


def test_submit_matches_run():
    session = _session()
    queries = random_spj_queries(
        session.database, 8, seed=32, max_relations=2, max_equalities=2
    )
    expected = [session.run(q).rows() for q in queries]
    futures = [session.submit(q) for q in queries]
    assert [f.result(30).rows() for f in futures] == expected
    session.close()


def test_unstarted_submitter_coalesces_one_wave():
    session = _session(33)
    submitter = BatchSubmitter(session, start=False)
    q1 = parse_query("SELECT a00 FROM R0")
    q2 = parse_query("SELECT a00 FROM R0 WHERE a00 >= 0")
    futures = [
        submitter.submit(q1),
        submitter.submit(q2),
        submitter.submit(q1),  # canonical repeat: deduped in the wave
    ]
    assert submitter.pending == 3
    assert submitter.drain_once() == 3
    counters = submitter.counters()
    assert counters["waves"] == 1
    assert counters["largest_wave"] == 3
    assert session.stats.batch_deduped == 1
    assert futures[2].result(1).deduped
    assert futures[0].result(1).rows() == futures[2].result(1).rows()
    submitter.close()
    session.close()


def test_errors_are_isolated_per_query():
    session = _session(34)
    submitter = BatchSubmitter(session, start=False)
    good = submitter.submit(parse_query("SELECT a00 FROM R0"))
    bad = submitter.submit(
        parse_query("SELECT nope FROM R0 WHERE nope = a00")
    )
    also_good = submitter.submit(parse_query("SELECT a01 FROM R0"))
    submitter.drain_once()
    assert good.result(1).count() >= 0
    assert also_good.result(1).count() >= 0
    with pytest.raises(QueryError):
        bad.result(1)
    assert submitter.counters()["isolated_errors"] == 1
    submitter.close()
    session.close()


def test_concurrent_submitters_all_resolve():
    session = _session(35)
    queries = random_spj_queries(
        session.database, 6, seed=36, max_relations=2, max_equalities=2
    )
    expected = {
        str(q): session.run(q).rows() for q in queries
    }
    results = {}
    errors = []
    lock = threading.Lock()

    def client(offset: int) -> None:
        try:
            futures = [
                (q, session.submit(q))
                for q in queries[offset:] + queries[:offset]
            ]
            for q, future in futures:
                rows = future.result(30).rows()
                with lock:
                    results[(offset, str(q))] = rows
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors
    for (offset, sql), rows in results.items():
        assert rows == expected[sql], (offset, sql)
    assert len(results) == 4 * len(queries)
    counters = session.submitter().counters()
    assert counters["submitted"] == 4 * len(queries)
    assert counters["waves"] >= 1
    session.close()


def test_close_drains_pending_and_rejects_new():
    session = _session(37)
    submitter = session.submitter()
    future = session.submit(parse_query("SELECT a00 FROM R0"))
    session.close()
    # close() waits for the coalescer to drain the queue ...
    assert future.result(1).count() >= 0
    # ... and the closed submitter rejects new submissions.
    with pytest.raises(RuntimeError):
        submitter.submit(parse_query("SELECT a00 FROM R0"))


def test_submit_rejects_unknown_engine():
    session = _session(38)
    with pytest.raises(ValueError):
        session.submit(parse_query("SELECT a00 FROM R0"), engine="nope")
    session.close()


def test_close_drains_past_fully_cancelled_waves():
    session = _session(39)
    submitter = BatchSubmitter(session, max_wave=1, start=False)
    doomed = submitter.submit(parse_query("SELECT a00 FROM R0"))
    doomed.cancel()
    survivor = submitter.submit(parse_query("SELECT a01 FROM R0"))
    submitter.close()
    assert survivor.result(1).count() >= 0
    session.close()
