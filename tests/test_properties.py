"""Property-based tests (hypothesis) for the core invariants.

These are the paper's semantic guarantees, checked on randomly drawn
databases, f-trees and operator applications:

- factorised evaluation computes exactly the flat join result;
- every f-plan operator preserves the represented relation;
- normalisation never increases the representation size;
- the measured representation size respects the ``O(|D|^{s(T)})``
  bound (with the constant made explicit);
- swap's priority-queue algorithm agrees with the naive reference.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Tuple

from hypothesis import assume, given, settings, strategies as st

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.costs.cost_model import s_tree
from repro.engine import FDB
from repro.ops import (
    merge,
    normalise,
    project,
    select_constant,
    swap,
    swap_reference,
)
from repro.optimiser import exhaustive_fplan, greedy_fplan
from repro.optimiser.ftree_optimiser import optimal_ftree
from repro.query.query import ConstantCondition, Query
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from tests.conftest import assignments, filtered, flat_assignments

# -- strategies ---------------------------------------------------------------

values = st.integers(min_value=1, max_value=4)


@st.composite
def databases(draw, relations=3, max_rows=5):
    """Small random databases with fixed binary schemas."""
    db = Database()
    for r in range(relations):
        rows = draw(
            st.lists(
                st.tuples(values, values), min_size=1, max_size=max_rows
            )
        )
        db.add_rows(f"T{r}", (f"x{2*r}", f"x{2*r+1}"), rows)
    return db


@st.composite
def databases_with_query(draw):
    db = draw(databases())
    attrs = db.attributes()
    n_eq = draw(st.integers(min_value=0, max_value=2))
    pairs: List[Tuple[str, str]] = []
    from repro.query.equivalence import UnionFind

    uf = UnionFind(attrs)
    tries = draw(
        st.lists(
            st.tuples(
                st.sampled_from(attrs), st.sampled_from(attrs)
            ),
            min_size=0,
            max_size=8,
        )
    )
    for a, b in tries:
        if len(pairs) >= n_eq:
            break
        if a != b and uf.union(a, b):
            pairs.append((a, b))
    return db, Query.make(db.names, equalities=pairs)


SETTINGS = settings(max_examples=40, deadline=None)


# -- properties ----------------------------------------------------------------


@SETTINGS
@given(databases_with_query())
def test_factorised_equals_flat(db_query):
    db, query = db_query
    fr = FDB(db, check_invariants=True).evaluate(query)
    flat = RelationalEngine(db).evaluate(query)
    assert assignments(fr) == flat_assignments(flat)


@SETTINGS
@given(databases_with_query())
def test_size_bound_holds(db_query):
    """|E| <= |S| * (s+1) * |D|^{s(T)} for the optimal f-tree."""
    db, query = db_query
    tree, cost = optimal_ftree(db, query)
    data = factorise(list(db), tree)
    fr = FactorisedRelation(tree, data)
    d = max(1, db.total_size)
    bound = len(fr.attributes) * (float(cost) + 1) * (
        d ** float(cost)
    )
    assert fr.size() <= bound + 1e-9


@SETTINGS
@given(databases_with_query())
def test_normalise_preserves_relation_and_size(db_query):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    out = normalise(fr)
    assert assignments(out) == assignments(fr)
    assert out.size() <= fr.size()


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_swap_preserves_relation(db_query, pick):
    db, query = db_query
    fr = FDB(db, check_invariants=True).evaluate(query)
    assume(not fr.is_empty())
    pairs = [
        (parent, node)
        for node in fr.tree.iter_nodes()
        for parent in [fr.tree.parent_of(node)]
        if parent is not None
    ]
    assume(pairs)
    parent, node = pairs[pick % len(pairs)]
    out = swap(
        fr, min(parent.label), min(node.label)
    ).validate()
    ref = swap_reference(fr, min(parent.label), min(node.label))
    assert out.data == ref.data
    assert assignments(out) == assignments(fr)
    assert out.tree.satisfies_path_constraint()
    assert out.tree.is_normalised()


@SETTINGS
@given(databases_with_query(), st.integers(1, 4), st.integers(0, 10**6))
def test_select_constant_matches_reference(db_query, constant, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    attrs = list(fr.attributes)
    attr = attrs[pick % len(attrs)]
    for op in ("=", "<", ">="):
        out = select_constant(
            fr, ConstantCondition(attr, op, constant)
        )
        if not out.is_empty():
            out.validate()
        cond = ConstantCondition(attr, op, constant)
        expected = filtered(
            fr, predicate=lambda d: cond.test(d[attr])
        )
        assert assignments(out) == expected


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_projection_matches_reference(db_query, pick):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    assume(not fr.is_empty())
    attrs = sorted(fr.attributes)
    keep = [a for i, a in enumerate(attrs) if (pick >> i) & 1]
    out = project(fr, keep)
    expected = {
        tuple(sorted((k, v) for k, v in d.items() if k in keep))
        for d in fr
    }
    assert assignments(out) == expected


@SETTINGS
@given(databases_with_query(), st.integers(0, 10**6))
def test_fplans_enforce_equality(db_query, pick):
    db, query = db_query
    fr = FDB(db, check_invariants=True).evaluate(query)
    assume(not fr.is_empty())
    labels = [n.label for n in fr.tree.iter_nodes()]
    assume(len(labels) >= 2)
    i = pick % len(labels)
    j = (pick // len(labels)) % len(labels)
    assume(i != j)
    eq = (min(labels[i]), min(labels[j]))
    for planner in (exhaustive_fplan, greedy_fplan):
        plan = planner(fr.tree, [eq])
        out = plan.execute(fr)
        if not out.is_empty():
            out.validate()
        assert assignments(out) == filtered(fr, [eq])


@SETTINGS
@given(databases_with_query())
def test_exhaustive_cost_never_exceeds_greedy(db_query):
    db, query = db_query
    fr = FDB(db).evaluate(query)
    labels = [n.label for n in fr.tree.iter_nodes()]
    assume(len(labels) >= 2)
    eq = (min(labels[0]), min(labels[1]))
    full = exhaustive_fplan(fr.tree, [eq])
    quick = greedy_fplan(fr.tree, [eq])
    assert full.cost.as_tuple()[:2] <= quick.cost.as_tuple()[:2]


@SETTINGS
@given(databases())
def test_count_equals_enumeration_length(db):
    query = Query.make(db.names)
    fr = FDB(db).evaluate(query)
    assert fr.count() == sum(1 for _ in fr)


@SETTINGS
@given(databases())
def test_constant_delay_enumeration_is_sorted_and_distinct(db):
    query = Query.make(db.names)
    fr = FDB(db).evaluate(query)
    rows = list(fr.rows())
    assert rows == sorted(set(rows))
