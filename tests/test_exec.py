"""Execution layer: executors, the union operator, worker functions."""

from __future__ import annotations

import pytest

from repro import ops
from repro.engine import FDB
from repro.exec import ParallelExecutor, SerialExecutor
from repro.exec import worker
from repro.ops.base import OperatorError
from repro.query.query import Query
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


@pytest.fixture(scope="module")
def db():
    return random_database(
        relations=4, attributes=8, tuples=10, domain=5, seed=11
    )


@pytest.fixture(scope="module")
def queries(db):
    return random_spj_queries(
        db, 10, seed=12, max_relations=3, max_equalities=3
    )


def reference_rows(db, query):
    fr = FDB(db, check_invariants=True).evaluate(query)
    return sorted(set(fr.rows(fr.attributes)))


# -- the union operator ----------------------------------------------------


def test_union_requires_identical_trees(db):
    fdb = FDB(db)
    a = fdb.evaluate(Query.make(["R0"]))
    b = fdb.evaluate(Query.make(["R1"]))
    with pytest.raises(OperatorError):
        ops.union(a, b)


def test_union_with_empty_side_returns_other(db):
    fdb = FDB(db)
    query = Query.make(["R0"])
    full = fdb.evaluate(query)
    empty = fdb.evaluate(
        Query.make(["R0"], constants=[("a00", "=", -999)])
    )
    # Same tree only when the constant kept the tree shape; build the
    # empty side over the full tree directly instead.
    from repro.core.factorised import FactorisedRelation

    hollow = FactorisedRelation(full.tree, None)
    assert ops.union(full, hollow).data is full.data
    assert ops.union(hollow, full).data is full.data
    assert ops.union(hollow, hollow).data is None
    assert empty.count() == 0


def test_union_of_shard_parts_equals_full_join(db, queries):
    """Per-shard factorised results union to the unsharded result."""
    sdb = ShardedDatabase.from_database(db, shards=3)
    for query in queries:
        fdb = FDB(db)
        tree = fdb.optimal_tree(query)
        parts = [
            worker.evaluate_shard(sdb, True, query, tree, i,
                                  sdb.fanout_relation(query.relations))
            for i in range(3)
        ]
        combined = worker.combine_shards(parts, query, True)
        order = combined.attributes
        assert sorted(set(combined.rows(order))) == reference_rows(
            db, query
        )


def test_union_all_of_nothing_is_none():
    assert ops.union_all([]) is None


def test_combine_shards_rejects_empty_parts(db):
    with pytest.raises(ValueError):
        worker.combine_shards([], Query.make(["R0"]), False)


# -- executors agree with the reference ------------------------------------


def test_serial_executor_matches_reference(db, queries):
    with QuerySession(db, executor=SerialExecutor()) as session:
        for query in queries:
            assert session.run(query).rows() == reference_rows(db, query)


@pytest.mark.parametrize("pool", ["process", "thread"])
def test_parallel_executor_flat_database(db, queries, pool):
    executor = ParallelExecutor(max_workers=2, pool=pool)
    with QuerySession(db, executor=executor) as session:
        results = session.run_batch(queries)
        for query, result in zip(queries, results):
            assert result.engine == "fdb"
            assert result.rows() == reference_rows(db, query)
        assert executor.pool_kind == pool


@pytest.mark.parametrize("strategy", ["hash", "round_robin"])
def test_parallel_executor_sharded_database(db, queries, strategy):
    sdb = ShardedDatabase.from_database(db, shards=3, strategy=strategy)
    executor = ParallelExecutor(max_workers=3)
    with QuerySession(
        sdb, executor=executor, check_invariants=True
    ) as session:
        results = session.run_batch(queries)
        for query, result in zip(queries, results):
            assert result.rows() == reference_rows(db, query)


def test_parallel_executor_uses_and_fills_plan_cache(db, queries):
    executor = ParallelExecutor(max_workers=2)
    with QuerySession(db, executor=executor) as session:
        session.run_batch(queries)
        assert session.stats.plan_misses == len(queries)
        session.run_batch(queries)
        assert session.stats.plan_hits == len(queries)
        assert session.stats.plan_misses == len(queries)  # unchanged


def test_parallel_executor_fallback_and_flat_engines(db, queries):
    executor = ParallelExecutor(max_workers=2)
    with QuerySession(
        db, executor=executor, fallback_budget=0.0
    ) as session:
        for query in queries[:3]:
            result = session.run(query)
            assert result.engine == "flat"
            assert result.rows() == reference_rows(db, query)
        assert session.stats.fallbacks == 3
        flat = session.run(queries[0], engine="flat")
        assert flat.engine == "flat"
        lite = session.run(queries[0], engine="sqlite")
        assert lite.engine == "sqlite"
        assert flat.rows() == lite.rows()


def test_parallel_executor_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ParallelExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ParallelExecutor(pool="greenlet")


def test_pool_rebuilt_after_mutation(db, queries):
    mutable = random_database(
        relations=3, attributes=6, tuples=8, domain=4, seed=31
    )
    sdb = ShardedDatabase.from_database(mutable, shards=2)
    executor = ParallelExecutor(max_workers=2)
    with QuerySession(sdb, executor=executor) as session:
        query = Query.make(["R0", "R1"])
        before = session.run(query).count()
        token = executor._token
        sdb.extend_rows(
            "R0", [(97, 98)]
        )
        after = session.run(query)
        assert session.stats.invalidations == 1
        assert executor._token != token  # fresh pool on the new version
        assert after.rows() == reference_rows(sdb, query)
        assert after.count() >= before  # one row was appended


def test_invalid_query_raises_in_caller(db):
    executor = ParallelExecutor(max_workers=2)
    from repro.query.query import QueryError

    with QuerySession(db, executor=executor) as session:
        with pytest.raises(QueryError):
            session.run(Query.make(["R0"], constants=[("zz", "=", 1)]))


def test_empty_batch(db):
    with QuerySession(db, executor=ParallelExecutor()) as session:
        assert session.run_batch([]) == []
