"""Unit tests for factorised-relation serialisation."""

import json

import pytest

from repro.core import serialize
from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.relational.relation import Relation
from repro.workloads import grocery_database, query_q1
from tests.conftest import assignments


@pytest.fixture
def fr():
    db = grocery_database()
    return FDB(db).evaluate(query_q1())


def test_round_trip_preserves_everything(fr):
    restored = serialize.loads(serialize.dumps(fr))
    assert restored.tree.key() == fr.tree.key()
    assert restored.data == fr.data
    assert assignments(restored) == assignments(fr)
    assert restored.size() == fr.size()


def test_round_trip_through_file(fr, tmp_path):
    path = str(tmp_path / "q1.fdb.json")
    serialize.save(fr, path)
    restored = serialize.load_path(path)
    assert restored.tree.key() == fr.tree.key()
    assert restored.data == fr.data


def test_empty_relation_round_trip():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    fr = FactorisedRelation(tree, None)
    restored = serialize.loads(serialize.dumps(fr))
    assert restored.is_empty()
    assert restored.tree.key() == tree.key()


def test_constant_nodes_round_trip():
    from repro.ops import select_constant
    from repro.query.query import ConstantCondition

    db = grocery_database()
    fr = FDB(db).evaluate(query_q1())
    fr = select_constant(fr, ConstantCondition("oid", "=", 1))
    restored = serialize.loads(serialize.dumps(fr))
    assert restored.tree.node_of("oid").constant
    assert assignments(restored) == assignments(fr)


def test_document_has_format_marker(fr):
    doc = serialize.to_document(fr)
    assert doc["format"] == serialize.FORMAT_NAME
    assert doc["version"] == serialize.FORMAT_VERSION
    json.dumps(doc)  # must be JSON-representable


def test_wrong_format_rejected():
    with pytest.raises(serialize.SerializationError):
        serialize.from_document({"format": "something-else"})


def test_wrong_version_rejected(fr):
    doc = serialize.to_document(fr)
    doc["version"] = 99
    with pytest.raises(serialize.SerializationError):
        serialize.from_document(doc)


def test_corrupted_data_rejected(fr):
    doc = serialize.to_document(fr)
    doc["data"] = {"not": "a product"}
    with pytest.raises(serialize.SerializationError):
        serialize.from_document(doc)


def test_unsorted_data_rejected():
    # Valid JSON but violating the order invariant must not load.
    r = Relation.from_rows("R", ("a",), [(1,), (2,)])
    tree = FTree.from_nested([("a", [])], [{"a"}])
    fr = FactorisedRelation(tree, factorise([r], tree))
    doc = serialize.to_document(fr)
    doc["data"][0] = list(reversed(doc["data"][0]))
    with pytest.raises(serialize.SerializationError):
        serialize.from_document(doc)


def test_malformed_tree_rejected(fr):
    doc = serialize.to_document(fr)
    doc["tree"] = [{"children": []}]  # missing label
    with pytest.raises(serialize.SerializationError):
        serialize.from_document(doc)


def test_serialised_is_compact_for_factorised_data(fr):
    """The paper's point, in bytes: serialised factorisation is
    smaller than the serialised flat relation."""
    flat_json = json.dumps(
        sorted(tuple(sorted(d.items())) for d in fr)
    )
    factorised_json = serialize.dumps(fr)
    assert len(factorised_json) < len(flat_json)
