"""Tests for the estimate-based cost measure in the optimisers.

Section 4.1 defines two cost measures and the experiments note "the
alternative cost estimate ... would lead to very similar choices of
optimal f-plans"; these tests check the estimate-driven planners are
correct and usually agree with the asymptotic ones.
"""

import pytest

from repro.costs.cardinality import Statistics
from repro.engine import FDB
from repro.optimiser import exhaustive_fplan, greedy_fplan
from repro.query.query import Query
from repro.workloads import (
    grocery_database,
    query_q1,
    random_database,
    random_followup_equalities,
    random_query,
)
from tests.conftest import assignments, filtered


def test_estimate_exhaustive_produces_correct_plan():
    db = grocery_database()
    stats = Statistics.of_database(db)
    fdb = FDB(db)
    fr = fdb.evaluate(query_q1())
    eqs = [("o_item", "dispatcher")]
    plan = exhaustive_fplan(fr.tree, eqs, stats=stats)
    out = plan.execute(fr)
    assert assignments(out) == filtered(fr, eqs)


def test_estimate_greedy_produces_correct_plan():
    db = grocery_database()
    stats = Statistics.of_database(db)
    fdb = FDB(db)
    fr = fdb.evaluate(query_q1())
    # (a same-typed attribute pair: values stay comparable)
    eqs = [("o_item", "dispatcher")]
    plan = greedy_fplan(fr.tree, eqs, stats=stats)
    out = plan.execute(fr)
    assert assignments(out) == filtered(fr, eqs)


@pytest.mark.parametrize("seed", range(4))
def test_cost_models_reach_same_relation(seed):
    db = random_database(3, 8, 15, domain=5, seed=seed)
    q = random_query(db, 2, seed=seed + 9)
    stats = Statistics.of_database(db)
    fdb = FDB(db)
    fr = fdb.evaluate(q)
    if fr.is_empty():
        pytest.skip("empty input")
    eqs = random_followup_equalities(fr.tree, 1, seed=seed)
    asym = exhaustive_fplan(fr.tree, eqs).execute(fr)
    est = exhaustive_fplan(fr.tree, eqs, stats=stats).execute(fr)
    assert assignments(asym) == assignments(est)


@pytest.mark.parametrize("seed", range(3))
def test_cost_models_often_choose_same_final_tree(seed):
    """Weak form of the paper's "very similar choices" claim."""
    db = random_database(4, 10, 20, domain=6, seed=seed)
    q = random_query(db, 3, seed=seed + 17)
    stats = Statistics.of_database(db)
    fdb = FDB(db)
    fr = fdb.evaluate(q)
    if fr.is_empty():
        pytest.skip("empty input")
    eqs = random_followup_equalities(fr.tree, 1, seed=seed + 2)
    asym = exhaustive_fplan(fr.tree, eqs)
    est = exhaustive_fplan(fr.tree, eqs, stats=stats, max_states=50_000)
    # Same goal partition always; usually even the same tree shape.
    assert (
        asym.output_tree.class_partition()
        == est.output_tree.class_partition()
    )


def test_engine_facade_accepts_cost_model():
    db = grocery_database()
    fdb = FDB(db, plan_search="greedy", cost_model="estimates")
    fr = fdb.evaluate(query_q1())
    followup = Query.make([], constants=[("oid", "=", 1)])
    out, _ = fdb.evaluate_on(fr, followup)
    assert all(d["oid"] == 1 for d in out)
    with pytest.raises(ValueError):
        FDB(db, cost_model="psychic")
