"""Unit tests for the exhaustive and greedy f-plan optimisers."""

from fractions import Fraction

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.costs.cost_model import s_tree
from repro.optimiser import (
    exhaustive_fplan,
    greedy_fplan,
    target_partition,
    FPlan,
    Step,
)
from repro.relational.relation import Relation
from repro.workloads import (
    grocery_database,
    random_database,
    random_followup_equalities,
    random_query,
    tree_t1,
)
from repro.engine import FDB
from repro.query.query import Query
from tests.conftest import assignments, filtered


def example11_tree():
    edges = [{"A", "B", "C"}, {"D", "E", "F"}]
    return FTree.from_nested(
        [
            (
                ("A", "D"),
                [("B", [("C", [])]), ("E", [("F", [])])],
            )
        ],
        edges=edges,
    )


def test_example11_exhaustive_finds_cost_one_plan():
    """Example 11: the optimal plan for B = F has cost 1, not 2."""
    tree = example11_tree()
    plan = exhaustive_fplan(tree, [("B", "F")])
    assert plan.cost.bottleneck == Fraction(1)
    assert plan.cost.final == Fraction(1)
    merged = plan.output_tree.node_of("B")
    assert merged.label == frozenset({"B", "F"})


def test_example11_naive_plan_costs_two():
    """The first f-plan of Example 11 (swap B up, absorb F) costs 2."""
    tree = example11_tree()
    plan = FPlan(
        tree,
        [Step("swap", ("A", "B")), Step("absorb", ("B", "F"))],
    )
    assert plan.cost.bottleneck == Fraction(2)


def test_target_partition():
    tree = example11_tree()
    goal = target_partition(tree, [("B", "F")])
    assert goal["B"] == goal["F"] == frozenset({"B", "F"})
    assert goal["A"] == frozenset({"A", "D"})


def test_exhaustive_plan_executes_correctly():
    tree = example11_tree()
    r1 = Relation.from_rows(
        "R1",
        ("A", "B", "C"),
        [(1, 1, 1), (1, 2, 1), (2, 2, 2), (2, 1, 2)],
    )
    r2 = Relation.from_rows(
        "R2",
        ("D", "E", "F"),
        [(1, 5, 1), (1, 5, 2), (2, 6, 2), (2, 6, 1)],
    )
    fr = FactorisedRelation(tree, factorise([r1, r2], tree))
    plan = exhaustive_fplan(tree, [("B", "F")])
    out = plan.execute(fr).validate()
    assert assignments(out) == filtered(fr, [("B", "F")])


def test_greedy_matches_exhaustive_semantics():
    tree = example11_tree()
    r1 = Relation.from_rows(
        "R1", ("A", "B", "C"), [(1, 1, 1), (1, 2, 2), (2, 1, 1)]
    )
    r2 = Relation.from_rows(
        "R2", ("D", "E", "F"), [(1, 5, 1), (2, 6, 2), (1, 6, 2)]
    )
    fr = FactorisedRelation(tree, factorise([r1, r2], tree))
    full = exhaustive_fplan(tree, [("B", "F")]).execute(fr)
    greedy = greedy_fplan(tree, [("B", "F")]).execute(fr)
    assert assignments(full) == assignments(greedy)


def test_exhaustive_never_worse_than_greedy():
    for seed in range(6):
        db = random_database(3, 7, 12, domain=5, seed=seed)
        q = random_query(db, 2, seed=seed + 100)
        fdb = FDB(db)
        tree = fdb.optimal_tree(q)
        eqs = random_followup_equalities(tree, 2, seed=seed)
        full = exhaustive_fplan(tree, eqs)
        greedy = greedy_fplan(tree, eqs)
        assert full.cost.as_tuple()[:2] <= greedy.cost.as_tuple()[:2]
        # Both reach the same class partition.
        assert (
            full.output_tree.class_partition()
            == greedy.output_tree.class_partition()
        )


def test_plans_on_already_satisfied_condition_are_empty():
    tree = tree_t1()  # o_item and s_item already share a node
    plan = exhaustive_fplan(tree, [("o_item", "s_item")])
    assert len(plan) == 0
    gplan = greedy_fplan(tree, [("o_item", "s_item")])
    assert len(gplan) == 0


def test_plan_execute_rejects_wrong_input_tree():
    tree = example11_tree()
    plan = exhaustive_fplan(tree, [("B", "F")])
    other_tree = tree_t1()
    db = grocery_database()
    fr = FactorisedRelation(
        other_tree,
        factorise(
            [db["Orders"], db["Store"], db["Disp"]], other_tree
        ),
    )
    with pytest.raises(ValueError):
        plan.execute(fr)


def test_fplan_then_extends():
    tree = example11_tree()
    base = FPlan(tree, [Step("swap", ("A", "B"))])
    extended = base.then([Step("absorb", ("B", "F"))])
    assert len(extended) == 2
    assert extended.output_tree.node_of("B").label == frozenset(
        {"B", "F"}
    )


def test_greedy_on_disjoint_trees_merges_at_top():
    tree = FTree.from_nested(
        [("a", [("b", [])]), ("c", [("d", [])])],
        edges=[{"a", "b"}, {"c", "d"}],
    )
    plan = greedy_fplan(tree, [("b", "d")])
    out = plan.output_tree
    assert out.node_of("b").label == frozenset({"b", "d"})
    assert out.satisfies_path_constraint()


def test_exhaustive_multi_condition_plan():
    db = grocery_database()
    fdb = FDB(db)
    q = Query.make(
        ["Orders", "Store", "Disp", "Produce", "Serve"],
        equalities=[
            ("o_item", "s_item"),
            ("s_location", "d_location"),
        ],
    )
    tree = fdb.optimal_tree(q)
    fr = fdb.factorise_query(q, tree)
    eqs = [("o_item", "p_item"), ("s_location", "v_location")]
    plan = exhaustive_fplan(tree, eqs)
    out = plan.execute(fr).validate()
    assert assignments(out) == filtered(fr, eqs)
