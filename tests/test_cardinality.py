"""Unit tests for the estimate-based cost measure."""

from repro.costs.cardinality import (
    Statistics,
    estimate_plan_cost,
    estimate_representation_size,
)
from repro.core.ftree import FNode, FTree
from repro.query.hypergraph import Hypergraph
from repro.relational.database import Database
from repro.workloads import grocery_database, tree_t1, tree_t3


def stats_of(db):
    return Statistics.of_database(db)


def test_of_database_snapshots_catalogue():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    stats = stats_of(db)
    assert stats.cardinalities["R"] == 3
    assert stats.distincts["R"]["a"] == 2


def test_relations_covering_label():
    stats = stats_of(grocery_database())
    assert stats.relations_covering(frozenset({"o_item", "s_item"})) == [
        "Orders",
        "Store",
    ]


def test_class_distinct_takes_minimum():
    db = Database()
    db.add_rows("R", ("a",), [(i,) for i in range(10)])
    db.add_rows("S", ("b",), [(i % 3,) for i in range(10)])
    stats = stats_of(db)
    assert stats.class_distinct(frozenset({"a", "b"})) == 3


def test_estimate_join_single_relation_is_cardinality():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (2, 2), (3, 3)])
    stats = stats_of(db)
    est = stats.estimate_join([frozenset({"a"}), frozenset({"b"})])
    assert est == 3.0


def test_estimate_join_divides_by_shared_class_domain():
    db = Database()
    db.add_rows("R", ("a",), [(i,) for i in range(10)])
    db.add_rows("S", ("b",), [(i,) for i in range(10)])
    stats = stats_of(db)
    est = stats.estimate_join([frozenset({"a", "b"})])
    assert est == 10.0  # 10 * 10 / 10


def test_path_cardinality_capped_by_domains():
    db = Database()
    db.add_rows("R", ("a", "b"), [(i, i % 2) for i in range(100)])
    stats = stats_of(db)
    est = stats.estimate_path_cardinality([frozenset({"b"})])
    assert est <= 2.0


def test_representation_size_estimate_prefers_t3():
    """Estimates agree with s(T): T3 (cost 1) beats T1-shaped trees."""
    db = grocery_database()
    stats = stats_of(db)
    t3 = estimate_representation_size(tree_t3(), stats)
    # A worst-case chain over the same attributes: supplier-item-location
    chain = FTree.from_nested(
        [
            (
                ("p_supplier", "v_supplier"),
                [("p_item", [("v_location", [])])],
            )
        ],
        edges=[
            {"p_supplier", "p_item"},
            {"v_supplier", "v_location"},
        ],
    )
    assert t3 <= estimate_representation_size(chain, stats)


def test_constant_nodes_cost_one_singleton():
    tree = FTree(
        [FNode({"x"}, constant=True)],
        Hypergraph([]),
    )
    db = Database()
    db.add_rows("R", ("x",), [(1,), (2,)])
    assert estimate_representation_size(tree, stats_of(db)) == 1.0


def test_plan_cost_sums_tree_estimates():
    db = grocery_database()
    stats = stats_of(db)
    single = estimate_representation_size(tree_t3(), stats)
    assert estimate_plan_cost([tree_t3(), tree_t3()], stats) == (
        2 * single
    )
