"""A TCP chaos proxy for fault-injecting the cluster tier.

:class:`ChaosProxy` sits between a coordinator and one worker server
and misbehaves on command, at the byte level, without the worker's
cooperation -- so the tests exercise exactly the failures a real
deployment sees:

- ``refuse(True)`` -- accept and immediately close (a dead or
  firewalled worker at connect time);
- ``delay = seconds`` -- hold every forwarded chunk (a slow network;
  drives per-attempt timeouts);
- ``kill_after_bytes(n)`` -- forward ``n`` more server-to-client
  bytes, then cut both directions.  Because wire frames are length-
  prefixed, any ``n`` that lands inside a response *truncates it
  mid-frame* -- the client sees a short read, never a clean EOF
  between frames;
- ``kill_connections()`` -- cut every live connection right now (a
  worker process dying mid-batch);
- ``kill_connections_after(seconds)`` -- the same, on a schedule,
  from a timer thread (dying *while* a batch is in flight).

Everything is thread-safe; a test flips modes while connections are
live.  The proxy listens on an ephemeral port (:attr:`address`) and
counts what it saw (:attr:`connections_seen`, :attr:`bytes_down`,
:attr:`kills`), so tests can assert the chaos actually happened --
a fault-injection test that silently injected nothing proves nothing.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple


class ChaosProxy:
    """A controllable man-in-the-middle for one worker address."""

    def __init__(
        self, target: Tuple[str, int], host: str = "127.0.0.1"
    ) -> None:
        self.target = (target[0], int(target[1]))
        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, 0))
        self._listener.listen(16)
        #: Where clients connect instead of the worker.
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._lock = threading.Lock()
        self._refuse = False
        self.delay = 0.0
        self._down_budget: Optional[int] = None
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._timers: List[threading.Timer] = []
        self._closed = False
        self.connections_seen = 0
        self.bytes_up = 0
        self.bytes_down = 0
        self.kills = 0
        self._thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._thread.start()

    # -- chaos controls ----------------------------------------------------

    def refuse(self, flag: bool = True) -> None:
        """Refuse new connections (live ones are untouched)."""
        with self._lock:
            self._refuse = flag

    def kill_after_bytes(self, budget: int) -> None:
        """Cut every connection after ``budget`` more downstream
        (server-to-client) bytes -- mid-frame, for any budget that
        lands inside a length-prefixed response."""
        with self._lock:
            self._down_budget = int(budget)

    def kill_connections(self) -> None:
        """Cut every live connection immediately, both directions."""
        with self._lock:
            pairs, self._pairs = self._pairs, []
            if pairs:
                self.kills += 1
        for a, b in pairs:
            _hard_close(a)
            _hard_close(b)

    def kill_connections_after(self, seconds: float) -> threading.Timer:
        """Schedule :meth:`kill_connections` from a timer thread."""
        timer = threading.Timer(seconds, self.kill_connections)
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()
        return timer

    def heal(self) -> None:
        """Back to a faithful pass-through proxy."""
        with self._lock:
            self._refuse = False
            self.delay = 0.0
            self._down_budget = None

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers = list(self._timers)
        for timer in timers:
            timer.cancel()
        _hard_close(self._listener)
        self.kill_connections()
        self._thread.join(timeout=10)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                refused = self._refuse or self._closed
            if refused:
                _hard_close(client)
                continue
            try:
                upstream = socket.create_connection(
                    self.target, timeout=10
                )
            except OSError:
                _hard_close(client)
                continue
            with self._lock:
                self.connections_seen += 1
                self._pairs.append((client, upstream))
            for source, sink, down in (
                (upstream, client, True),
                (client, upstream, False),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(source, sink, down),
                    daemon=True,
                ).start()

    def _pump(
        self, source: socket.socket, sink: socket.socket, down: bool
    ) -> None:
        while True:
            try:
                chunk = source.recv(4096)
            except OSError:
                chunk = b""
            if not chunk:
                # EOF or cut: drop the whole pair so a half-open
                # socket cannot linger as a hung connection.
                self._drop(source, sink)
                return
            with self._lock:
                delay = self.delay
                cut = False
                if down:
                    if self._down_budget is not None:
                        if len(chunk) >= self._down_budget:
                            chunk = chunk[: self._down_budget]
                            self._down_budget = 0
                            cut = True
                        else:
                            self._down_budget -= len(chunk)
                    self.bytes_down += len(chunk)
                else:
                    self.bytes_up += len(chunk)
            if delay:
                threading.Event().wait(delay)
            try:
                if chunk:
                    sink.sendall(chunk)
            except OSError:
                self._drop(source, sink)
                return
            if cut:
                with self._lock:
                    self.kills += 1
                self._drop(source, sink)
                return

    def _drop(self, a: socket.socket, b: socket.socket) -> None:
        with self._lock:
            self._pairs = [
                pair
                for pair in self._pairs
                if a not in pair and b not in pair
            ]
        _hard_close(a)
        _hard_close(b)


def _hard_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
