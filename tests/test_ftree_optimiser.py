"""Unit tests for f-tree enumeration and the optimal-f-tree DP."""

from fractions import Fraction

import pytest

from repro.core.ftree import FTree
from repro.costs.cost_model import s_tree
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    optimal_ftree,
    query_classes_and_edges,
)
from repro.optimiser.ftree_space import (
    count_normalised_ftrees,
    enumerate_normalised_ftrees,
)
from repro.query.hypergraph import Hypergraph
from repro.query.query import Query
from repro.workloads import (
    grocery_database,
    query_q1,
    query_q2,
    random_database,
    random_query,
)


def lab(*attrs):
    return frozenset(attrs)


def test_enumeration_two_dependent_classes():
    h = Hypergraph([{"a", "b"}])
    trees = list(
        enumerate_normalised_ftrees([lab("a"), lab("b")], h)
    )
    shapes = sorted(t.pretty_inline() for t in trees)
    assert shapes == ["{a}({b})", "{b}({a})"]


def test_enumeration_independent_classes_forest_only():
    h = Hypergraph([{"a"}, {"b"}])
    trees = list(
        enumerate_normalised_ftrees([lab("a"), lab("b")], h)
    )
    # Normalised: only the forest of two roots.
    assert len(trees) == 1
    assert trees[0].pretty_inline() == "{a} | {b}"


def test_enumeration_all_trees_are_normalised_and_valid():
    h = Hypergraph([{"a", "b"}, {"b", "c"}, {"c", "d"}])
    labels = [lab(x) for x in "abcd"]
    trees = list(enumerate_normalised_ftrees(labels, h))
    assert trees
    for tree in trees:
        assert tree.is_normalised()
        assert tree.satisfies_path_constraint()
    # All trees distinct.
    assert len({t.key() for t in trees}) == len(trees)


def test_count_single_relation_chains():
    # One edge over k classes: every permutation chain is normalised.
    k = 4
    h = Hypergraph([set("abcd")])
    labels = [lab(x) for x in "abcd"]
    assert count_normalised_ftrees(labels, h) == 24  # 4!


def test_dp_matches_enumeration_on_small_instances():
    cases = [
        ([lab(x) for x in "abc"], Hypergraph([{"a", "b"}, {"b", "c"}])),
        (
            [lab(x) for x in "abcd"],
            Hypergraph([{"a", "b"}, {"b", "c"}, {"c", "d"}]),
        ),
        (
            [lab(x) for x in "abc"],
            Hypergraph([{"a", "b"}, {"b", "c"}, {"a", "c"}]),
        ),
        (
            [lab("a", "b"), lab("c"), lab("d")],
            Hypergraph([{"a", "c"}, {"b", "d"}]),
        ),
    ]
    for labels, edges in cases:
        best_enum = min(
            s_tree(t)
            for t in enumerate_normalised_ftrees(labels, edges)
        )
        tree, cost = FTreeOptimiser(labels, edges).optimise()
        assert cost == best_enum
        assert s_tree(tree) == cost
        assert tree.is_normalised()
        assert tree.satisfies_path_constraint()


def test_optimal_ftree_for_q2_has_cost_one():
    """Example 5: s(Q2) = 1 thanks to T3."""
    db = grocery_database()
    tree, cost = optimal_ftree(db, query_q2())
    assert cost == Fraction(1)
    # The root must be the supplier class with items and locations below.
    assert tree.roots[0].label == frozenset(
        {"p_supplier", "v_supplier"}
    )


def test_optimal_ftree_for_q1_has_cost_two():
    """Example 5: s(Q1) = 2; no f-tree does better."""
    db = grocery_database()
    _, cost = optimal_ftree(db, query_q1())
    assert cost == Fraction(2)


def test_query_classes_and_edges():
    db = grocery_database()
    classes, edges = query_classes_and_edges(db, query_q1())
    assert frozenset({"o_item", "s_item"}) in classes
    assert frozenset({"s_location", "d_location"}) in classes
    assert len(edges) == 3


def test_single_relation_query_costs_one():
    db = random_database(1, 5, 20, seed=1)
    q = Query.make(db.names)
    _, cost = optimal_ftree(db, q)
    assert cost == Fraction(1)


def test_chain_query_cost_grows_like_log():
    """Example 6: chains of joins have s = Theta(log n)."""
    from repro.relational.database import Database

    def chain_db(n):
        db = Database()
        for i in range(n):
            db.add_rows(
                f"R{i}", (f"A{i}", f"B{i}"), [(1, 1)]
            )
        return db

    def chain_query(n):
        return Query.make(
            [f"R{i}" for i in range(n)],
            equalities=[
                (f"B{i}", f"A{i+1}") for i in range(n - 1)
            ],
        )

    _, cost2 = optimal_ftree(chain_db(2), chain_query(2))
    _, cost4 = optimal_ftree(chain_db(4), chain_query(4))
    _, cost8 = optimal_ftree(chain_db(8), chain_query(8))
    assert cost2 == Fraction(1)
    assert cost4 == Fraction(2)
    assert cost2 <= cost4 <= cost8
    assert cost8 <= Fraction(3)  # log-like growth, not linear


def test_random_queries_dp_vs_enumeration():
    for seed in range(4):
        db = random_database(3, 6, 10, domain=5, seed=seed)
        q = random_query(db, 2, seed=seed)
        classes, edges = query_classes_and_edges(db, q)
        tree, cost = FTreeOptimiser(classes, edges).optimise()
        best = min(
            s_tree(t)
            for t in enumerate_normalised_ftrees(classes, edges)
        )
        assert cost == best
