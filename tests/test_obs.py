"""The observability layer (:mod:`repro.obs`): registry, tracing,
slow-query log, per-kernel profiling -- and the propagation paths
across pools and the wire that make one trace tell the whole story."""

from __future__ import annotations

import json

import pytest

from repro import persist
from repro.net import RemoteExecutor, RemoteSession, ServerThread
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    activate,
    context,
    current,
    span,
)
from repro.obs import trace as obs_trace
from repro.obs.profile import profile_plan
from repro.obs.report import session_lines
from repro.query.parser import parse_query
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


def _database(seed: int = 81):
    return random_database(
        relations=3, attributes=6, tuples=8, domain=4, seed=seed
    )


def _span_names(result):
    return [record["name"] for record in result.spans or ()]


# -- metrics registry --------------------------------------------------------


def test_registry_instruments_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("frames_total").inc()
    registry.counter("frames_total").inc(2)
    registry.gauge("depth").set(4)
    registry.gauge("depth").dec()
    histogram = registry.histogram("latency")
    histogram.observe(2e-6)
    histogram.observe(1.0)
    registry.register("adapter", lambda: {"calls": 7, "live": True})
    registry.register("absent", lambda: None)

    snap = registry.snapshot()
    assert snap["metrics"]["frames_total"] == 3
    assert snap["metrics"]["depth"] == 3
    hist = snap["metrics"]["latency"]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(1.0 + 2e-6)
    assert hist["buckets"][-1] == [None, 2]
    assert snap["adapter"] == {"calls": 7, "live": True}
    assert snap["absent"] is None  # absent subsystems stay visible
    # The whole snapshot must be JSON-safe: it ships in wire frames.
    json.dumps(snap)


def test_registry_reserves_metrics_namespace_and_replaces():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.register("metrics", dict)
    registry.register("ns", lambda: {"v": 1})
    registry.register("ns", lambda: {"v": 2})  # re-register replaces
    assert registry.snapshot()["ns"] == {"v": 2}


def test_prometheus_text_exposition():
    registry = MetricsRegistry()
    registry.counter("queries_total").inc(5)
    registry.histogram("query_seconds").observe(3e-6)
    registry.register(
        "server",
        lambda: {"requests": 9, "draining": False, "name": "skipme"},
    )
    text = registry.prometheus_text()
    assert "# TYPE repro_queries_total counter" in text
    assert "repro_queries_total 5" in text
    assert "# TYPE repro_query_seconds histogram" in text
    assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_query_seconds_count 1" in text
    assert "repro_server_requests 9" in text
    assert "repro_server_draining 0" in text  # bools become 0/1
    assert "skipme" not in text  # strings are identity, not metrics
    # The fixed bucket ladder spans 1us..~67s.
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
    assert len(LATENCY_BUCKETS) == 14


# -- tracing -----------------------------------------------------------------


def test_span_without_active_trace_is_shared_noop():
    assert current() is None
    assert context() is None
    noop = span("anything")
    assert noop is span("anything else")  # one shared object
    with noop:
        pass


def test_trace_records_spans_and_bounds_them():
    trace = Trace(max_records=3)
    with activate(trace):
        assert current() is trace
        assert context() == {"id": trace.trace_id}
        for i in range(5):
            with span("step", i=i):
                pass
    assert current() is None
    assert len(trace.records) == 3
    assert trace.dropped == 2
    record = trace.records[0]
    assert record["name"] == "step" and record["i"] == 0
    assert record["secs"] >= 0.0 and record["start"] >= 0.0


def test_trace_extend_prefixes_and_activate_none_is_noop():
    trace = Trace()
    trace.extend(
        [{"name": "factorise", "start": 0.0, "secs": 0.1}],
        prefix="worker:",
    )
    assert trace.records[0]["name"] == "worker:factorise"
    with activate(None):
        assert current() is None


# -- slow-query log ----------------------------------------------------------


def test_slow_log_threshold_and_jsonl_file(tmp_path):
    path = str(tmp_path / "slow.jsonl")
    log = SlowQueryLog(threshold=0.5, path=path, capacity=2)
    assert log.observe("fast", "fdb", 0.1) is None
    for i in range(3):
        entry = log.observe(
            f"slow{i}", "fdb", 1.0 + i, trace_id="t", origin={"id": "t"}
        )
        assert entry is not None and entry["sql"] == f"slow{i}"
    counters = log.counters()
    assert counters == {
        "threshold": 0.5,
        "observed": 4,
        "recorded": 3,
        "retained": 2,  # ring capacity
        "rotations": 0,
    }
    assert [e["sql"] for e in log.tail()] == ["slow1", "slow2"]
    lines = [
        json.loads(line)
        for line in open(path, encoding="utf-8").read().splitlines()
    ]
    assert len(lines) == 3  # the file keeps everything the ring drops
    assert lines[0]["origin"] == {"id": "t"}


def test_slow_log_rotation_boundary(tmp_path):
    """Keep-one rotation: the cap moves the file to PATH.1 exactly
    when the next line would cross it, and a second rotation
    overwrites the first rotated file."""
    import os

    path = str(tmp_path / "slow.jsonl")
    log = SlowQueryLog(threshold=0.0, path=path, max_bytes=400)
    log.observe("first", "fdb", 1.0)
    size_of_one = os.path.getsize(path)
    assert 0 < size_of_one <= 400
    # Fill right up to (but not over) the cap: no rotation yet.
    while os.path.getsize(path) + size_of_one <= 400:
        log.observe("first", "fdb", 1.0)
    assert log.rotations == 0
    assert not os.path.exists(path + ".1")
    full_size = os.path.getsize(path)
    # The boundary entry: appending would cross the cap, so the full
    # file rotates aside and a fresh one starts with just this entry.
    log.observe("boundary", "fdb", 1.0)
    assert log.rotations == 1
    assert os.path.getsize(path + ".1") == full_size
    fresh = open(path, encoding="utf-8").read().splitlines()
    assert len(fresh) == 1
    assert json.loads(fresh[0])["sql"] == "boundary"
    # Keep-one: the next rotation replaces PATH.1, never PATH.2.
    while log.rotations == 1:
        log.observe("again", "fdb", 1.0)
    assert log.counters()["rotations"] == 2
    assert not os.path.exists(path + ".2")
    rotated = open(path + ".1", encoding="utf-8").read().splitlines()
    assert all(json.loads(line)["sql"] != "first" for line in rotated)


# -- Prometheus endpoint hygiene ---------------------------------------------


def test_prometheus_endpoint_http_hygiene():
    """The metrics endpoint answers HEAD (headers only), sends the
    Prometheus content type, and 404s unknown paths instead of
    hanging or resetting."""
    import http.client

    session = QuerySession(_database(93), encoding="arena")
    with ServerThread(session, metrics_port=0) as server:
        host, port = server.server.metrics_address

        def request(method, target):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request(method, target)
                response = conn.getresponse()
                return response.status, dict(response.headers), response.read()
            finally:
                conn.close()

        status, headers, body = request("GET", "/metrics")
        assert status == 200
        assert "text/plain; version=0.0.4" in headers["Content-Type"]
        assert b"repro_server_requests" in body
        # HEAD: same status and headers, no body, connection closes
        # cleanly (health checkers probe this way).
        status, headers, body = request("HEAD", "/metrics")
        assert status == 200
        assert "text/plain; version=0.0.4" in headers["Content-Type"]
        assert int(headers["Content-Length"]) > 0
        assert body == b""
        # Unknown path: a clean 404 with a body, not a hang or reset.
        status, _, body = request("GET", "/nope")
        assert status == 404
        assert body == b"not found\n"
        # Unknown method: also a 404, and the server survives it.
        status, _, _ = request("POST", "/metrics")
        assert status == 404
        status, _, _ = request("GET", "/metrics")
        assert status == 200  # still serving


# -- session integration -----------------------------------------------------


def test_session_results_carry_spans_and_trace_id():
    with QuerySession(_database(), encoding="arena") as session:
        result = session.run(parse_query("SELECT a00 FROM R0, R1 WHERE a01 = a02"))
        assert result.trace_id is not None
        names = _span_names(result)
        assert "optimise" in names
        assert "plan-cache" in names
        assert "factorise" in names
        assert "project" in names
        snap = session.snapshot()
        assert snap["metrics"]["traces_total"] == 1
        assert snap["metrics"]["query_seconds"]["count"] == 1


def test_tracing_off_yields_no_spans():
    with QuerySession(_database(), tracing=False) as session:
        result = session.run(parse_query("SELECT a00 FROM R0"))
        assert result.spans is None
        assert result.trace_id is None
        assert session.snapshot()["metrics"]["traces_total"] == 0


def test_session_slow_log_records_plan_and_spans():
    log = SlowQueryLog(threshold=0.0)  # log everything
    with QuerySession(_database(), slow_log=log) as session:
        session.run(parse_query("SELECT a00 FROM R0, R1 WHERE a01 = a02"))
        entry = log.tail(1)[0]
        assert "R0" in entry["sql"]
        assert entry["engine"] == "fdb"
        assert entry["trace_id"] is not None
        assert any(s["name"] == "factorise" for s in entry["spans"])
        assert entry["plan"] is not None  # the chosen f-tree
        assert session.snapshot()["slow_log"]["recorded"] >= 1


def test_run_on_profiles_fplan_spans():
    with QuerySession(_database(), encoding="arena") as session:
        base = session.run(parse_query("SELECT * FROM R0, R1"))
        follow = parse_query("SELECT * FROM R0, R1 WHERE a00 = a02")
        result = session.run_on(base.factorised, follow)
        names = _span_names(result)
        assert "fplan-cache" in names
        assert "fplan-optimise" in names
        assert "fplan-execute" in names


def test_report_session_lines_render_snapshot():
    with QuerySession(_database()) as session:
        session.run_batch(
            [parse_query("SELECT a00 FROM R0")] * 2
        )
        lines = session_lines(session.snapshot(), total_queries=2)
    assert any(
        line.startswith("plans: 1 compiled, 0 cache hits") for line in lines
    )
    assert any("batch-deduplicated" in line for line in lines)
    assert any(line.startswith("results:") for line in lines)


# -- propagation: process pool ----------------------------------------------


def test_spans_cross_the_pool_boundary():
    from repro.exec import ParallelExecutor

    db = ShardedDatabase.from_database(_database(83), shards=2)
    executor = ParallelExecutor(max_workers=2)
    with QuerySession(db, executor=executor, encoding="arena") as session:
        result = session.run(parse_query("SELECT a00 FROM R0, R1 WHERE a01 = a02"))
        names = _span_names(result)
        # Worker-side spans come back prefixed, one per shard ...
        assert names.count("worker:shard") == 2
        # ... and coordinator-side recombination spans sit beside them.
        assert "union" in names
        assert "project" in names


# -- propagation: the wire ---------------------------------------------------


def test_trace_id_crosses_the_wire_into_the_server_slow_log():
    log = SlowQueryLog(threshold=0.0)
    session = QuerySession(_database(85), encoding="arena", slow_log=log)
    with ServerThread(session) as server:
        with RemoteSession(server.address) as client:
            trace = Trace()
            with activate(trace):
                result = client.run("SELECT a00 FROM R0, R1 WHERE a01 = a02")
            # The server's entry correlates back to this client ...
            entry = log.tail(1)[0]
            assert entry["trace_id"] == trace.trace_id
            assert entry["origin"]["id"] == trace.trace_id
            assert entry["origin"]["client"] >= 1  # the request id
            # ... the result carries the server-side breakdown ...
            assert result.trace_id == trace.trace_id
            assert "factorise" in _span_names(result)
            # ... and the client trace absorbed it, prefixed.
            merged = [r["name"] for r in trace.records]
            assert any(n == "server:parse" for n in merged)
            assert any(n == "server:factorise" for n in merged)


def test_untraced_remote_results_stay_lean():
    session = QuerySession(_database(85), encoding="arena")
    with ServerThread(session) as server:
        with RemoteSession(server.address) as client:
            result = client.run("SELECT a00 FROM R0")
            # No client trace -> the server does not ship span records
            # (they would bloat every untraced response).
            assert result.spans is None


def test_remote_executor_merges_remote_and_fallback_spans(tmp_path):
    db = ShardedDatabase.from_database(_database(87), shards=2)
    path = str(tmp_path / "sharded")
    persist.save(db, path)
    worker_session = QuerySession(persist.load(path), encoding="arena")
    server = ServerThread(worker_session)
    executor = RemoteExecutor([server.address], timeout=30)
    coordinator = QuerySession(db, executor=executor, result_cache_size=0)
    query = random_spj_queries(
        db, 1, seed=88, max_relations=2, max_equalities=1
    )[0]
    try:
        result = coordinator.run(query)
        names = _span_names(result)
        assert any(n.startswith("remote[0]:shard") for n in names)
        server.stop()  # the fleet dies; the next run degrades locally
        second = coordinator.run(query)
        names = _span_names(second)
        assert "shard-local-fallback" in names
        assert executor.local_fallbacks > 0
    finally:
        coordinator.close()
        server.stop()


# -- per-kernel plan profiling -----------------------------------------------


def test_profile_plan_times_every_kernel():
    db = _database(89)
    with QuerySession(db, encoding="arena") as session:
        base = session.run(parse_query("SELECT * FROM R0, R1"))
        fr = base.factorised
        pairs = [("a00", "a02")]
        plan = session._fdb.plan_for(fr.tree, pairs)
        assert plan.steps  # the equality forces restructuring
        result, profile = profile_plan(plan, fr)
        # Honest numbers: the profiled run produces the same result
        # the fused driver does.
        fused = plan.execute(fr)
        assert sorted(result.rows()) == sorted(fused.rows())
        assert len(profile.rows) <= len(plan.steps)
        assert profile.total_seconds >= 0.0
        for row in profile.rows:
            assert row.kind in ("swap", "merge", "absorb", "push")
            assert row.kernel.endswith("Kernel")
        table = profile.format_table()
        assert "operator" in table and "kernel" in table
        assert "total:" in table


def test_profile_plan_identity_and_empty_inputs():
    db = _database(89)
    with QuerySession(db, encoding="arena") as session:
        base = session.run(parse_query("SELECT * FROM R0"))
        fr = base.factorised
        plan = session._fdb.plan_for(fr.tree, [])
        result, profile = profile_plan(plan, fr)
        assert profile.rows == []
        assert "identity plan" in profile.format_table()
        assert sorted(result.rows()) == sorted(fr.rows())


# -- the CLI surface ---------------------------------------------------------


def test_cli_explain_profile_smoke(tmp_path, capsys):
    from repro.cli import main

    csv_path = tmp_path / "R.csv"
    csv_path.write_text("a,b\n1,1\n1,2\n2,2\n")
    csv2 = tmp_path / "S.csv"
    csv2.write_text("c,d\n1,10\n2,20\n")
    code = main(
        [
            "explain",
            "SELECT * FROM R, S WHERE b = c",
            "--csv",
            str(csv_path),
            str(csv2),
            "--profile",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "f-tree" in out
    assert "f-plan" in out
    assert "kernel" in out  # the per-operator table header
    assert "total:" in out
