"""Unit tests for structured f-representations and the expression AST."""

import pytest

from repro.core.expr import (
    Empty,
    ExprError,
    Nullary,
    Product,
    Singleton,
    Union,
    expression_of,
    from_structured,
)
from repro.core.frep import (
    FRepError,
    ProductRep,
    UnionRep,
    check_sorted,
    iter_unions,
    merge_sorted_values,
    singleton_union,
)
from repro.core.ftree import FNode, FTree
from repro.query.hypergraph import Hypergraph


def small_tree():
    return FTree.from_nested(
        [("a", [("b", [])])], edges=[{"a", "b"}]
    )


def small_data():
    # a:1 -> b in {1,2};  a:2 -> b in {2}
    return ProductRep(
        [
            UnionRep(
                [
                    (1, ProductRep([UnionRep([
                        (1, ProductRep()), (2, ProductRep())
                    ])])),
                    (2, ProductRep([UnionRep([(2, ProductRep())])])),
                ]
            )
        ]
    )


def test_union_find_binary_search():
    u = UnionRep([(1, ProductRep()), (3, ProductRep())])
    assert u.find(3) is not None
    assert u.find(2) is None
    assert u.values() == [1, 3]


def test_check_sorted_rejects_disorder_and_duplicates():
    check_sorted(UnionRep([(1, ProductRep()), (2, ProductRep())]))
    with pytest.raises(FRepError):
        check_sorted(UnionRep([(2, ProductRep()), (1, ProductRep())]))
    with pytest.raises(FRepError):
        check_sorted(UnionRep([(1, ProductRep()), (1, ProductRep())]))


def test_singleton_union_shape():
    u = singleton_union(5)
    assert u.values() == [5]
    assert u.entries[0][1].factors == []


def test_iter_unions_visits_all():
    count = sum(1 for _ in iter_unions(small_data()))
    assert count == 3  # one a-union + two nested b-unions


def test_merge_sorted_values():
    assert merge_sorted_values([1, 2, 4], [2, 3, 4]) == [2, 4]
    assert merge_sorted_values([], [1]) == []
    assert merge_sorted_values([1], [1]) == [1]


def test_copy_is_deep():
    data = small_data()
    clone = data.copy()
    clone.factors[0].entries[0][1].factors[0].entries.append(
        (99, ProductRep())
    )
    assert data != clone


# -- expression AST ----------------------------------------------------------


def test_singleton_schema_size_tuples():
    s = Singleton("a", 7)
    assert s.schema() == frozenset({"a"})
    assert s.size() == 1
    assert s.tuples() == {(("a", 7),)}


def test_nullary_and_empty():
    assert Nullary().tuples() == {()}
    assert Empty({"a"}).tuples() == set()
    assert Empty().size() == 0 and Nullary().size() == 0


def test_union_schema_mismatch_rejected():
    with pytest.raises(ExprError):
        Union([Singleton("a", 1), Singleton("b", 1)])


def test_product_overlap_rejected():
    with pytest.raises(ExprError):
        Product([Singleton("a", 1), Singleton("a", 2)])


def test_expression_semantics_distributivity():
    # <a:1> x (<b:1> u <b:2>)  ==  <a:1>x<b:1> u <a:1>x<b:2>
    factored = Product(
        [Singleton("a", 1), Union([Singleton("b", 1), Singleton("b", 2)])]
    )
    flat = Union(
        [
            Product([Singleton("a", 1), Singleton("b", 1)]),
            Product([Singleton("a", 1), Singleton("b", 2)]),
        ]
    )
    assert factored.tuples() == flat.tuples()
    assert factored.size() == 3 and flat.size() == 4


def test_from_structured_round_trip():
    tree = small_tree()
    expr = from_structured(tree.roots, small_data())
    assert expr.size() == 2 + 3  # 2 a-singletons + 3 b-singletons
    assert expr.tuples() == {
        (("a", 1), ("b", 1)),
        (("a", 1), ("b", 2)),
        (("a", 2), ("b", 2)),
    }


def test_expression_of_multi_attribute_label():
    tree = FTree.from_nested([(("a", "b"), [])], edges=[{"a"}, {"b"}])
    data = ProductRep([UnionRep([(1, ProductRep())])])
    expr = expression_of(tree, data)
    assert expr.tuples() == {(("a", 1), ("b", 1))}
    assert expr.size() == 2


def test_to_text_glyphs():
    tree = small_tree()
    text = from_structured(tree.roots, small_data()).to_text()
    assert "⟨a:1⟩" in text and "∪" in text and "×" in text
    ascii_text = from_structured(tree.roots, small_data()).to_text(
        unicode_glyphs=False
    )
    assert "<a:1>" in ascii_text


def test_from_structured_arity_mismatch():
    tree = small_tree()
    with pytest.raises(ExprError):
        from_structured(tree.roots, ProductRep([]))


def test_empty_union_in_structured_rejected():
    tree = small_tree()
    bad = ProductRep([UnionRep([])])
    with pytest.raises(ExprError):
        from_structured(tree.roots, bad)
