"""Shared fixtures and helpers for the FDB reproduction test-suite."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import pytest

from repro import FDB, Database, Query, RelationalEngine
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.relational.relation import Relation
from repro.workloads import grocery_database, query_q1, query_q2


@pytest.fixture
def grocery() -> Database:
    return grocery_database()


@pytest.fixture
def q1() -> Query:
    return query_q1()


@pytest.fixture
def q2() -> Query:
    return query_q2()


@pytest.fixture
def two_table_db() -> Database:
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)])
    db.add_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])
    return db


def assignments(fr: FactorisedRelation) -> Set[Tuple[Tuple[str, object], ...]]:
    """The relation of a factorised result, as hashable sorted items."""
    return {tuple(sorted(d.items())) for d in fr}


def flat_assignments(
    relation: Relation,
) -> Set[Tuple[Tuple[str, object], ...]]:
    """The relation of a flat result, in the same shape."""
    attrs = relation.attributes
    return {
        tuple(sorted(zip(attrs, row))) for row in relation.rows
    }


def filtered(
    fr: FactorisedRelation,
    equalities: Sequence[Tuple[str, str]] = (),
    predicate=None,
) -> Set[Tuple[Tuple[str, object], ...]]:
    """Reference semantics: filter the enumerated relation."""
    out = set()
    for d in fr:
        if all(d[a] == d[b] for a, b in equalities):
            if predicate is None or predicate(d):
                out.add(tuple(sorted(d.items())))
    return out


def random_small_database(
    rng: random.Random,
    relations: int = 3,
    max_arity: int = 3,
    max_rows: int = 6,
    domain: int = 4,
) -> Database:
    """A tiny random database for differential tests."""
    db = Database()
    index = 0
    for r in range(relations):
        arity = rng.randint(1, max_arity)
        attrs = [f"x{index + i}" for i in range(arity)]
        index += arity
        rows = [
            tuple(rng.randint(1, domain) for _ in range(arity))
            for _ in range(rng.randint(1, max_rows))
        ]
        db.add_rows(f"T{r}", attrs, rows)
    return db


def random_equalities_for(
    db: Database, rng: random.Random, count: int
) -> List[Tuple[str, str]]:
    """Non-redundant equalities over the db's attributes."""
    from repro.query.equivalence import UnionFind

    attrs = db.attributes()
    uf = UnionFind(attrs)
    out: List[Tuple[str, str]] = []
    tries = 0
    while len(out) < count and tries < 1000:
        a, b = rng.sample(attrs, 2)
        if uf.union(a, b):
            out.append((a, b))
        tries += 1
    return out


def evaluate_both(
    db: Database, query: Query
) -> Tuple[FactorisedRelation, Relation]:
    """Evaluate with FDB (invariants on) and RDB; return both results."""
    fr = FDB(db, check_invariants=True).evaluate(query)
    flat = RelationalEngine(db).evaluate(query)
    return fr, flat
