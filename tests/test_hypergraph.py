"""Unit tests for the dependency hypergraph."""

from repro.query.hypergraph import Hypergraph


def lab(*attrs):
    return frozenset(attrs)


def test_edges_are_deduplicated_and_frozen():
    h = Hypergraph([{"a", "b"}, {"b", "a"}, {"c"}])
    assert len(h) == 2
    assert lab("a", "b") in h.edges


def test_empty_edges_dropped():
    h = Hypergraph([set(), {"a"}])
    assert len(h) == 1


def test_attributes_union():
    h = Hypergraph([{"a", "b"}, {"c"}])
    assert h.attributes() == lab("a", "b", "c")


def test_touches_requires_single_edge_spanning_both():
    h = Hypergraph([{"a", "b"}, {"b", "c"}])
    assert h.touches({"a"}, {"b"})
    assert h.touches({"b"}, {"c"})
    # a and c are only transitively related -- not "dependent".
    assert not h.touches({"a"}, {"c"})


def test_edges_touching():
    h = Hypergraph([{"a", "b"}, {"b", "c"}, {"d"}])
    assert sorted(sorted(e) for e in h.edges_touching({"b"})) == [
        ["a", "b"],
        ["b", "c"],
    ]
    assert h.edges_touching({"z"}) == []


def test_restrict_projects_edges():
    h = Hypergraph([{"a", "b"}, {"b", "c"}])
    r = h.restrict({"a", "b"})
    assert r.edges == frozenset({lab("a", "b"), lab("b")})


def test_without_attributes_strips_them():
    h = Hypergraph([{"a", "b"}, {"a"}])
    r = h.without_attributes({"a"})
    assert r.edges == frozenset({lab("b")})


def test_merge_edges_touching_builds_phantom_edge():
    # Projecting away b from {a,b} and {b,c}: a and c stay dependent.
    h = Hypergraph([{"a", "b"}, {"b", "c"}, {"d", "e"}])
    merged = h.merge_edges_touching({"b"})
    assert lab("a", "c") in merged.edges
    assert lab("d", "e") in merged.edges
    assert len(merged) == 2


def test_merge_edges_touching_no_match_is_identity():
    h = Hypergraph([{"a", "b"}])
    assert h.merge_edges_touching({"z"}) == h


def test_merge_edges_touching_can_drop_empty_phantom():
    h = Hypergraph([{"a"}, {"a", "b"}])
    merged = h.merge_edges_touching({"a", "b"})
    assert len(merged) == 0


def test_components_connected_through_edges():
    h = Hypergraph([{"a", "b"}, {"b", "c"}, {"x", "y"}])
    labels = [lab("a"), lab("b"), lab("c"), lab("x"), lab("y"), lab("z")]
    comps = h.components(labels)
    as_sets = sorted(
        sorted(sorted(l) for l in comp) for comp in comps
    )
    assert as_sets == [
        [["a"], ["b"], ["c"]],
        [["x"], ["y"]],
        [["z"]],
    ]


def test_components_with_multi_attribute_labels():
    h = Hypergraph([{"a", "b"}])
    labels = [lab("a", "q"), lab("b", "r")]
    comps = h.components(labels)
    assert len(comps) == 1 and len(comps[0]) == 2


def test_components_preserve_input_order():
    h = Hypergraph([])
    labels = [lab("m"), lab("a"), lab("z")]
    comps = h.components(labels)
    assert [next(iter(c[0])) for c in comps] == ["m", "a", "z"]


def test_is_chain():
    h = Hypergraph([])
    a, b, c = lab("a"), lab("b"), lab("c")
    ancestors = {a: [], b: [a], c: [a, b]}
    assert h.is_chain([a, b, c], ancestors)
    assert h.is_chain([a, c], ancestors)
    assert h.is_chain([b], ancestors)
    # siblings b and c' (both children of a) are not a chain
    c2 = lab("c2")
    ancestors2 = {a: [], b: [a], c2: [a]}
    assert not h.is_chain([b, c2], ancestors2)


def test_hashable_and_equal():
    h1 = Hypergraph([{"a", "b"}])
    h2 = Hypergraph([frozenset({"b", "a"})])
    assert h1 == h2
    assert hash(h1) == hash(h2)
    assert len({h1, h2}) == 1
