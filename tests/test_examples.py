"""Smoke tests: every example script runs green end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

SCRIPTS = [
    ("quickstart.py", [], "Example 2: Q1 JOIN Q2"),
    ("supply_chain.py", [], "compression:"),
    ("compiled_database.py", [], "sustainability:"),
    ("engine_shootout.py", ["600"], "gap"),
    ("configuration_space.py", [], "feasible builds"),
]


@pytest.mark.parametrize(
    "script,args,marker", SCRIPTS, ids=[s for s, _, _ in SCRIPTS]
)
def test_example_runs(script, args, marker):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_examples_directory_is_complete():
    present = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert {s for s, _, _ in SCRIPTS} <= present
