"""Unit tests for the SQL-like parser."""

import pytest

from repro.query.parser import parse_query
from repro.query.query import QueryError


def test_select_star():
    q = parse_query("SELECT * FROM R")
    assert q.relations == ("R",)
    assert q.projection is None
    assert q.equalities == () and q.constants == ()


def test_projection_list():
    q = parse_query("SELECT a, b FROM R, S")
    assert q.projection == ("a", "b")
    assert q.relations == ("R", "S")


def test_equality_condition():
    q = parse_query("SELECT * FROM R, S WHERE a = c")
    assert len(q.equalities) == 1
    assert str(q.equalities[0]) == "a = c"


def test_integer_constant():
    q = parse_query("SELECT * FROM R WHERE a >= 3")
    cond = q.constants[0]
    assert cond.attribute == "a" and cond.op == ">=" and cond.value == 3


def test_negative_integer_constant():
    q = parse_query("SELECT * FROM R WHERE a = -5")
    assert q.constants[0].value == -5


def test_string_constants_both_quote_styles():
    q = parse_query(
        "SELECT * FROM R WHERE a = 'Izmir' AND b != \"Milk\""
    )
    assert q.constants[0].value == "Izmir"
    assert q.constants[1].value == "Milk"


def test_conjunction_mixes_condition_kinds():
    q = parse_query(
        "SELECT * FROM R, S WHERE a = c AND b < 10 AND d = 'x'"
    )
    assert len(q.equalities) == 1
    assert len(q.constants) == 2


def test_keywords_case_insensitive():
    q = parse_query("select * from R where a = 1")
    assert q.relations == ("R",)
    assert q.constants[0].value == 1


def test_non_equality_between_attributes_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT * FROM R WHERE a < b")


def test_trailing_tokens_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT * FROM R garbage")


def test_missing_from_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT *")


def test_unterminated_condition_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT * FROM R WHERE a =")


def test_garbage_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT * FROM R WHERE a = $$$")
