"""The cluster-wide observability plane: federation, heat maps,
advisor, flight recorder.

The tentpole promise is one-terminal legibility of a fleet: a
federation poll must never hang on a dead or slow worker (bounded
timeouts per scrape), a killed worker must flip to DOWN-with-age
within one poll, the advisor must name that worker's shards, and the
flight recorder must narrate the coordinator's fault handling as
structured JSONL.  Unit tests drive the advisor on synthetic views --
it is a pure function, that's the point -- and integration tests run
the whole plane against a real 3-worker fleet, with ChaosProxy
supplying the faults.
"""

from __future__ import annotations

import json
import time

import pytest

from fault_injection import ChaosProxy
from test_cluster import Cluster, _database, _queries

from repro.cli import main
from repro.net import RemoteSession, ReplicatedExecutor
from repro.obs import ClusterFederation, FlightRecorder, MetricsRegistry, advise
from repro.obs.report import cluster_lines
from repro.service import QuerySession


# -- flight recorder ---------------------------------------------------------


def test_flight_recorder_ring_bound_and_dumps(tmp_path):
    path = str(tmp_path / "flight.jsonl")
    recorder = FlightRecorder(capacity=3, path=path)
    for i in range(5):
        recorder.record("quarantine-open", worker=f"w{i}:1", streak=1)
    events = recorder.events()
    assert [e["worker"] for e in events] == ["w2:1", "w3:1", "w4:1"]
    assert [e["seq"] for e in events] == [3, 4, 5]
    assert recorder.recorded == 5 and recorder.dropped == 2
    assert recorder.auto_dumps == 0  # quarantines are not loud
    # A loud event rewrites the whole ring to disk immediately.
    recorder.record("degrade-to-local", shard=1, chain=["w4:1"])
    assert recorder.auto_dumps == 1
    lines = [
        json.loads(line)
        for line in open(path, encoding="utf-8").read().splitlines()
    ]
    assert len(lines) == 3  # the retained ring, not the full history
    assert lines[-1]["event"] == "degrade-to-local"
    assert lines[-1]["chain"] == ["w4:1"]
    # dump_text is the same document as the file.
    assert recorder.dump_text().splitlines()[-1] == json.dumps(
        lines[-1], sort_keys=True, default=str
    )
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder().dump()  # no path configured


def test_flight_recorder_rides_the_registry_snapshot():
    registry = MetricsRegistry()
    recorder = FlightRecorder(capacity=8)
    registry.register("flight", recorder.counters)
    recorder.record("ownership-miss", worker="w0:1")
    snap = registry.snapshot()
    assert snap["flight"]["recorded"] == 1
    assert snap["flight"]["events"][0]["event"] == "ownership-miss"
    json.dumps(snap)  # still wire-frame safe
    text = registry.prometheus_text()
    # Counters flatten; the events list is identity data and must not.
    assert "repro_flight_recorded 1" in text
    assert "ownership-miss" not in text


# -- the advisor (pure function over synthetic views) ------------------------


def _synthetic_view(**overrides):
    view = {
        "workers_total": 3,
        "live_workers": 3,
        "polls": 2,
        "scrape_failures": 0,
        "shard_count": 4,
        "replication_factor": 2,
        "workers": {
            f"worker[{i}]": {
                "address": f"w{i}:1",
                "live": True,
                "staleness": 0.1,
                "error": None,
                "polls": 2,
                "failures": 0,
                "db_version": 7,
                "owned_shards": [i],
                "ring_shards": [i],
                "heat_queries": 10.0,
                "server": {"requests": 5, "ownership_rejections": 0},
                "cluster": None,
                "snapshot": {},
            }
            for i in range(3)
        },
        "rollup": {},
        "heat": {
            "shards": {
                str(i): {
                    "queries": 10,
                    "rows": 100,
                    "seconds": 0.5,
                    "replicas": [f"w{i}:1", f"w{(i + 1) % 3}:1"],
                    "primary": f"w{i}:1",
                }
                for i in range(3)
            },
            "worker_load": {f"w{i}:1": 10.0 for i in range(3)},
            "skew": 1.0,
        },
    }
    view.update(overrides)
    return view


def test_advisor_healthy_cluster_gives_no_advice():
    assert advise(_synthetic_view()) == []


def test_advisor_flags_a_dead_workers_shards():
    view = _synthetic_view()
    view["workers"]["worker[1]"].update(
        live=False, staleness=12.5, error="connection refused"
    )
    view["live_workers"] = 2
    recs = advise(view)
    assert len(recs) == 1
    rec = recs[0]
    assert rec["action"] == "set_workers"
    assert rec["drop"] == "w1:1"
    assert rec["workers"] == ["w0:1", "w2:1"]
    assert rec["shards"] == [1]  # names the shards now one replica short
    assert "w1:1" in rec["reason"] and "12.5" in rec["reason"]


def test_advisor_with_no_live_workers_says_investigate():
    view = _synthetic_view()
    for worker in view["workers"].values():
        worker["live"] = False
        worker["staleness"] = None
    view["live_workers"] = 0
    recs = advise(view)
    assert all(r["action"] == "investigate" for r in recs)
    assert "never scraped" in recs[0]["reason"]


def test_advisor_heat_skew_moves_the_hottest_shard():
    view = _synthetic_view()
    view["heat"]["worker_load"] = {"w0:1": 40.0, "w1:1": 1.0, "w2:1": 1.0}
    view["heat"]["shards"]["0"]["queries"] = 40
    recs = advise(view, heat_skew_threshold=2.0)
    assert len(recs) == 1
    rec = recs[0]
    assert rec["action"] == "replica-chain"
    assert rec["from"] == "w0:1"
    assert rec["to"] in ("w1:1", "w2:1")
    assert rec["shard"] == 0
    assert "skew" in rec["reason"]
    # Below the threshold the same shape is healthy.
    view["heat"]["worker_load"] = {"w0:1": 12.0, "w1:1": 9.0, "w2:1": 9.0}
    assert advise(view) == []


def test_advisor_quarantine_rate_flags_a_flapping_worker():
    view = _synthetic_view()
    coordinator = {
        "per_worker": {
            "w2:1": {"quarantines": 4, "retries": 6},
            "w0:1": {"quarantines": 1},
        }
    }
    recs = advise(view, cluster=coordinator)
    assert len(recs) == 1
    rec = recs[0]
    assert rec["action"] == "set_workers"
    assert rec["drop"] == "w2:1"
    assert "quarantined 4x" in rec["reason"]
    # A dead worker is not double-flagged by its quarantine count.
    view["workers"]["worker[2]"]["live"] = False
    view["live_workers"] = 2
    recs = advise(view, cluster=coordinator)
    assert [r["drop"] for r in recs] == ["w2:1"]


def test_cluster_lines_render_the_view_and_advice():
    view = _synthetic_view()
    view["workers"]["worker[1]"].update(live=False, staleness=3.0)
    view["live_workers"] = 2
    lines = cluster_lines(view, advise(view))
    text = "\n".join(lines)
    assert "2/3 workers live" in text
    assert "DOWN (age 3.0s)" in text
    assert "shard 0: 10 queries" in text
    assert "advisor:" in text and "[set_workers]" in text
    healthy = "\n".join(cluster_lines(_synthetic_view(), []))
    assert "cluster looks healthy" in healthy


# -- federation unit behaviour -----------------------------------------------


def test_federation_address_validation():
    with pytest.raises(ValueError, match="at least one"):
        ClusterFederation([])
    with pytest.raises(ValueError, match="duplicate"):
        ClusterFederation(["w:1", "w:1"])
    with pytest.raises(ValueError, match="port"):
        ClusterFederation(["just-a-host"])
    fed = ClusterFederation([("10.0.0.1", 9000), "10.0.0.2:9001"])
    assert fed.keys == ("10.0.0.1:9000", "10.0.0.2:9001")


def test_federation_labelled_prometheus_from_synthetic_view():
    fed = ClusterFederation(["w0:1", "w1:1", "w2:1"], shard_count=4)
    text = fed.prometheus_text(_synthetic_view())
    assert 'repro_worker_up{worker="w0:1"} 1' in text
    assert 'repro_worker_server_requests{worker="w1:1"} 5' in text
    assert 'repro_shard_queries{shard="0"} 10' in text
    assert 'repro_shard_seconds{shard="2"} 0.5' in text
    assert "repro_cluster_live_workers 3" in text
    # One TYPE line per family, not per sample.
    assert text.count("# TYPE repro_worker_up gauge") == 1


# -- the plane against a real fleet ------------------------------------------


def test_federation_scrapes_a_fleet_heat_and_rollup(tmp_path):
    cluster = Cluster(tmp_path, db_seed=81, shards=4, workers=3)
    queries = _queries(cluster.db, 82, 6)
    executor = ReplicatedExecutor(
        cluster.keys, replication_factor=2, timeout=30
    )
    fed = ClusterFederation(cluster.keys, replication_factor=2)
    try:
        with QuerySession(cluster.sharded, executor=executor) as coord:
            results = coord.run_batch(queries)
        assert [r.rows() for r in results] == cluster.expected(queries)
        fed.poll()
        view = fed.view()
        assert view["live_workers"] == 3
        assert view["shard_count"] == 4  # learned from the hello
        for worker in view["workers"].values():
            assert worker["live"] and worker["staleness"] < 30
            assert worker["server"]["requests"] >= 1
            assert worker["ring_shards"]  # drawn against the ring
        # The heat map saw every shard the batch touched, attributed
        # to replica chains.
        shards = view["heat"]["shards"]
        assert shards, "expected a non-empty heat map"
        total = sum(entry["queries"] for entry in shards.values())
        assert total == executor.remote_tasks
        for entry in shards.values():
            assert entry["rows"] >= 0 and entry["seconds"] > 0
            assert len(entry["replicas"]) == 2
            assert entry["primary"] == entry["replicas"][0]
        # Roll-up sums numeric leaves across workers.
        assert view["rollup"]["server"]["requests"] == sum(
            w["server"]["requests"] for w in view["workers"].values()
        )
        # The labelled exposition names every worker and shard.
        text = fed.prometheus_text(view)
        for key in cluster.keys:
            assert f'repro_worker_up{{worker="{key}"}} 1' in text
        assert 'repro_shard_queries{shard="' in text
        # A small synthetic batch can legitimately skew hot (few
        # queries, few shards), so the heat rule may fire -- but no
        # liveness rule should: every worker is up.
        assert all(
            r["action"] != "set_workers" for r in advise(view)
        )
    finally:
        fed.stop()
        cluster.close()


def test_dead_worker_goes_stale_and_advisor_names_its_shards(tmp_path):
    """Killing a worker flips it to DOWN with a staleness age within
    one poll, the poll itself never hangs, and the advisor recommends
    a membership without it, naming its shards."""
    cluster = Cluster(tmp_path, db_seed=83, shards=4, workers=3)
    proxy = ChaosProxy(cluster.addresses[0])
    keys = [f"{proxy.address[0]}:{proxy.address[1]}"] + cluster.keys[1:]
    # Re-own against the proxied ring so routing matches the keys the
    # federation sees.
    fed = ClusterFederation(
        keys,
        replication_factor=2,
        connect_timeout=2.0,
        request_timeout=2.0,
        shard_count=4,
    )
    try:
        fed.poll()
        first = fed.view()
        assert first["live_workers"] == 3
        victim_shards = first["workers"]["worker[0]"]["ring_shards"]
        assert victim_shards
        # Kill the worker behind the proxy: refuse new connections and
        # cut the live ones.
        proxy.refuse(True)
        proxy.kill_connections()
        start = time.monotonic()
        fed.poll()
        elapsed = time.monotonic() - start
        assert elapsed < 10  # bounded by the scrape timeouts
        view = fed.view()
        assert view["live_workers"] == 2
        victim = view["workers"]["worker[0]"]
        assert not victim["live"]
        assert victim["staleness"] is not None  # age since last success
        assert victim["error"]
        recs = advise(view)
        assert recs and recs[0]["action"] == "set_workers"
        assert recs[0]["drop"] == keys[0]
        assert recs[0]["shards"] == victim_shards
        assert sorted(recs[0]["workers"]) == sorted(keys[1:])
        # The last good snapshot is kept, aged -- not thrown away.
        assert victim["server"] is not None
    finally:
        fed.stop()
        proxy.close()
        cluster.close()


def test_slow_worker_never_hangs_the_poll(tmp_path):
    cluster = Cluster(tmp_path, db_seed=84, shards=2, workers=2)
    proxy = ChaosProxy(cluster.addresses[0])
    proxy.delay = 30.0  # far beyond the scrape budget
    keys = [f"{proxy.address[0]}:{proxy.address[1]}", cluster.keys[1]]
    fed = ClusterFederation(
        keys, connect_timeout=0.5, request_timeout=0.5
    )
    try:
        start = time.monotonic()
        fed.poll()
        elapsed = time.monotonic() - start
        assert elapsed < 10  # one slow worker does not stall the rest
        view = fed.view()
        assert view["workers"]["worker[1]"]["live"]
        assert not view["workers"]["worker[0]"]["live"]
    finally:
        fed.stop()
        proxy.close()
        cluster.close()


def test_coordinator_flight_recorder_and_per_worker_attribution(
    tmp_path,
):
    """Quarantine + degrade events land in the coordinator's flight
    recorder as structured JSONL (auto-dumped on the loud ones), and
    the cluster counters attribute the faults to worker addresses."""
    cluster = Cluster(tmp_path, db_seed=85, shards=2, workers=2)
    queries = _queries(cluster.db, 86, 3)
    flight_path = str(tmp_path / "flight.jsonl")
    executor = ReplicatedExecutor(
        cluster.keys,
        replication_factor=2,
        timeout=10,
        connect_timeout=2,
        backoff_base=0.01,
        quarantine_seconds=30,
        flight_path=flight_path,
    )
    try:
        # Kill the whole fleet: every shard must degrade to local,
        # loudly, and the narrative must name the chain it walked.
        cluster.close()
        with QuerySession(cluster.sharded, executor=executor) as coord:
            results = coord.run_batch(queries)
            snap = coord.snapshot()
        assert [r.rows() for r in results] == cluster.expected(queries)
        assert executor.degrade_to_local > 0
        events = executor.flight.events()
        kinds = {event["event"] for event in events}
        assert "quarantine-open" in kinds
        assert "retry-exhausted" in kinds
        assert "degrade-to-local" in kinds
        degrade = next(
            e for e in events if e["event"] == "degrade-to-local"
        )
        assert set(degrade["chain"]) <= set(cluster.keys)
        assert degrade["seq"] > 0 and degrade["ts"] > 0
        # Loud faults dumped the ring to disk automatically.
        assert executor.flight.auto_dumps > 0
        dumped = [
            json.loads(line)
            for line in open(flight_path, encoding="utf-8")
            .read()
            .splitlines()
        ]
        assert any(e["event"] == "degrade-to-local" for e in dumped)
        # Per-worker attribution: the incident names its victims.
        per_worker = executor.counters()["per_worker"]
        for key in set(degrade["chain"]):
            assert per_worker[key]["degrade_to_local"] >= 1
        assert any(
            tallies.get("quarantines", 0) >= 1
            or tallies.get("connect_failures", 0) >= 1
            for tallies in per_worker.values()
        )
        # The registry's flight namespace carries the same events.
        assert snap["flight"]["recorded"] == executor.flight.recorded
        assert any(
            e["event"] == "degrade-to-local"
            for e in snap["flight"]["events"]
        )
    finally:
        executor.close()


def test_server_flight_events_via_stats_cli(tmp_path, capsys):
    """A worker's own flight recorder captures ownership misses, and
    ``repro stats --connect --events`` dumps them as JSONL."""
    from repro.net import NetError
    from repro.storage import ShardedDatabase

    cluster = Cluster(tmp_path, db_seed=87, shards=2, workers=1)
    try:
        query = _queries(cluster.db, 88, 1)[0]
        with QuerySession(
            ShardedDatabase.from_database(cluster.db, shards=2)
        ) as local:
            plan, _ = local.compile(query)
        server = cluster.servers[0]
        fanout = cluster.sharded.fanout_relation(query.relations)
        with RemoteSession(server.address) as client:
            # Shed shard 1 (a rebalance event), then route it here
            # anyway (an ownership-miss event).
            client.disown_shards([1])
            with pytest.raises(NetError, match="OwnershipError"):
                client.submit_shard(
                    query, plan.tree, 1, fanout
                ).result(30)
        events = server.server.flight.events()
        kinds = [e["event"] for e in events]
        assert "rebalance" in kinds
        assert "ownership-miss" in kinds
        miss = next(e for e in events if e["event"] == "ownership-miss")
        assert miss["shard"] == 1
        address = f"{server.address[0]}:{server.address[1]}"
        assert main(["stats", "--connect", address, "--events"]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(line) for line in out.splitlines()]
        assert any(e["event"] == "ownership-miss" for e in lines)
        assert all("seq" in e and "ts" in e for e in lines)
    finally:
        cluster.close()


def test_cluster_status_cli_renders_fleet_heat_and_advice(
    tmp_path, capsys
):
    """The acceptance scenario: one command against a 3-worker fleet
    renders per-worker liveness, merged counters and the heat map."""
    cluster = Cluster(tmp_path, db_seed=89, shards=4, workers=3)
    queries = _queries(cluster.db, 90, 4)
    executor = ReplicatedExecutor(
        cluster.keys, replication_factor=2, timeout=30
    )
    try:
        with QuerySession(cluster.sharded, executor=executor) as coord:
            coord.run_batch(queries)
        address_list = ",".join(cluster.keys)
        assert (
            main(
                [
                    "cluster-status",
                    address_list,
                    "--replication-factor",
                    "2",
                    "--timeout",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3/3 workers live" in out
        assert "heat map" in out
        assert "advisor: cluster looks healthy" in out
        for key in cluster.keys:
            assert key in out
        # The labelled exposition, same fleet.
        assert (
            main(
                [
                    "cluster-status",
                    address_list,
                    "--prometheus",
                    "--timeout",
                    "10",
                ]
            )
            == 0
        )
        prom = capsys.readouterr().out
        assert 'repro_worker_up{worker="' in prom
        assert 'repro_shard_queries{shard="' in prom
        # And the raw view as JSON.
        assert (
            main(
                [
                    "cluster-status",
                    address_list,
                    "--json",
                    "--timeout",
                    "10",
                ]
            )
            == 0
        )
        view = json.loads(capsys.readouterr().out)
        assert view["live_workers"] == 3
    finally:
        executor.close()
        cluster.close()


def test_federation_http_endpoint_hygiene():
    """The coordinator-side exposition endpoint follows the same HTTP
    contract as the worker endpoint: GET/HEAD, the Prometheus content
    type, 404 for unknown paths."""
    import http.client

    fed = ClusterFederation(["127.0.0.1:1"], shard_count=2)
    fed.poll()  # dead worker: still a perfectly scrapable view
    try:
        host, port = fed.serve_http()

        def request(method, target):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request(method, target)
                response = conn.getresponse()
                return (
                    response.status,
                    dict(response.headers),
                    response.read(),
                )
            finally:
                conn.close()

        status, headers, body = request("GET", "/metrics")
        assert status == 200
        assert "text/plain; version=0.0.4" in headers["Content-Type"]
        assert b'repro_worker_up{worker="127.0.0.1:1"} 0' in body
        status, headers, body = request("HEAD", "/metrics")
        assert status == 200 and body == b""
        assert int(headers["Content-Length"]) > 0
        status, _, _ = request("GET", "/nope")
        assert status == 404
    finally:
        fed.stop()
