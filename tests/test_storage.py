"""Storage layer: sharded databases and row-level mutations."""

from __future__ import annotations

import pytest

from repro.costs.cardinality import Statistics
from repro.relational.database import Database
from repro.relational.schema import SchemaError
from repro.storage import (
    PARTITION_STRATEGIES,
    ShardedDatabase,
    ShardingError,
    stable_row_hash,
)
from repro.workloads import random_database


def flat_db() -> Database:
    db = Database()
    db.add_rows(
        "R", ("a", "b"), [(i, i % 3) for i in range(12)]
    )
    db.add_rows("S", ("c", "d"), [(i % 3, i) for i in range(7)])
    db.add_rows("U", ("e",), [(1,), (2,)])
    return db


# -- Database row-level mutations ------------------------------------------


def test_delete_rows_by_tuple_and_predicate():
    db = flat_db()
    before = db.version
    assert db.delete_rows("R", rows=[(0, 0), (99, 99)]) == 1
    assert db.version == before + 1
    assert db.delete_rows("R", where=lambda row: row[1] == 1) == 4
    assert len(db["R"]) == 7
    assert db.version == before + 2


def test_delete_rows_requires_a_criterion():
    db = flat_db()
    with pytest.raises(ValueError):
        db.delete_rows("R")
    assert db.delete_rows("R", where=lambda row: True) == 12
    assert len(db["R"]) == 0


def test_noop_delete_does_not_bump_version():
    db = flat_db()
    before = db.version
    assert db.delete_rows("R", rows=[(99, 99)]) == 0
    assert db.delete_rows("R", where=lambda row: False) == 0
    assert db.version == before


def test_update_rows_rewrites_and_bumps_version():
    db = flat_db()
    before = db.version
    changed = db.update_rows(
        "S", lambda row: row[0] == 0, {"d": lambda row: row[1] + 100}
    )
    assert changed == 3
    assert db.version == before + 1
    assert all(d >= 100 for c, d in db["S"].rows if c == 0)


def test_update_rows_set_semantics_may_merge():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (1, 2)])
    assert db.update_rows("R", lambda row: True, {"b": 9}) == 2
    assert db["R"].rows == [(1, 9)]


def test_noop_update_does_not_bump_version():
    db = flat_db()
    before = db.version
    assert db.update_rows("U", lambda row: True, {"e": lambda r: r[0]}) == 0
    assert db.version == before


def test_store_rejects_schema_change():
    db = flat_db()
    from repro.relational.relation import Relation

    with pytest.raises(SchemaError):
        db._store(Relation.from_rows("R", ("a", "z"), [(1, 1)]))


# -- ShardedDatabase construction and the merged view ----------------------


def test_sharded_preserves_merged_view():
    db = flat_db()
    sdb = ShardedDatabase.from_database(db, shards=3)
    assert sdb.names == db.names
    assert sdb.schema() == db.schema()
    for name in db.names:
        assert sdb[name].rows == db[name].rows
    assert sdb.total_size == db.total_size


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_partitions_are_a_disjoint_cover(strategy):
    sdb = ShardedDatabase.from_database(
        flat_db(), shards=3, strategy=strategy
    )
    for name in sdb.names:
        merged = set(sdb[name].rows)
        parts = [set(sdb.shard(i)[name].rows) for i in range(3)]
        assert set.union(*parts) == merged
        assert sum(len(p) for p in parts) == len(merged)  # disjoint


def test_round_robin_is_balanced():
    sdb = ShardedDatabase.from_database(
        flat_db(), shards=3, strategy="round_robin"
    )
    sizes = sdb.shard_sizes("R")
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 12


def test_hash_placement_is_content_addressed():
    sdb = ShardedDatabase.from_database(flat_db(), shards=3)
    for row in sdb["R"].rows:
        home = stable_row_hash(row) % 3
        assert row in sdb.shard(home)["R"].rows


def test_every_shard_knows_the_full_schema():
    sdb = ShardedDatabase(shards=4)
    sdb.add_rows("T", ("x",), [(1,)])  # 1 row, 4 shards
    for i in range(4):
        assert "T" in sdb.shard(i)
        assert sdb.shard(i)["T"].attributes == ("x",)


def test_invalid_configurations_rejected():
    with pytest.raises(ShardingError):
        ShardedDatabase(shards=0)
    with pytest.raises(ShardingError):
        ShardedDatabase(shards=2, strategy="range")
    with pytest.raises(ShardingError):
        ShardedDatabase(shards=2).shard(5)


# -- mutations re-partition ------------------------------------------------


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_mutations_keep_shards_in_sync(strategy):
    sdb = ShardedDatabase.from_database(
        flat_db(), shards=3, strategy=strategy
    )

    def cover(name):
        merged = set(sdb[name].rows)
        parts = [set(sdb.shard(i)[name].rows) for i in range(3)]
        assert set().union(*parts) == merged
        assert sum(len(p) for p in parts) == len(merged)  # disjoint

    before = sdb.version
    sdb.extend_rows("R", [(100, 100), (101, 101)])
    cover("R")
    assert sdb.delete_rows("R", where=lambda row: row[0] < 3) == 3
    cover("R")
    assert sdb.update_rows("R", lambda row: row[0] == 100, {"b": 7}) == 1
    cover("R")
    assert (100, 7) in sdb["R"].rows
    assert sdb.version == before + 3


def test_version_counter_inherited():
    sdb = ShardedDatabase.from_database(flat_db(), shards=2)
    before = sdb.version
    sdb.add_rows("W", ("w",), [(1,)])
    assert sdb.version == before + 1
    assert all("W" in sdb.shard(i) for i in range(2))


# -- per-shard statistics and views ----------------------------------------


def test_shard_statistics_describe_partitions_and_cache():
    sdb = ShardedDatabase.from_database(flat_db(), shards=2)
    stats0 = sdb.shard_statistics(0)
    assert stats0 is sdb.shard_statistics(0)  # cached per version
    assert (
        stats0.cardinalities["R"] + sdb.shard_statistics(1).cardinalities["R"]
        == 12
    )
    merged = Statistics.of_database(sdb)
    assert merged.cardinalities["R"] == 12
    sdb.extend_rows("R", [(500, 500)])
    assert sdb.shard_statistics(0) is not stats0  # invalidated


def test_shard_view_swaps_exactly_one_relation():
    sdb = ShardedDatabase.from_database(flat_db(), shards=3)
    view = sdb.shard_view(1, "R")
    assert view["R"].rows == sdb.shard(1)["R"].rows
    assert view["S"].rows == sdb["S"].rows
    assert view["U"].rows == sdb["U"].rows
    assert sorted(view.names) == sorted(sdb.names)


def test_fanout_prefers_largest_relation():
    sdb = ShardedDatabase.from_database(flat_db(), shards=2)
    assert sdb.fanout_relation(["R", "S", "U"]) == "R"
    assert sdb.fanout_relation(["S", "U"]) == "S"
    with pytest.raises(ShardingError):
        sdb.fanout_relation([])


def test_sharding_a_random_database_roundtrips():
    db = random_database(
        relations=4, attributes=8, tuples=20, domain=6, seed=5
    )
    for strategy in PARTITION_STRATEGIES:
        sdb = ShardedDatabase.from_database(
            db, shards=4, strategy=strategy
        )
        for name in db.names:
            assert sdb[name].rows == db[name].rows
            merged = set(db[name].rows)
            parts = [
                set(sdb.shard(i)[name].rows) for i in range(4)
            ]
            assert set().union(*parts) == merged


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_extend_rows_matches_full_repartition(strategy):
    """The hash append fast path must land every row exactly where a
    from-scratch repartition would (round-robin takes the full
    rebuild, so it is covered by the same equivalence)."""
    db = random_database(
        relations=3, attributes=6, tuples=25, domain=9, seed=11
    )
    sdb = ShardedDatabase.from_database(db, shards=4, strategy=strategy)
    arity = len(sdb["R0"].attributes)
    new_rows = [
        tuple(200 + i + j for j in range(arity)) for i in range(9)
    ]
    new_rows.append(sdb["R0"].rows[0])  # duplicate: set semantics
    before = sdb.version
    sdb.extend_rows("R0", new_rows)
    assert sdb.version == before + 1
    reference = ShardedDatabase.from_database(
        sdb, shards=4, strategy=strategy
    )
    for index in range(4):
        assert (
            sdb.shard(index)["R0"].rows
            == reference.shard(index)["R0"].rows
        )
    # Untouched relations keep their partitions too.
    for index in range(4):
        assert (
            sdb.shard(index)["R1"].rows
            == reference.shard(index)["R1"].rows
        )


def test_extend_rows_fast_path_touches_only_affected_shards():
    """Appending one row must leave the other shards' partition
    objects untouched (the point of the fast path: no full rebuild)."""
    db = random_database(
        relations=2, attributes=4, tuples=30, domain=9, seed=13
    )
    sdb = ShardedDatabase.from_database(db, shards=4, strategy="hash")
    from repro.storage.sharded import stable_row_hash

    arity = len(sdb["R0"].attributes)
    row = tuple(900 + j for j in range(arity))
    target = stable_row_hash(row) % 4
    parts_before = {
        i: sdb.shard(i)["R0"] for i in range(4)
    }
    sdb.extend_rows("R0", [row])
    for i in range(4):
        if i == target:
            assert row in sdb.shard(i)["R0"].rows
            assert sdb.shard(i)["R0"] is not parts_before[i]
        else:
            # Identity preserved: the partition was not rebuilt.
            assert sdb.shard(i)["R0"] is parts_before[i]
