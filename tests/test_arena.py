"""Tests for the columnar arena encoding (:mod:`repro.core.arena`).

The contract under test: the arena and object encodings are two
physical layouts of the *same* representation -- conversion round-trips
exactly, enumeration order is identical, every derived measure (size,
count, aggregates) agrees, and the operator fast paths (non-equality
selection, subtree-dropping projection) never fork from the object
reference.  Properties run over >= 50 seeded random databases plus the
documented edge cases: the empty relation (``None``) and the nullary
tuple (``ProductRep([])`` / a zero-node arena).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import arena
from repro.core.arena import ArenaError, ArenaRep, ArenaWriter
from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.ops import project, select_constant
from repro.query.hypergraph import Hypergraph
from repro.query.parser import parse_query
from repro.query.query import ConstantCondition
from repro.workloads import random_database, random_spj_queries

#: >= 50 seeded databases for the round-trip / order properties.
PROPERTY_SEEDS = list(range(300, 350))


def _result_pair(seed: int):
    """(object result, db, query) for one seeded random SPJ query."""
    db = random_database(
        relations=3, attributes=7, tuples=6, domain=4, seed=seed
    )
    query = random_spj_queries(
        db, 1, seed=seed + 1000, max_relations=3, max_equalities=2
    )[0]
    return FDB(db).evaluate(query), db, query


def _nonempty_result(seed: int):
    """The first non-empty seeded result at or after ``seed``."""
    for offset in range(20):
        fr, db, query = _result_pair(seed + offset)
        if not fr.is_empty():
            return fr, db, query
    raise AssertionError("no non-empty result in 20 seeds")


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
def test_round_trip_and_enumeration_order(seed):
    fr, db, query = _result_pair(seed)
    rep = arena.from_product(fr.tree, fr.data)
    # Round trip is exact (including the empty relation).
    assert arena.to_product(rep) == fr.data
    if fr.data is None:
        assert rep is None
        return
    fa = FactorisedRelation(fr.tree, arena=rep)
    order = fr.attributes
    # Identical enumeration order, not merely equal row sets.
    assert list(fa.rows(order)) == list(fr.rows(order))
    assert list(iter(fa)) == list(iter(fr))
    assert fa.count() == fr.count()
    assert fa.size() == fr.size()
    assert fa.flat_data_elements() == fr.flat_data_elements()
    fa.validate()


@pytest.mark.parametrize("seed", PROPERTY_SEEDS[:10])
def test_direct_arena_build_matches_object_build(seed):
    """ArenaFactoriser output == from_product(object factorisation)."""
    db = random_database(
        relations=3, attributes=7, tuples=6, domain=4, seed=seed
    )
    query = random_spj_queries(
        db, 1, seed=seed + 2000, max_relations=3, max_equalities=2
    )[0]
    fdb = FDB(db)
    tree = fdb.optimal_tree(query)
    relations = [db[name] for name in query.relations]
    product = factorise(relations, tree)
    built = factorise(relations, tree, encoding="arena")
    assert arena.to_product(built) == product
    if product is not None:
        order = tuple(sorted(tree.attributes()))
        assert list(arena.iter_rows(built, order)) == list(
            FactorisedRelation(tree, product).rows(order)
        )


@pytest.mark.parametrize("seed", PROPERTY_SEEDS[:12])
def test_aggregates_agree_between_encodings(seed):
    fr, db, query = _result_pair(seed)
    if fr.is_empty():
        pytest.skip("empty result: aggregates covered separately")
    fa = fr.to_arena()
    for attribute in fr.attributes:
        assert fa.sum(attribute) == pytest.approx(fr.sum(attribute))
        assert fa.avg(attribute) == pytest.approx(fr.avg(attribute))
        assert fa.min(attribute) == fr.min(attribute)
        assert fa.max(attribute) == fr.max(attribute)
        assert fa.count_distinct(attribute) == fr.count_distinct(
            attribute
        )
        assert fa.group_count(attribute) == fr.group_count(attribute)


def test_empty_relation_round_trip():
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    assert arena.from_product(tree, None) is None
    assert arena.to_product(None) is None
    fa = FactorisedRelation(tree, arena=None)
    assert fa.is_empty()
    assert fa.count() == 0 and fa.size() == 0
    assert list(fa.rows()) == []
    assert fa.data is None  # lazy conversion of the empty arena
    assert fa.to_object().is_empty()


def test_nullary_tuple_round_trip():
    """ProductRep([]) over an empty forest <-> a zero-node arena."""
    tree = FTree([], Hypergraph([]))
    nullary = ProductRep([])
    rep = arena.from_product(tree, nullary)
    assert rep is not None and rep.node_count == 0
    assert arena.to_product(rep) == nullary
    assert arena.tuple_count(rep) == 1
    assert list(arena.iter_rows(rep, ())) == [()]
    fa = FactorisedRelation(tree, arena=rep)
    assert not fa.is_empty()
    assert fa.count() == 1 and fa.size() == 0


def test_lazy_conversion_both_ways_and_primary_encoding():
    fr, _, _ = _nonempty_result(301)
    assert fr.encoding == "object"
    fa = fr.to_arena()
    assert fa.encoding == "arena"
    assert fa.to_arena() is fa  # already primary
    back = fa.to_object()
    assert back.encoding == "object"
    assert back.data == fr.data
    # Reading .data on an arena-primary relation materialises objects
    # without changing the primary encoding.
    assert fa.data == fr.data
    assert fa.encoding == "arena"


def test_copy_preserves_encoding_and_isolates_columns():
    fr, _, _ = _nonempty_result(302)
    fa = fr.to_arena()
    clone = fa.copy()
    assert clone.encoding == "arena"
    assert list(clone.rows()) == list(fa.rows())
    clone.arena.values[0][0] = clone.arena.values[0][0]  # same buffer?
    assert clone.arena.values[0] is not fa.arena.values[0]


def test_arena_pickle_round_trip():
    """Process-pool workers ship arena-backed results by pickle."""
    fr, _, _ = _nonempty_result(303)
    fa = fr.to_arena()
    loaded = pickle.loads(pickle.dumps(fa))
    assert loaded.encoding == "arena"
    assert list(loaded.rows()) == list(fa.rows())
    loaded.validate()


# -- operator fast paths ------------------------------------------------------


def _grocery_like():
    from repro.relational.database import Database

    db = Database()
    db.add_rows(
        "Orders",
        ("oid", "item"),
        [(i, i % 6) for i in range(30)],
    )
    db.add_rows(
        "Store",
        ("item2", "loc"),
        [(i % 6, i % 4) for i in range(24)],
    )
    query = parse_query(
        "SELECT * FROM Orders, Store WHERE item = item2"
    )
    return db, query


@pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "!="])
def test_select_fast_path_matches_object_path(op):
    db, query = _grocery_like()
    fo = FDB(db).evaluate(query)
    fa = FDB(db, encoding="arena").evaluate(query)
    for attribute in fo.attributes:
        cond = ConstantCondition(attribute, op, 2)
        expected = select_constant(fo, cond)
        got = select_constant(fa, cond)
        assert got.encoding == "arena" or got.is_empty()
        assert sorted(got.rows()) == sorted(expected.rows()), (
            attribute,
            op,
        )
        if not got.is_empty():
            got.validate()


def test_select_equality_falls_back_and_agrees():
    db, query = _grocery_like()
    fo = FDB(db).evaluate(query)
    fa = FDB(db, encoding="arena").evaluate(query)
    cond = ConstantCondition("item", "=", 3)
    expected = select_constant(fo, cond)
    got = select_constant(fa, cond)
    assert sorted(got.rows()) == sorted(expected.rows())


def test_select_fast_path_empty_result_keeps_arena_encoding():
    db, query = _grocery_like()
    fa = FDB(db, encoding="arena").evaluate(query)
    cond = ConstantCondition("oid", "<", -1)
    got = select_constant(fa, cond)
    assert got.is_empty()
    assert got.encoding == "arena"


def test_project_subtree_drop_fast_path():
    """A projection that removes whole subtrees keeps the arena and
    agrees with the object path's relation."""
    db, query = _grocery_like()
    fo = FDB(db).evaluate(query)
    fa = FDB(db, encoding="arena").evaluate(query)
    # Find a projection that drops a leaf subtree: project onto all
    # attributes of the tree except one leaf node's.
    tree = fa.tree
    leaves = [n for n in tree.iter_nodes() if not n.children]
    target = leaves[-1]
    keep = sorted(tree.attributes() - target.label)
    expected = project(fo, keep)
    got = project(fa, keep)
    assert got.encoding == "arena"
    assert sorted(got.rows()) == sorted(expected.rows())
    got.validate()


def test_project_identity_returns_input():
    db, query = _grocery_like()
    fa = FDB(db, encoding="arena").evaluate(query)
    assert project(fa, sorted(fa.tree.attributes())) is fa


@pytest.mark.parametrize("seed", PROPERTY_SEEDS[:15])
def test_random_projections_agree_between_encodings(seed):
    """Projection over arena inputs (fast path or fallback) always
    matches the object reference."""
    import random

    rng = random.Random(seed)
    fr, db, query = _result_pair(seed)
    if fr.is_empty():
        pytest.skip("empty result")
    fa = fr.to_arena()
    attrs = list(fr.attributes)
    keep = sorted(
        rng.sample(attrs, rng.randint(1, len(attrs)))
    )
    expected = project(fr, keep)
    got = project(fa, keep)
    assert sorted(set(got.rows())) == sorted(set(expected.rows()))


# -- writer/validation internals ---------------------------------------------


def test_writer_rollback_truncates_descendants():
    tree = FTree.from_nested(
        [("a", [("b", []), ("c", [])])],
        edges=[{"a", "b"}, {"a", "c"}],
    )
    writer = ArenaWriter(tree)
    root = writer.index[frozenset({"a"})]
    marks = writer.mark(root)
    writer.extend_leaf(writer.index[frozenset({"b"})], [1, 2])
    writer.rollback(root, marks)
    assert writer.entry_count(writer.index[frozenset({"b"})]) == 0


def test_intern_distinguishes_equal_values_of_different_types():
    tree = FTree.from_nested([("a", [])], edges=[])
    writer = ArenaWriter(tree)
    assert writer.intern(1) != writer.intern(True)
    assert writer.intern(1) != writer.intern(1.0)
    assert writer.intern(1) == writer.intern(1)


def test_validate_arena_rejects_mismatched_tree():
    fr, _, _ = _nonempty_result(304)
    if fr.is_empty():
        pytest.skip("empty result")
    rep = fr.to_arena().arena
    other = FTree.from_nested([("zz", [])], edges=[])
    with pytest.raises(ArenaError):
        arena.validate_arena(other, rep)


def test_validate_arena_rejects_bad_ranges():
    db, query = _grocery_like()
    fa = FDB(db, encoding="arena").evaluate(query)
    broken = fa.arena.copy()
    for slots in broken.child_hi:
        if slots and len(slots[0]):
            slots[0][0] = 10_000_000
            break
    with pytest.raises(ArenaError):
        arena.validate_arena_bounds(fa.tree, broken)


def test_pool_is_compacted_after_build():
    """Rolled-back entries must not leave dangling pool values."""
    db, query = _grocery_like()
    fa = FDB(db, encoding="arena").evaluate(query)
    rep = fa.arena
    used = set()
    for column in rep.values:
        used.update(column)
    assert used == set(range(len(rep.pool)))


# -- review regressions -------------------------------------------------------


def test_count_distinct_collapses_equal_values_of_different_types():
    """1 and 1.0 intern into distinct pool slots but COUNT(DISTINCT)
    uses value equality, exactly like the object encoding."""
    from repro.relational.database import Database

    db = Database()
    db.add_rows("R", ("a", "c"), [(1, 1), (2, 1.0), (3, True), (4, 2)])
    q = parse_query("SELECT * FROM R")
    fo = FDB(db).evaluate(q)
    fa = FDB(db, encoding="arena").evaluate(q)
    assert fo.count_distinct("c") == fa.count_distinct("c") == 2


def test_bounds_check_rejects_non_contiguous_ranges():
    """In-bounds but non-DFS-tiling child ranges (what a CRC-valid
    tampered blob could carry) must fail validation -- the bulk-copy
    selection kernel relies on the tiling."""
    from repro.relational.relation import Relation

    r = Relation.from_rows(
        "R", ("a", "b"), [(1, 1), (1, 2), (2, 3), (2, 4)]
    )
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    rep = factorise([r], tree, encoding="arena")
    arena.validate_arena_bounds(tree, rep)  # healthy baseline
    # Swap the two a-entries' b-ranges: [0,2) and [2,4) become [2,4)
    # and [0,2) -- every offset stays in bounds and non-empty, but the
    # layout is no longer the DFS tiling.
    broken = rep.copy()
    los, his = broken.child_lo[0][0], broken.child_hi[0][0]
    los[0], los[1] = los[1], los[0]
    his[0], his[1] = his[1], his[0]
    with pytest.raises(ArenaError, match="tile"):
        arena.validate_arena_bounds(tree, broken)
    # Overlapping ranges with correct endpoints are caught too.
    overlap = rep.copy()
    overlap.child_lo[0][0][1] = 1
    with pytest.raises(ArenaError, match="tile|gaps"):
        arena.validate_arena_bounds(tree, overlap)


def test_iter_rows_unknown_attribute_raises_like_objects():
    fr, _, _ = _nonempty_result(306)
    fa = fr.to_arena()
    with pytest.raises(KeyError):
        list(fr.rows(["not_an_attribute"]))
    with pytest.raises(KeyError):
        list(fa.rows(["not_an_attribute"]))
