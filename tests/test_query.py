"""Unit tests for the SPJ query model."""

import pytest

from repro.query.query import (
    ConstantCondition,
    EqualityCondition,
    Query,
    QueryError,
)


def test_trivial_equality_rejected():
    with pytest.raises(QueryError):
        EqualityCondition("a", "a")


def test_equality_attributes_and_str():
    eq = EqualityCondition("a", "b")
    assert eq.attributes() == frozenset({"a", "b"})
    assert str(eq) == "a = b"


def test_constant_condition_comparators():
    assert ConstantCondition("a", "=", 3).test(3)
    assert not ConstantCondition("a", "=", 3).test(4)
    assert ConstantCondition("a", "<", 3).test(2)
    assert ConstantCondition("a", "<=", 3).test(3)
    assert ConstantCondition("a", ">", 3).test(4)
    assert ConstantCondition("a", ">=", 3).test(3)
    assert ConstantCondition("a", "!=", 3).test(4)


def test_unknown_comparator_rejected():
    with pytest.raises(QueryError):
        ConstantCondition("a", "~", 3)


def test_make_builds_conditions():
    q = Query.make(
        ["R", "S"],
        equalities=[("a", "c")],
        constants=[("b", ">=", 2)],
        projection=["a"],
    )
    assert q.relations == ("R", "S")
    assert q.equalities[0] == EqualityCondition("a", "c")
    assert q.constants[0].op == ">="
    assert q.projection == ("a",)


def test_attribute_classes_merge_transitively():
    q = Query.make(["R"], equalities=[("a", "b"), ("b", "c")])
    classes = q.attribute_classes(["a", "b", "c", "d"])
    assert frozenset({"a", "b", "c"}) in classes
    assert frozenset({"d"}) in classes
    assert len(classes) == 2


def test_attribute_classes_unknown_attribute():
    q = Query.make(["R"], equalities=[("a", "zz")])
    with pytest.raises(QueryError):
        q.attribute_classes(["a", "b"])


def test_nonredundant_equalities_dropped():
    q = Query.make(
        ["R"], equalities=[("a", "b"), ("b", "c"), ("a", "c")]
    )
    kept = q.nonredundant_equalities(["a", "b", "c"])
    assert len(kept) == 2


def test_validate_against_schema():
    schema = {"R": ("a", "b"), "S": ("c",)}
    Query.make(["R", "S"], equalities=[("a", "c")]).validate_against(
        schema
    )
    with pytest.raises(QueryError):
        Query.make(["R", "X"]).validate_against(schema)
    with pytest.raises(QueryError):
        Query.make(["R"], equalities=[("a", "zz")]).validate_against(
            schema
        )
    with pytest.raises(QueryError):
        Query.make(["R"], constants=[("zz", "=", 1)]).validate_against(
            schema
        )
    with pytest.raises(QueryError):
        Query.make(["R"], projection=["zz"]).validate_against(schema)


def test_str_rendering():
    q = Query.make(
        ["R", "S"],
        equalities=[("a", "c")],
        constants=[("b", "=", 1)],
        projection=["a", "b"],
    )
    text = str(q)
    assert "SELECT a, b FROM R, S" in text
    assert "a = c" in text and "b = 1" in text


def test_class_partition_is_canonical():
    q1 = Query.make(["R"], equalities=[("a", "b")])
    q2 = Query.make(["R"], equalities=[("b", "a")])
    attrs = ["a", "b", "c"]
    assert q1.class_partition(attrs) == q2.class_partition(attrs)
