"""Seeded property tests: arena-native operators equal their object twins.

Every f-plan operator now has a columnar kernel that runs directly on
the arena encoding (:mod:`repro.ops.arena_kernels`); the object
implementations are kept as the differential oracle.  These tests pin
the equivalence on the shapes the kernels are easiest to get wrong:

- empty inputs (``arena=None`` must propagate, never materialise);
- single-row relations (every union is a singleton, every child range
  is ``[0, 1)``);
- deep chain skeletons (per-level recursion depth equals tree height);
- randomly drawn operator applications over seeded databases, with
  the arena<->object adapter counters asserted flat across the arena
  run -- an operator that silently falls back to the object encoding
  fails here, not just in the benchmarks.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Tuple

import pytest

from repro import ops
from repro.core.arena import validate_arena
from repro.core.build import factorise
from repro.core.factorised import ADAPTER, FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.query.query import ConstantCondition, Query
from repro.workloads import random_database, random_spj_queries

#: Database seeds for the randomized sweeps.
SEEDS = [301, 302, 303]

_STEP_OPS = {
    "swap": ops.swap,
    "merge": ops.merge,
    "absorb": ops.absorb,
}


def _database(seed: int, tuples: int = 6):
    return random_database(
        relations=4, attributes=8, tuples=tuples, domain=5, seed=seed
    )


def _twins(
    db, query: Query
) -> Tuple[FactorisedRelation, FactorisedRelation]:
    """The same factorised join in both encodings, over one tree."""
    tree = FDB(db).optimal_tree(query)
    arena_fr = FDB(db, encoding="arena").factorise_query(
        query, tree=tree
    )
    object_fr = FDB(db).factorise_query(query, tree=tree)
    return arena_fr, object_fr


def _rows(fr: FactorisedRelation) -> Tuple[tuple, List[tuple]]:
    order = tuple(sorted(fr.tree.attributes()))
    return order, sorted(set(fr.rows(order)))


def _assert_twin(
    arena_out: FactorisedRelation,
    object_out: FactorisedRelation,
    context: str,
) -> None:
    assert arena_out.encoding == "arena", f"{context}: fell back to object"
    assert (
        arena_out.tree.key() == object_out.tree.key()
    ), f"{context}: trees diverge"
    if arena_out.arena is not None:
        validate_arena(arena_out.tree, arena_out.arena)
    assert _rows(arena_out) == _rows(object_out), context


def _candidate_steps(
    tree: FTree, rng: random.Random, limit: int = 8
) -> List[Tuple[str, Tuple[str, str]]]:
    """Applicable restructuring steps, mirroring the optimiser's
    neighbour enumeration (swaps between parent/child, merges between
    siblings, absorbs along ancestor paths)."""
    steps: List[Tuple[str, Tuple[str, str]]] = []
    nodes = list(tree.iter_nodes())
    for node in nodes:
        parent = tree.parent_of(node)
        if parent is not None:
            steps.append(("swap", (min(parent.label), min(node.label))))
    for left, right in combinations(nodes, 2):
        parent_l = tree.parent_of(left)
        parent_r = tree.parent_of(right)
        same_parent = (parent_l is None and parent_r is None) or (
            parent_l is not None
            and parent_r is not None
            and parent_l.label == parent_r.label
        )
        if same_parent:
            steps.append(
                ("merge", (min(left.label), min(right.label)))
            )
        elif tree.is_ancestor(left, right):
            steps.append(
                ("absorb", (min(left.label), min(right.label)))
            )
    rng.shuffle(steps)
    return steps[:limit]


def _apply(kind: str, fr: FactorisedRelation, args) -> FactorisedRelation:
    return _STEP_OPS[kind](fr, *args)


# -- randomized operator sweep ------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_random_steps_match_object_twin(seed):
    db = _database(seed)
    rng = random.Random(seed)
    queries = random_spj_queries(
        db, 4, seed=seed + 500, max_relations=3, max_equalities=1
    )
    exercised = 0
    for query in queries:
        base = Query.make(query.relations)
        arena_fr, object_fr = _twins(db, base)
        for kind, args in _candidate_steps(arena_fr.tree, rng):
            before = ADAPTER.snapshot()["to_object_calls"]
            arena_out = _apply(kind, arena_fr, args)
            after = ADAPTER.snapshot()["to_object_calls"]
            assert after == before, (
                f"seed {seed} {kind}{args}: arena op took "
                f"{after - before} adapter round trips"
            )
            object_out = _apply(kind, object_fr, args)
            _assert_twin(
                arena_out, object_out, f"seed {seed} {kind}{args}"
            )
            exercised += 1
    assert exercised >= 10


@pytest.mark.parametrize("seed", SEEDS)
def test_select_project_normalise_match_object_twin(seed):
    db = _database(seed)
    rng = random.Random(seed + 1)
    queries = random_spj_queries(
        db, 3, seed=seed + 700, max_relations=3, max_equalities=2
    )
    for query in queries:
        base = Query.make(query.relations)
        arena_fr, object_fr = _twins(db, base)
        attrs = sorted(arena_fr.tree.attributes())
        attr = rng.choice(attrs)
        for op in ("=", "<", ">="):
            cond = ConstantCondition(attr, op, rng.randint(1, 5))
            _assert_twin(
                ops.select_constant(arena_fr, cond),
                ops.select_constant(object_fr, cond),
                f"seed {seed} select {cond}",
            )
        keep = rng.sample(attrs, rng.randint(1, len(attrs)))
        _assert_twin(
            ops.project(arena_fr, keep),
            ops.project(object_fr, keep),
            f"seed {seed} project {keep}",
        )
        _assert_twin(
            ops.normalise(arena_fr),
            ops.normalise(object_fr),
            f"seed {seed} normalise",
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_union_and_product_match_object_twin(seed):
    db = _database(seed)
    names = sorted(rel.name for rel in db)
    # Union: factorise the same join over two halves of one relation
    # (the shard decomposition union is exact for).
    split_name = names[0]
    split = db[split_name]
    half = max(1, len(split) // 2)
    halves = []
    for rows in (split.rows[:half], split.rows[half:]):
        view = _database(seed)
        view.delete_rows(
            split_name,
            rows=[r for r in split.rows if r not in rows],
        )
        halves.append(view)
    query = Query.make(names[:2])
    tree = FDB(db).optimal_tree(query)
    arena_parts = [
        FDB(h, encoding="arena").factorise_query(query, tree=tree)
        for h in halves
    ]
    object_parts = [
        FDB(h).factorise_query(query, tree=tree) for h in halves
    ]
    _assert_twin(
        ops.union(*arena_parts),
        ops.union(*object_parts),
        f"seed {seed} union",
    )
    # Product: two joins over disjoint relation subsets.
    qa, qb = Query.make(names[:2]), Query.make(names[2:])
    a_arena, a_object = _twins(db, qa)
    b_arena, b_object = _twins(db, qb)
    _assert_twin(
        ops.product(a_arena, b_arena),
        ops.product(a_object, b_object),
        f"seed {seed} product",
    )


# -- empty inputs -------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_empty_inputs_stay_arena_and_match(seed):
    db = _database(seed)
    rng = random.Random(seed + 2)
    names = sorted(rel.name for rel in db)
    base = Query.make(names[:3])
    arena_fr, object_fr = _twins(db, base)
    # An impossible range selection empties both twins without
    # restructuring the tree (an ``=`` would mark the node constant).
    attr = sorted(arena_fr.tree.attributes())[0]
    nope = ConstantCondition(attr, "<", -10_000)
    arena_empty = ops.select_constant(arena_fr, nope)
    object_empty = ops.select_constant(object_fr, nope)
    assert arena_empty.is_empty() and object_empty.is_empty()
    assert arena_empty.encoding == "arena"
    for kind, args in _candidate_steps(arena_empty.tree, rng, limit=6):
        arena_out = _apply(kind, arena_empty, args)
        object_out = _apply(kind, object_empty, args)
        context = f"seed {seed} empty {kind}{args}"
        assert arena_out.is_empty(), context
        assert arena_out.encoding == "arena", context
        assert (
            arena_out.tree.key() == object_out.tree.key()
        ), context
    attrs = sorted(arena_empty.tree.attributes())
    keep = attrs[: max(1, len(attrs) // 2)]
    arena_proj = ops.project(arena_empty, keep)
    object_proj = ops.project(object_empty, keep)
    assert arena_proj.is_empty() and arena_proj.encoding == "arena"
    assert arena_proj.tree.key() == object_proj.tree.key()
    # Union with an empty side preserves the non-empty input verbatim.
    assert ops.union(arena_empty, arena_fr).count() == arena_fr.count()
    assert ops.union(arena_fr, arena_empty).count() == arena_fr.count()


# -- single-row relations -----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_single_row_relations_match(seed):
    db = _database(seed, tuples=1)
    rng = random.Random(seed + 3)
    names = sorted(rel.name for rel in db)
    base = Query.make(names[:3])
    arena_fr, object_fr = _twins(db, base)
    for kind, args in _candidate_steps(arena_fr.tree, rng, limit=6):
        _assert_twin(
            _apply(kind, arena_fr, args),
            _apply(kind, object_fr, args),
            f"seed {seed} single-row {kind}{args}",
        )


# -- deep chain skeletons -----------------------------------------------------


def _chain(depth: int, rows_per_level: int = 2):
    """A depth-``depth`` chain f-tree with matching relations."""
    from repro.relational.relation import Relation

    attrs = [f"x{i:03d}" for i in range(depth)]
    nested = None
    for attr in reversed(attrs):
        nested = (attr, [nested] if nested else [])
    edges = [
        {attrs[i], attrs[i + 1]} for i in range(depth - 1)
    ]
    tree = FTree.from_nested([nested], edges=edges)
    relations = [
        Relation.from_rows(
            f"L{i:03d}",
            (attrs[i], attrs[i + 1]),
            [(v, v) for v in range(rows_per_level)],
        )
        for i in range(depth - 1)
    ]
    return tree, relations


def test_deep_chain_skeleton_matches():
    depth = 60
    tree, relations = _chain(depth)
    arena_fr = FactorisedRelation(
        tree, arena=factorise(relations, tree, encoding="arena")
    )
    object_fr = FactorisedRelation(
        tree, factorise(relations, tree)
    )
    # Swap at the very bottom of the chain, then renormalise: the
    # kernels recurse the full spine both ways.
    a, b = f"x{depth - 2:03d}", f"x{depth - 1:03d}"
    before = ADAPTER.snapshot()["to_object_calls"]
    arena_out = ops.normalise(ops.swap(arena_fr, a, b))
    after = ADAPTER.snapshot()["to_object_calls"]
    assert after == before, "deep chain took adapter round trips"
    object_out = ops.normalise(ops.swap(object_fr, a, b))
    _assert_twin(arena_out, object_out, "deep chain swap+normalise")


# -- whole-plan compilation ---------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_plans_match_object_stepwise(seed):
    """``FPlan.execute`` on arena input runs the fused compiled chain;
    it must agree with the object path's kernel-at-a-time replay."""
    db = _database(seed)
    queries = random_spj_queries(
        db, 5, seed=seed + 900, max_relations=3, max_equalities=3
    )
    arena_engine = FDB(db, encoding="arena")
    object_engine = FDB(db)
    with_steps = 0
    for index, query in enumerate(queries):
        base = Query.make(query.relations)
        arena_fr, object_fr = _twins(db, base)
        followup = Query.make(
            [],
            equalities=[
                (eq.left, eq.right) for eq in query.equalities
            ],
        )
        before = ADAPTER.snapshot()["to_object_calls"]
        arena_out, arena_plan = arena_engine.evaluate_on(
            arena_fr, followup
        )
        after = ADAPTER.snapshot()["to_object_calls"]
        assert after == before, (
            f"seed {seed} query {index}: compiled plan took "
            f"{after - before} adapter round trips"
        )
        object_out, object_plan = object_engine.evaluate_on(
            object_fr, followup
        )
        assert str(arena_plan) == str(object_plan)
        if arena_plan.steps:
            with_steps += 1
        _assert_twin(
            arena_out, object_out, f"seed {seed} plan {arena_plan}"
        )
        # Same plan executed twice hits the compiled-plan cache and
        # must stay deterministic.
        rerun = arena_plan.execute(arena_fr)
        assert _rows(rerun) == _rows(arena_out)
    assert with_steps >= 1, "no restructuring plan exercised"
