"""Run the doctests embedded in the library's docstrings.

The public API documents itself with executable examples; this keeps
them honest.
"""

import doctest

import pytest

import repro
import repro.core.build
import repro.core.factorised
import repro.costs.cost_model
import repro.costs.edge_cover
import repro.engine
import repro.experiments.report
import repro.optimiser.ftree_optimiser
import repro.optimiser.ftree_space
import repro.optimiser.greedy
import repro.query.equivalence
import repro.query.parser
import repro.query.query
import repro.relational.csvio
import repro.relational.database
import repro.relational.engine
import repro.relational.relation
import repro.relational.schema
import repro.relational.sqlite_engine
import repro.service.cache
import repro.service.session
import repro.storage.sharded

MODULES = [
    repro,
    repro.core.build,
    repro.core.factorised,
    repro.costs.cost_model,
    repro.costs.edge_cover,
    repro.engine,
    repro.experiments.report,
    repro.optimiser.ftree_optimiser,
    repro.optimiser.ftree_space,
    repro.optimiser.greedy,
    repro.query.equivalence,
    repro.query.parser,
    repro.query.query,
    repro.relational.csvio,
    repro.relational.database,
    repro.relational.engine,
    repro.relational.relation,
    repro.relational.schema,
    repro.relational.sqlite_engine,
    repro.service.cache,
    repro.service.session,
    repro.storage.sharded,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}"
    )


def test_doctests_actually_exist():
    """Guard: the suite above must be exercising real examples."""
    total = sum(
        doctest.testmod(m, verbose=False).attempted for m in MODULES
    )
    assert total >= 15
