"""Unit tests for constant selection, projection and product."""

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.ops import (
    product,
    project,
    select_constant,
    OperatorError,
)
from repro.query.query import ConstantCondition
from repro.relational.relation import Relation
from repro.workloads import grocery_database, tree_t1
from tests.conftest import assignments, filtered


def q1_factorised():
    db = grocery_database()
    tree = tree_t1()
    return FactorisedRelation(
        tree, factorise([db["Orders"], db["Store"], db["Disp"]], tree)
    )


# -- selection with constant -------------------------------------------------


def test_inequality_selection_filters_everywhere():
    fr = q1_factorised()
    cond = ConstantCondition("oid", "<", 3)
    out = select_constant(fr, cond).validate()
    assert assignments(out) == filtered(
        fr, predicate=lambda d: d["oid"] < 3
    )
    # Tree unchanged for non-equality comparisons.
    assert out.tree.key() == fr.tree.key()


def test_equality_selection_marks_constant_and_floats():
    fr = q1_factorised()
    out = select_constant(
        fr, ConstantCondition("s_location", "=", "Istanbul")
    ).validate()
    assert assignments(out) == filtered(
        fr, predicate=lambda d: d["s_location"] == "Istanbul"
    )
    node = out.tree.node_of("s_location")
    assert node.constant
    # The constant node's attributes are gone from the edges.
    for edge in out.tree.edges:
        assert not (edge & node.label)
    assert out.tree.is_normalised()


def test_selection_can_empty_result_with_cascade():
    fr = q1_factorised()
    out = select_constant(
        fr, ConstantCondition("dispatcher", "=", "Nobody")
    )
    assert out.is_empty()


def test_selection_on_empty_input():
    fr = q1_factorised()
    empty = FactorisedRelation(fr.tree, None)
    out = select_constant(empty, ConstantCondition("oid", "=", 1))
    assert out.is_empty()
    assert out.tree.node_of("oid").constant


def test_equality_then_requery_consistency():
    fr = q1_factorised()
    once = select_constant(fr, ConstantCondition("oid", "=", 1))
    twice = select_constant(
        once, ConstantCondition("dispatcher", "=", "Adnan")
    ).validate()
    assert assignments(twice) == filtered(
        fr,
        predicate=lambda d: d["oid"] == 1
        and d["dispatcher"] == "Adnan",
    )


# -- projection ----------------------------------------------------------------


def test_project_leaf_removal():
    fr = q1_factorised()
    keep = ["o_item", "s_item", "s_location", "d_location", "oid"]
    out = project(fr, keep).validate()
    expected = {
        tuple(sorted((k, v) for k, v in d.items() if k in keep))
        for d in fr
    }
    assert assignments(out) == expected
    assert "dispatcher" not in out.tree.attributes()


def test_project_partial_label_reduction():
    fr = q1_factorised()
    keep = ["o_item", "oid", "s_location", "d_location", "dispatcher"]
    out = project(fr, keep).validate()  # drops s_item from {o,s}_item
    assert "s_item" not in out.tree.attributes()
    expected = {
        tuple(sorted((k, v) for k, v in d.items() if k in keep))
        for d in fr
    }
    assert assignments(out) == expected


def test_project_inner_node_keeps_transitive_dependence():
    """Section 3.4's A-B-C warning: removing B keeps A, C dependent."""
    x = Relation.from_rows(
        "X", ("a", "b"), [(1, 1), (1, 2), (2, 2)]
    )
    y = Relation.from_rows(
        "Y", ("b2", "c"), [(1, 5), (2, 6), (2, 7)]
    )
    tree = FTree.from_nested(
        [("a", [(("b", "b2"), [("c", [])])])],
        edges=[{"a", "b"}, {"b2", "c"}],
    )
    fr = FactorisedRelation(tree, factorise([x, y], tree))
    out = project(fr, ["a", "c"]).validate()
    expected = {
        tuple(sorted((k, v) for k, v in d.items() if k in ("a", "c")))
        for d in fr
    }
    assert assignments(out) == expected
    # a and c must still be on one path (phantom edge), not a forest.
    out_tree = out.tree
    node_a, node_c = out_tree.node_of("a"), out_tree.node_of("c")
    assert out_tree.is_ancestor(node_a, node_c) or (
        out_tree.is_ancestor(node_c, node_a)
    )


def test_project_to_empty_schema_is_nullary():
    fr = q1_factorised()
    out = project(fr, [])
    assert out.count() == 1  # the nullary tuple (input non-empty)
    assert out.attributes == ()


def test_project_unknown_attribute_rejected():
    fr = q1_factorised()
    with pytest.raises(OperatorError):
        project(fr, ["zzz"])


def test_project_on_empty_relation():
    fr = q1_factorised()
    empty = FactorisedRelation(fr.tree, None)
    out = project(empty, ["oid"])
    assert out.is_empty()
    assert out.tree.attributes() == frozenset({"oid"})


def test_project_identity_is_noop_relation():
    fr = q1_factorised()
    out = project(fr, list(fr.attributes))
    assert assignments(out) == assignments(fr)


# -- product ---------------------------------------------------------------------


def test_product_counts_multiply():
    r = Relation.from_rows("R", ("a",), [(1,), (2,)])
    s = Relation.from_rows("S", ("b",), [(5,), (6,), (7,)])
    tr = FTree.from_nested([("a", [])], [{"a"}])
    ts = FTree.from_nested([("b", [])], [{"b"}])
    fa = FactorisedRelation(tr, factorise([r], tr))
    fb = FactorisedRelation(ts, factorise([s], ts))
    out = product(fa, fb).validate()
    assert out.count() == 6
    assert out.size() == 5  # linear, not quadratic: 2 + 3 singletons


def test_product_rejects_overlapping_attributes():
    r = Relation.from_rows("R", ("a",), [(1,)])
    tr = FTree.from_nested([("a", [])], [{"a"}])
    fa = FactorisedRelation(tr, factorise([r], tr))
    with pytest.raises(OperatorError):
        product(fa, fa)


def test_product_with_empty_is_empty():
    r = Relation.from_rows("R", ("a",), [(1,)])
    tr = FTree.from_nested([("a", [])], [{"a"}])
    fa = FactorisedRelation(tr, factorise([r], tr))
    ts = FTree.from_nested([("b", [])], [{"b"}])
    fb = FactorisedRelation(ts, None)
    assert product(fa, fb).is_empty()
    assert product(fb, fa).is_empty()
