"""Unit tests for the SQLite comparator engine."""

import pytest

from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.sqlite_engine import SQLiteEngine


@pytest.fixture
def db():
    d = Database()
    d.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)])
    d.add_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])
    return d


def test_counts_match_rdb(db):
    q = Query.make(["R", "S"], equalities=[("b", "c")])
    with SQLiteEngine(db) as sqlite:
        assert sqlite.count(q) == RelationalEngine(db).count(q)


def test_rows_match_rdb(db):
    q = Query.make(
        ["R", "S"],
        equalities=[("b", "c")],
        constants=[("d", ">", 7)],
    )
    flat = RelationalEngine(db).evaluate(q)
    with SQLiteEngine(db) as sqlite:
        rows = sqlite.evaluate(q)
    # Column order differs (RDB's join order is plan-dependent);
    # compare as attribute/value sets.
    sqlite_attrs = db["R"].attributes + db["S"].attributes
    got = {tuple(sorted(zip(sqlite_attrs, row))) for row in rows}
    expected = {
        tuple(sorted(zip(flat.attributes, row))) for row in flat
    }
    assert got == expected


def test_projection(db):
    q = Query.make(["R"], projection=["b"])
    with SQLiteEngine(db) as sqlite:
        rows = sqlite.evaluate(q)
    assert sorted(rows) == [(1,), (2,)]


def test_to_sql_parametrises_constants(db):
    q = Query.make(["R"], constants=[("a", "=", 1)])
    with SQLiteEngine(db) as sqlite:
        sql, params = sqlite.to_sql(q)
    assert "?" in sql and params == [1]


def test_string_values_round_trip():
    db = Database()
    db.add_rows("P", ("name", "item"), [("Guney", "Milk")])
    q = Query.make(["P"], constants=[("item", "=", "Milk")])
    with SQLiteEngine(db) as sqlite:
        assert sqlite.evaluate(q) == [("Guney", "Milk")]


def test_pragmas_applied(db):
    engine = SQLiteEngine(db)
    cur = engine._conn.execute("PRAGMA temp_store")
    assert cur.fetchone()[0] == 2  # MEMORY
    engine.close()


def test_three_engine_agreement_on_random_queries(db):
    queries = [
        Query.make(["R", "S"], equalities=[("b", "c")]),
        Query.make(["R", "S"], equalities=[("a", "d")]),
        Query.make(["R"], equalities=[("a", "b")]),
        Query.make(
            ["R", "S"],
            equalities=[("b", "c")],
            constants=[("a", "<", 3)],
        ),
    ]
    rdb = RelationalEngine(db)
    with SQLiteEngine(db) as sqlite:
        for q in queries:
            assert sqlite.count(q) == rdb.count(q), str(q)
