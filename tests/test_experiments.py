"""Integration tests: the Section 5 experiment harness at tiny scale.

These verify the *shape* claims of the paper on miniature parameter
sweeps; the full-size sweeps live under ``benchmarks/``.
"""

import math

import pytest

from repro.experiments import (
    format_table,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_experiment4,
)
from repro.experiments import exp1, exp2, exp3, exp4


def finite(value: float) -> bool:
    return not math.isnan(value) and not math.isinf(value)


def test_experiment1_tiny():
    rows = run_experiment1(
        relations_values=(1, 2, 3),
        equalities_values=(1, 2, 4),
        attributes=12,
        repeats=2,
    )
    assert len(rows) == 9
    for row in rows:
        assert row.mean_time_seconds >= 0
        assert 1.0 <= row.mean_cost <= row.max_cost
        # Figure 5: cost is always 1 for queries of <= 2 relations.
        if row.relations <= 2:
            assert row.max_cost == 1.0


def test_experiment1_k_capped_by_attributes():
    rows = run_experiment1(
        relations_values=(2,),
        equalities_values=(3, 99),
        attributes=4,
        repeats=1,
    )
    # K = 99 > A - 1 is skipped.
    assert [r.equalities for r in rows] == [3]


def test_experiment2_tiny():
    rows = run_experiment2(
        k_values=(1, 2), l_values=(1, 2), repeats=1
    )
    assert rows
    for row in rows:
        # Full search is never worse (Figure 6).
        assert row.full_plan_cost <= row.greedy_plan_cost + 1e-9
        assert row.full_result_cost <= row.full_plan_cost + 1e-9
        assert row.full_time_seconds > 0
        assert row.greedy_time_seconds > 0


def test_experiment2_respects_k_plus_l_constraint():
    rows = run_experiment2(
        k_values=(8,), l_values=(5,), attributes=10, repeats=1
    )
    assert rows == []  # K + L >= A: no valid configuration


def test_experiment3_tiny_shapes():
    rows = run_experiment3(
        sizes=(400,),
        k_values=(2,),
        distributions=("uniform",),
        include_combinatorial=True,
        combinatorial_k=(2,),
        timeout=30.0,
    )
    assert len(rows) == 2
    for row in rows:
        if finite(row.flat_size_elements) and row.flat_size_elements:
            assert (
                row.fdb_size_singletons <= row.flat_size_elements
            )
    combo = [r for r in rows if r.dataset == "combinatorial"][0]
    # The combinatorial dataset factorises dramatically (paper: ~1e5x).
    if combo.flat_size_elements > 0:
        assert (
            combo.flat_size_elements
            >= 50 * combo.fdb_size_singletons
        )


def test_experiment4_tiny_shapes():
    rows = run_experiment4(
        k_values=(3,), l_values=(1, 2), timeout=30.0
    )
    assert rows
    for row in rows:
        if finite(row.flat_result_elements) and (
            row.flat_result_elements > 0
        ):
            assert (
                row.fdb_result_singletons
                <= row.flat_result_elements
            )


def test_formatters_produce_tables():
    rows1 = run_experiment1(
        relations_values=(2,),
        equalities_values=(1,),
        attributes=6,
        repeats=1,
    )
    table = format_table(exp1.headers(), exp1.as_cells(rows1))
    assert "R" in table.splitlines()[0]
    assert len(table.splitlines()) == 3

    rows3 = run_experiment3(
        sizes=(100,),
        k_values=(2,),
        distributions=("uniform",),
        include_combinatorial=False,
    )
    table = format_table(exp3.headers(), exp3.as_cells(rows3))
    assert "FDB size" in table.splitlines()[0]


def test_format_table_marks_timeouts():
    table = format_table(["x"], [[float("nan")]])
    assert "timeout" in table
