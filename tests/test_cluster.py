"""The cluster robustness tier: ring, ownership, retry, quarantine.

Correctness under fault injection is the whole point: every scenario
that kills, delays, refuses or truncates a worker must still produce
answers byte-identical to local evaluation, with the failure visible
in the executor's counters (a silent degrade is a bug even when the
rows are right).  The chaos itself comes from
:mod:`tests.fault_injection` -- a byte-level TCP proxy, so workers
fail exactly the way real networks fail.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from fault_injection import ChaosProxy

from repro import persist
from repro.net import (
    ClusterMap,
    NetError,
    OwnershipError,
    ProtocolError,
    QueryServer,
    RemoteSession,
    ReplicatedExecutor,
    ServerThread,
)
from repro.obs import trace as obs_trace
from repro.persist import PersistError
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


def _database(seed: int = 71):
    return random_database(
        relations=3, attributes=6, tuples=6, domain=4, seed=seed
    )


def _queries(db, seed: int, count: int = 6):
    return random_spj_queries(
        db, count, seed=seed, max_relations=2, max_equalities=2
    )


class Cluster:
    """N shard workers serving one saved sharded database, each owning
    the shards a :class:`ClusterMap` over the given keys assigns it.

    ``keys`` defaults to the workers' real addresses; tests that put a
    :class:`ChaosProxy` in front of a worker pass the proxy addresses
    instead, so the ring (and therefore the coordinator's routing)
    goes through the chaos.
    """

    def __init__(
        self,
        tmp_path,
        db_seed: int = 71,
        shards: int = 4,
        workers: int = 3,
        replication_factor: int = 2,
        strategy: str = "hash",
        keys=None,
        own: bool = True,
    ):
        self.db = _database(db_seed)
        self.sharded = ShardedDatabase.from_database(
            self.db, shards=shards, strategy=strategy
        )
        self.path = str(tmp_path / f"sharded-{db_seed}")
        persist.save(self.sharded, self.path)
        self.servers = [
            ServerThread(
                QuerySession(persist.load(self.path), encoding="arena"),
                owned_shards=[] if own else None,
            )
            for _ in range(workers)
        ]
        self.addresses = [server.address for server in self.servers]
        self.keys = keys or [f"{h}:{p}" for h, p in self.addresses]
        self.map = ClusterMap(
            self.keys, shards, replication_factor
        )
        if own:
            assignments = self.map.assignments()
            for key, server in zip(self.keys, self.servers):
                if assignments[key]:
                    with RemoteSession(server.address) as client:
                        client.own_shards(assignments[key])

    def expected(self, queries):
        with QuerySession(self.sharded) as plain:
            return [plain.run(q).rows() for q in queries]

    def close(self):
        for server in self.servers:
            try:
                server.stop()
            except Exception:
                pass


# -- ClusterMap --------------------------------------------------------------


def test_ring_is_deterministic_distinct_and_balanced():
    workers = ["w0:1", "w1:1", "w2:1"]
    a = ClusterMap(workers, 16, replication_factor=2)
    b = ClusterMap(list(reversed(workers)), 16, replication_factor=2)
    # Derived from values alone: any process computes the same ring.
    assert a.assignments() == b.assignments()
    for shard in range(16):
        replicas = a.replicas_for(shard)
        assert len(replicas) == 2
        assert len(set(replicas)) == 2
    # Every worker carries a share, and R-way replication doubles the
    # total placement count.
    loads = {w: len(s) for w, s in a.assignments().items()}
    assert all(load >= 1 for load in loads.values())
    assert sum(loads.values()) == 16 * 2


def test_ring_validation_and_clamping():
    assert ClusterMap(["w:1"], 4, replication_factor=3).replication_factor == 1
    with pytest.raises(ValueError, match="duplicate"):
        ClusterMap(["w:1", "w:1"], 4)
    with pytest.raises(ValueError):
        ClusterMap([], 4)
    with pytest.raises(ValueError):
        ClusterMap(["w:1"], 0)
    with pytest.raises(ValueError, match="out of range"):
        ClusterMap(["w:1"], 4).replicas_for(4)


def test_rebalance_moves_only_the_departed_workers_shards():
    workers = [f"w{i}:1" for i in range(4)]
    old = ClusterMap(workers, 32, replication_factor=2)
    before = old.assignments()
    new, delta = old.rebalance(workers[:3])
    after = new.assignments()
    # The departed worker disowns everything it had and owns nothing.
    assert delta["w3:1"] == {"own": (), "disown": before["w3:1"]}
    # Consistent hashing: a shard that never touched w3 does not move.
    untouched = [
        s for s in range(32) if "w3:1" not in old.replicas_for(s)
    ]
    assert untouched, "expected some shards to avoid w3 entirely"
    for shard in untouched:
        assert old.replicas_for(shard) == new.replicas_for(shard)
    # Full coverage survives the departure.
    placed = sorted(s for shards in after.values() for s in shards)
    assert placed == sorted(list(range(32)) * 2)


def test_from_manifest_reads_the_shard_count(tmp_path):
    db = _database(72)
    sharded = ShardedDatabase.from_database(db, shards=5)
    path = str(tmp_path / "saved")
    persist.save(sharded, path)
    cmap = ClusterMap.from_manifest(path, ["a:1", "b:1"], 2)
    assert cmap.shard_count == 5
    with pytest.raises(PersistError, match="manifest"):
        ClusterMap.from_manifest(str(tmp_path), ["a:1"])


# -- manifest / shard-file robustness (satellite 3) --------------------------


def test_corrupt_or_missing_shard_files_name_the_culprit(tmp_path):
    db = _database(73)
    sharded = ShardedDatabase.from_database(db, shards=3)
    path = str(tmp_path / "saved")
    persist.save(sharded, path)
    shard_file = os.path.join(path, "shard-0000.fdbp")
    blob = open(shard_file, "rb").read()
    # A flipped payload byte fails the manifest checksum, by name.
    with open(shard_file, "wb") as handle:
        handle.write(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    with pytest.raises(PersistError, match="shard-0000.fdbp"):
        persist.load(path)
    # A truncated shard file is unreadable, by name.
    with open(shard_file, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(PersistError, match="shard-0000.fdbp"):
        persist.load(path)
    # A missing shard file, by name.
    os.remove(shard_file)
    with pytest.raises(
        PersistError, match="missing shard file 'shard-0000.fdbp'"
    ):
        persist.load(path)


def test_truncated_manifest_names_the_manifest(tmp_path):
    db = _database(74)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "saved")
    persist.save(sharded, path)
    manifest = os.path.join(path, persist.MANIFEST_NAME)
    blob = open(manifest, "rb").read()
    with open(manifest, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(PersistError, match="manifest.fdbp"):
        persist.load(path)
    with pytest.raises(PersistError, match="manifest.fdbp"):
        persist.load_shard_manifest(path)


def test_cluster_answers_from_the_surviving_copy(tmp_path):
    """One worker's saved copy is corrupt, so that worker never comes
    up; the replica holding an intact copy answers everything."""
    db = _database(75)
    sharded = ShardedDatabase.from_database(db, shards=2)
    good = str(tmp_path / "good")
    bad = str(tmp_path / "bad")
    persist.save(sharded, good)
    persist.save(sharded, bad)
    shard_file = os.path.join(bad, "shard-0001.fdbp")
    blob = open(shard_file, "rb").read()
    with open(shard_file, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(PersistError, match="shard-0001.fdbp"):
        persist.load(bad)  # the would-be second worker is dead on boot
    queries = _queries(db, 76)
    with QuerySession(sharded) as plain:
        expected = [plain.run(q).rows() for q in queries]
    server = ServerThread(
        QuerySession(persist.load(good), encoding="arena")
    )
    dead_port = server.address[1] + 1  # nothing listens there
    dead_key = f"127.0.0.1:{dead_port}"
    executor = ReplicatedExecutor(
        [dead_key, server.address],
        replication_factor=2,
        timeout=30,
        quarantine_seconds=30,
    )
    try:
        with QuerySession(sharded, executor=executor) as coordinator:
            results = coordinator.run_batch(queries)
        assert [r.rows() for r in results] == expected
        assert executor.degrade_to_local == 0
        assert executor.remote_tasks > 0
        # Only attempted (and so only counted) when the ring put the
        # dead worker first for some shard; either way every answer
        # came from the surviving copy.
        cmap = executor._map_for(2)
        if any(
            cmap.replicas_for(s)[0] == dead_key for s in range(2)
        ):
            assert executor.connect_failures > 0
    finally:
        server.stop()


# -- ownership over the wire -------------------------------------------------


def test_ownership_contract_over_the_wire(tmp_path):
    db = _database(77)
    sharded = ShardedDatabase.from_database(db, shards=2)
    session = QuerySession(sharded, encoding="arena")
    query = _queries(db, 78, 1)[0]
    with QuerySession(
        ShardedDatabase.from_database(db, shards=2)
    ) as local:
        plan, _ = local.compile(query)
    fanout = sharded.fanout_relation(query.relations)
    with ServerThread(session, owned_shards=[0]) as server:
        with RemoteSession(server.address) as client:
            assert client.server_info["owned_shards"] == [0]
            # Owned shard answers; the other is a typed refusal that
            # leaves the connection usable.
            assert client.submit_shard(query, plan.tree, 0, fanout).result(30)
            with pytest.raises(NetError, match="OwnershipError"):
                client.submit_shard(query, plan.tree, 1, fanout).result(30)
            receipt = client.own_shards([1])
            assert receipt["owned"] == [0, 1]
            assert client.server_info["owned_shards"] == [0, 1]
            assert client.submit_shard(query, plan.tree, 1, fanout).result(30)
            receipt = client.disown_shards([0])
            assert receipt["owned"] == [1]
            with pytest.raises(NetError, match="OwnershipError"):
                client.submit_shard(query, plan.tree, 0, fanout).result(30)
        stats = server.server.stats
        assert stats.own_requests == 1
        assert stats.disown_requests == 1
        assert stats.ownership_rejections == 2


def test_ownership_rejects_unsharded_and_out_of_range():
    with QuerySession(_database(79)) as flat_session:
        with pytest.raises(ProtocolError, match="unsharded"):
            QueryServer(flat_session, owned_shards=[0])
    sharded = ShardedDatabase.from_database(_database(79), shards=2)
    with QuerySession(sharded) as session:
        with pytest.raises(ProtocolError, match="out of range"):
            QueryServer(session, owned_shards=[5])
        with pytest.raises(OwnershipError, match="does not own"):
            raise OwnershipError("this worker does not own shard 1")


def test_executor_routes_around_a_known_non_owner(tmp_path):
    """A worker whose hello says it owns nothing is skipped before a
    round trip is wasted; its server never sees a shard request."""
    cluster = Cluster(
        tmp_path, db_seed=80, shards=4, workers=2, replication_factor=2
    )
    try:
        # Re-contract: worker 0 owns nothing, worker 1 owns all.
        with RemoteSession(cluster.addresses[0]) as client:
            client.disown_shards(range(4))
        with RemoteSession(cluster.addresses[1]) as client:
            client.own_shards(range(4))
        queries = _queries(cluster.db, 81)
        expected = cluster.expected(queries)
        executor = ReplicatedExecutor(
            cluster.keys, replication_factor=2, timeout=30
        )
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            results = coordinator.run_batch(queries)
        assert [r.rows() for r in results] == expected
        assert executor.degrade_to_local == 0
        assert executor.remote_tasks > 0
        for server in cluster.servers:
            assert server.server.stats.ownership_rejections == 0
    finally:
        cluster.close()


# -- ReplicatedExecutor: healthy ring ----------------------------------------


def test_healthy_ring_matches_local_and_registers_counters(tmp_path):
    cluster = Cluster(tmp_path, db_seed=82, shards=4, workers=3)
    try:
        queries = _queries(cluster.db, 83)
        expected = cluster.expected(queries)
        executor = ReplicatedExecutor(
            cluster.keys, replication_factor=2, timeout=30
        )
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            results = coordinator.run_batch(queries)
            snap = coordinator.snapshot()
            text = coordinator.registry.prometheus_text()
        assert [r.rows() for r in results] == expected
        assert executor.remote_tasks > 0
        assert executor.retries == 0
        assert executor.degrade_to_local == 0
        assert executor.quarantined_workers == 0
        # The cluster namespace rides the unified registry: snapshot
        # and Prometheus text both carry the counters.
        assert snap["cluster"]["remote_tasks"] == executor.remote_tasks
        assert snap["cluster"]["healthy_workers"] == 3
        assert "repro_cluster_remote_tasks" in text
        assert "repro_cluster_degrade_to_local 0" in text
        assert "replicated (3 workers" in executor.describe()
        # No coordinator routing miss ever reached a worker.
        for server in cluster.servers:
            assert server.server.stats.ownership_rejections == 0
    finally:
        cluster.close()


# -- fault injection ---------------------------------------------------------


def _proxied_cluster(tmp_path, db_seed, shards=4, workers=3, R=2):
    """A cluster whose every worker sits behind a ChaosProxy, with the
    ring computed over the *proxy* addresses."""
    staging = Cluster(
        tmp_path, db_seed=db_seed, shards=shards, workers=workers,
        replication_factor=R, own=False,
    )
    proxies = [ChaosProxy(address) for address in staging.addresses]
    keys = [f"{h}:{p}" for h, p in (p.address for p in proxies)]
    cluster = Cluster.__new__(Cluster)
    cluster.db = staging.db
    cluster.sharded = staging.sharded
    cluster.path = staging.path
    cluster.servers = staging.servers
    cluster.addresses = staging.addresses
    cluster.keys = keys
    cluster.map = ClusterMap(keys, shards, R)
    assignments = cluster.map.assignments()
    for key, server in zip(keys, cluster.servers):
        with RemoteSession(server.address) as client:
            client.disown_shards(range(shards))
            if assignments[key]:
                client.own_shards(assignments[key])
    return cluster, proxies


def _primary_of_most_shards(cluster):
    """The worker index that is first replica for the most shards."""
    tally = {key: 0 for key in cluster.keys}
    for shard in range(cluster.map.shard_count):
        tally[cluster.map.replicas_for(shard)[0]] += 1
    victim_key = max(tally, key=tally.get)
    assert tally[victim_key] >= 1
    return cluster.keys.index(victim_key)


def test_worker_killed_mid_batch_retries_to_replica(tmp_path):
    """The acceptance scenario: R=2, a worker dies mid-batch (its
    response truncated inside a frame), answers stay byte-identical
    with zero local degrades -- the replica absorbed the work."""
    cluster, proxies = _proxied_cluster(tmp_path, db_seed=84)
    executor = ReplicatedExecutor(
        cluster.keys,
        replication_factor=2,
        timeout=30,
        backoff_base=0.01,
        quarantine_seconds=30,
        seed=7,
    )
    try:
        queries = _queries(cluster.db, 85, 8)
        expected = cluster.expected(queries)
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            healthy = coordinator.run_batch(queries[:4])
            assert [r.rows() for r in healthy] == expected[:4]
            assert executor.retries == 0
            victim = _primary_of_most_shards(cluster)
            # Mid-frame: the next response through the victim's proxy
            # is cut after 40 bytes -- inside its length-prefixed
            # frame -- and every later reconnect dies the same way.
            proxies[victim].kill_after_bytes(40)
            wounded = coordinator.run_batch(queries[4:])
            assert [r.rows() for r in wounded] == expected[4:]
        assert proxies[victim].kills >= 1, "chaos never fired"
        assert executor.retries > 0
        assert executor.degrade_to_local == 0
        assert executor.quarantines >= 1
        assert executor.quarantined_workers == 1
    finally:
        for proxy in proxies:
            proxy.close()
        cluster.close()


def test_slow_worker_times_out_and_the_replica_answers(tmp_path):
    cluster, proxies = _proxied_cluster(tmp_path, db_seed=86)
    executor = ReplicatedExecutor(
        cluster.keys,
        replication_factor=2,
        timeout=30,
        attempt_timeout=0.15,
        backoff_base=0.01,
        quarantine_seconds=30,
        seed=7,
    )
    try:
        queries = _queries(cluster.db, 87, 6)
        expected = cluster.expected(queries)
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            healthy = coordinator.run_batch(queries[:3])
            assert [r.rows() for r in healthy] == expected[:3]
            victim = _primary_of_most_shards(cluster)
            proxies[victim].delay = 1.0  # >> attempt_timeout
            slow = coordinator.run_batch(queries[3:])
            assert [r.rows() for r in slow] == expected[3:]
        assert executor.timeouts > 0
        assert executor.retries > 0
        assert executor.degrade_to_local == 0
    finally:
        for proxy in proxies:
            proxy.close()
        cluster.close()


def test_all_replicas_down_degrades_loudly(tmp_path):
    """R=1 and the sole owner dead: the shard must still answer --
    locally, under an explicit span and counter."""
    cluster = Cluster(
        tmp_path, db_seed=88, shards=4, workers=2, replication_factor=1
    )
    executor = ReplicatedExecutor(
        cluster.keys,
        replication_factor=1,
        timeout=30,
        quarantine_seconds=30,
    )
    try:
        queries = _queries(cluster.db, 89)
        expected = cluster.expected(queries)
        victim = _primary_of_most_shards(cluster)
        cluster.servers[victim].stop()
        trace = obs_trace.Trace()
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            with obs_trace.activate(trace):
                results = coordinator.run_batch(queries)
        assert [r.rows() for r in results] == expected
        assert executor.degrade_to_local > 0
        assert executor.local_fallbacks >= executor.degrade_to_local
        degrade_spans = [
            r for r in trace.records if r["name"] == "degrade-to-local"
        ]
        assert len(degrade_spans) == executor.degrade_to_local
        assert all("shard" in r for r in degrade_spans)
    finally:
        cluster.close()


def test_quarantine_blocks_attempts_then_half_open_probe_recovers(
    tmp_path,
):
    db = _database(90)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "saved")
    persist.save(sharded, path)
    server = ServerThread(
        QuerySession(persist.load(path), encoding="arena")
    )
    proxy = ChaosProxy(server.address)
    executor = ReplicatedExecutor(
        [proxy.address],
        replication_factor=1,
        timeout=30,
        backoff_base=0.01,
        quarantine_seconds=30,
    )
    # One fresh query per phase: a repeated query would be served
    # from the result cache with no fan-out at all, proving nothing.
    queries = _queries(db, 91, 4)
    with QuerySession(sharded) as plain:
        expected = [plain.run(q).rows() for q in queries]
    try:
        with QuerySession(sharded, executor=executor) as coordinator:
            assert [
                r.rows() for r in coordinator.run_batch(queries[:1])
            ] == expected[:1]
            tasks_when_healthy = executor.remote_tasks
            assert tasks_when_healthy > 0
            # Kill the live connections and refuse reconnects: the
            # worker is quarantined after the failed attempts.
            proxy.kill_connections()
            proxy.refuse(True)
            assert [
                r.rows() for r in coordinator.run_batch(queries[1:2])
            ] == expected[1:2]
            assert executor.quarantines >= 1
            assert executor.quarantined_workers == 1
            failures_after_quarantine = executor.connect_failures
            # Inside the window the worker is not even attempted.
            assert [
                r.rows() for r in coordinator.run_batch(queries[2:3])
            ] == expected[2:3]
            assert executor.connect_failures == failures_after_quarantine
            assert executor.probes == 0
            # Heal the network and expire the window: the next attempt
            # is the half-open probe, and it restores the worker.
            proxy.heal()
            executor._quarantined_until = [0.0]
            assert [
                r.rows() for r in coordinator.run_batch(queries[3:])
            ] == expected[3:]
            assert executor.probes >= 1
            assert executor.probe_recoveries >= 1
            assert executor.quarantined_workers == 0
            assert executor.remote_tasks > tasks_when_healthy
    finally:
        proxy.close()
        server.stop()


def test_probe_failure_doubles_the_quarantine_window(tmp_path):
    db = _database(92)
    sharded = ShardedDatabase.from_database(db, shards=2)
    executor = ReplicatedExecutor(
        ["127.0.0.1:1"],  # nothing listens on port 1
        replication_factor=1,
        timeout=5,
        connect_timeout=2,
        quarantine_seconds=10,
        quarantine_cap=60,
    )
    queries = _queries(db, 93, 2)  # distinct, so neither is cached
    with QuerySession(sharded, executor=executor) as coordinator:
        coordinator.run_batch(queries[:1])
        assert executor.quarantines >= 1
        streak_1 = executor._quarantine_streak[0]
        first_window = executor._quarantined_until[0] - time.monotonic()
        executor._quarantined_until = [0.0]  # expire: next try probes
        coordinator.run_batch(queries[1:])
        assert executor.probes >= 1
        assert executor.probe_failures >= 1
        assert executor._quarantine_streak[0] > streak_1
        second_window = (
            executor._quarantined_until[0] - time.monotonic()
        )
        assert second_window > first_window
    assert executor.degrade_to_local > 0


# -- rebalancing -------------------------------------------------------------


def test_set_workers_rebalances_and_pushes_the_delta(tmp_path):
    cluster = Cluster(tmp_path, db_seed=94, shards=4, workers=3)
    executor = ReplicatedExecutor(
        cluster.keys, replication_factor=2, timeout=30
    )
    try:
        queries = _queries(cluster.db, 95)
        expected = cluster.expected(queries)
        with QuerySession(
            cluster.sharded, executor=executor
        ) as coordinator:
            assert [
                r.rows() for r in coordinator.run_batch(queries[:3])
            ] == expected[:3]
            # Worker 2 leaves the membership: the executor recomputes
            # the ring and pushes own/disown to everyone affected.
            receipts = executor.set_workers(
                cluster.keys[:2], shard_count=4
            )
            assert executor.rebalances == 1
            assert len(executor.addresses) == 2
            departed = cluster.keys[2]
            if departed in receipts:
                assert receipts[departed]["disown"]
            # The survivors now carry every shard between them (R=2
            # over 2 workers = both own everything), per their hellos.
            for address in cluster.addresses[:2]:
                with RemoteSession(address) as client:
                    assert client.server_info["owned_shards"] == [
                        0, 1, 2, 3,
                    ]
            with RemoteSession(cluster.addresses[2]) as client:
                assert client.server_info["owned_shards"] == []
            # ... and the shrunken ring still answers correctly,
            # remotely (fresh queries, so the result cache cannot
            # serve them without fan-out), with no routing misses.
            before = executor.remote_tasks
            assert [
                r.rows() for r in coordinator.run_batch(queries[3:])
            ] == expected[3:]
            assert executor.remote_tasks > before
            assert executor.degrade_to_local == 0
        for server in cluster.servers:
            assert server.server.stats.ownership_rejections == 0
    finally:
        cluster.close()


# -- version mismatch (executor-level, batch-scoped) -------------------------


def test_version_mismatched_worker_is_skipped_then_reprobed(tmp_path):
    db = _database(96)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "saved")
    persist.save(sharded, path)
    ahead = persist.load(path)
    ahead.extend_rows("R0", [(99, 99)])  # the worker runs one ahead
    server = ServerThread(QuerySession(ahead, encoding="arena"))
    executor = ReplicatedExecutor(
        [server.address], replication_factor=1, timeout=30
    )
    # Distinct queries per batch: the delta-maintained result cache
    # would serve a repeat with no fan-out, hiding the re-probe.
    queries = _queries(db, 97, 4)
    try:
        with QuerySession(sharded, executor=executor) as coordinator:
            coordinator.run_batch(queries[:2])
            # Mismatch: skipped, degraded, but NOT quarantined.
            assert executor.version_mismatches >= 1
            assert executor.remote_tasks == 0
            assert executor.degrade_to_local > 0
            assert executor.quarantines == 0
            # The coordinator catches up to the worker's version; the
            # next batch re-probes the hello and goes remote again.
            sharded.extend_rows("R0", [(99, 99)])
            degrades_before = executor.degrade_to_local
            results = coordinator.run_batch(queries[2:])
            assert executor.remote_tasks > 0
            assert executor.degrade_to_local == degrades_before
            with QuerySession(ahead) as plain:
                expected = [plain.run(q).rows() for q in queries[2:]]
            assert [r.rows() for r in results] == expected
    finally:
        server.stop()


def test_executor_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ReplicatedExecutor([])
    executor = ReplicatedExecutor(["w:1", "w:2"], replication_factor=9)
    assert executor.replication_factor == 9  # clamped per-map, lazily
    cmap = executor._map_for(4)
    assert cmap.replication_factor == 2
    with pytest.raises(ValueError):
        executor.set_workers([])
