"""Unit tests for the merge and absorb selection operators (Section 3.3)."""

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.ops import (
    absorb,
    absorb_tree,
    merge,
    merge_tree,
    product,
    swap,
    OperatorError,
)
from repro.relational.relation import Relation
from repro.workloads import grocery_database, tree_t1, tree_t4
from tests.conftest import assignments, filtered


def sibling_fr():
    """Two independent unary relations as sibling roots."""
    r = Relation.from_rows("R", ("a",), [(1,), (2,), (3,)])
    s = Relation.from_rows("S", ("b",), [(2,), (3,), (4,)])
    tree = FTree.from_nested(
        [("a", []), ("b", [])], edges=[{"a"}, {"b"}]
    )
    return FactorisedRelation(tree, factorise([r, s], tree))


def chain_fr():
    """X(a,b) join Y(b2,c) join Z(c2,d) over the chain tree."""
    x = Relation.from_rows(
        "X", ("a", "b"), [(i, i % 3) for i in range(6)]
    )
    y = Relation.from_rows(
        "Y", ("b2", "c"), [(i % 3, i % 2) for i in range(6)]
    )
    z = Relation.from_rows(
        "Z", ("c2", "d"), [(i % 2, i) for i in range(4)]
    )
    tree = FTree.from_nested(
        [(("b", "b2"), [("a", []), (("c", "c2"), [("d", [])])])],
        edges=[{"a", "b"}, {"b2", "c"}, {"c2", "d"}],
    )
    return FactorisedRelation(tree, factorise([x, y, z], tree))


def test_merge_of_top_level_roots():
    fr = sibling_fr()
    out = merge(fr, "a", "b").validate()
    assert assignments(out) == filtered(fr, [("a", "b")])
    assert out.tree.node_of("a").label == frozenset({"a", "b"})


def test_merge_empty_intersection_empties_result():
    r = Relation.from_rows("R", ("a",), [(1,)])
    s = Relation.from_rows("S", ("b",), [(2,)])
    tree = FTree.from_nested(
        [("a", []), ("b", [])], edges=[{"a"}, {"b"}]
    )
    fr = FactorisedRelation(tree, factorise([r, s], tree))
    out = merge(fr, "a", "b")
    assert out.is_empty()


def test_merge_requires_siblings():
    fr = chain_fr()
    with pytest.raises(OperatorError):
        merge(fr, "b", "d")  # ancestor/descendant, not siblings
    with pytest.raises(OperatorError):
        merge(fr, "b", "b2")  # same node already


def test_merge_example9_t5():
    """Example 9: merging the item roots of T1 and T4 yields T5."""
    db = grocery_database()
    t1 = tree_t1()
    fr1 = FactorisedRelation(
        t1, factorise([db["Orders"], db["Store"], db["Disp"]], t1)
    )
    t4 = tree_t4()
    fr2 = FactorisedRelation(
        t4, factorise([db["Produce"], db["Serve"]], t4)
    )
    prod = product(fr1, fr2)
    out = merge(prod, "o_item", "p_item").validate()
    expected = filtered(prod, [("o_item", "p_item")])
    assert assignments(out) == expected
    # Roots merged: one root labelled by all three item attributes.
    assert out.tree.node_of("o_item").label == frozenset(
        {"o_item", "s_item", "p_item"}
    )


def test_merge_preserves_normalisation_and_paths():
    fr = sibling_fr()
    out = merge(fr, "a", "b")
    assert out.tree.satisfies_path_constraint()
    assert out.tree.is_normalised()


def test_absorb_direct_child():
    fr = chain_fr()
    out = absorb(fr, "b", "c").validate()
    assert assignments(out) == filtered(fr, [("b", "c")])
    merged = out.tree.node_of("b")
    assert {"b", "b2", "c", "c2"} <= set(merged.label)


def test_absorb_grandchild_with_normalisation():
    """Example 10's pattern: absorbing frees the middle subtree."""
    fr = chain_fr()
    out = absorb(fr, "b", "d").validate()
    assert assignments(out) == filtered(fr, [("b", "d")])
    assert out.tree.is_normalised()


def test_absorb_requires_ancestor():
    fr = chain_fr()
    with pytest.raises(OperatorError):
        absorb(fr, "d", "b")  # wrong direction
    with pytest.raises(OperatorError):
        absorb(fr, "a", "d")  # a is not an ancestor of d
    with pytest.raises(OperatorError):
        absorb(fr, "b", "b2")  # same node


def test_absorb_can_empty_the_result():
    x = Relation.from_rows("X", ("a", "b"), [(1, 5)])
    y = Relation.from_rows("Y", ("b2", "c"), [(5, 7)])
    tree = FTree.from_nested(
        [(("b", "b2"), [("a", []), ("c", [])])],
        edges=[{"a", "b"}, {"b2", "c"}],
    )
    fr = FactorisedRelation(tree, factorise([x, y], tree))
    out = absorb(fr, "b", "c")  # b=5 vs c=7: no match
    assert out.is_empty()


def test_example10_absorb_releases_independent_subtree():
    """Example 10: after alpha_{A,C}, D becomes independent of B."""
    edges = [{"A", "B"}, {"B2", "C"}, {"C2", "D"}]
    tree = FTree.from_nested(
        [
            (
                "A",
                [(("B", "B2"), [(("C", "C2"), [("D", [])])])],
            )
        ],
        edges=edges,
    )
    out = absorb_tree(tree, "A", "C")
    root = out.roots[0]
    assert root.label == frozenset({"A", "C", "C2"})
    child_labels = {frozenset(c.label) for c in root.children}
    assert child_labels == {
        frozenset({"B", "B2"}),
        frozenset({"D"}),
    }


def test_merge_then_same_relation_as_absorb_route():
    """Enforcing b=c via merge (after swap) == via absorb."""
    fr = chain_fr()
    via_absorb = absorb(fr, "b", "c")
    # Alternative: swap c above b's child position to make it a sibling
    # is not possible here (c is b's child), so compare against the
    # reference semantics instead.
    assert assignments(via_absorb) == filtered(fr, [("b", "c")])


def test_absorb_on_empty_relation():
    fr = chain_fr()
    empty = FactorisedRelation(fr.tree, None)
    out = absorb(empty, "b", "c")
    assert out.is_empty()
    assert out.tree.key() == absorb_tree(fr.tree, "b", "c").key()
