"""Unit tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.relational.csvio import dump_database
from repro.workloads import grocery_database


@pytest.fixture
def csv_dir(tmp_path):
    paths = dump_database(grocery_database(), str(tmp_path))
    return {os.path.basename(p).split(".")[0]: p for p in paths}


def test_query_command(csv_dir, capsys):
    code = main(
        [
            "query",
            "SELECT * FROM Orders, Store WHERE o_item = s_item",
            "--csv",
            csv_dir["Orders"],
            csv_dir["Store"],
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "f-tree:" in out
    assert "singletons" in out
    assert "s(T) =" in out


def test_query_flat_output_with_limit(csv_dir, capsys):
    code = main(
        [
            "query",
            "SELECT * FROM Orders",
            "--csv",
            csv_dir["Orders"],
            "--flat",
            "--limit",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "..." in out  # truncated at limit 2 of 5 rows


def test_query_greedy_planner(csv_dir, capsys):
    code = main(
        [
            "query",
            "SELECT oid FROM Orders",
            "--csv",
            csv_dir["Orders"],
            "--planner",
            "greedy",
        ]
    )
    assert code == 0


def test_compile_and_stats_round_trip(csv_dir, tmp_path, capsys):
    out_path = str(tmp_path / "compiled.json")
    code = main(
        [
            "compile",
            "SELECT * FROM Produce, Serve "
            "WHERE p_supplier = v_supplier",
            "--csv",
            csv_dir["Produce"],
            csv_dir["Serve"],
            "-o",
            out_path,
        ]
    )
    assert code == 0
    assert os.path.exists(out_path)
    with open(out_path) as handle:
        doc = json.load(handle)
    assert doc["format"] == "fdb-factorised"

    code = main(["stats", out_path])
    assert code == 0
    out = capsys.readouterr().out
    assert "tuples" in out


def test_experiment_command(capsys):
    code = main(
        [
            "experiment",
            "1",
            "--relations",
            "2",
            "--equalities",
            "1",
            "--repeats",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "opt time" in out


def test_experiment_3_command(capsys):
    code = main(
        [
            "experiment",
            "3",
            "--sizes",
            "200",
            "--equalities",
            "2",
            "--timeout",
            "10",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FDB size" in out


def test_batch_command(csv_dir, capsys):
    code = main(
        [
            "batch",
            "--csv",
            csv_dir["Orders"],
            csv_dir["Store"],
            "--sql",
            "SELECT * FROM Orders, Store WHERE o_item = s_item",
            "SELECT * FROM Store, Orders WHERE s_item = o_item",
            "--repeat",
            "2",
            "--verbose",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "4 queries in" in out
    assert "1 compiled" in out
    assert "3 batch-deduplicated" in out
    assert "dedup" in out  # verbose per-query lines


def test_batch_command_from_file(csv_dir, tmp_path, capsys):
    queries = tmp_path / "workload.sql"
    queries.write_text(
        "# repeated traffic\n"
        "SELECT * FROM Orders, Store WHERE o_item = s_item;\n"
        "\n"
        "SELECT oid FROM Orders;\n"
    )
    code = main(
        [
            "batch",
            str(queries),
            "--csv",
            csv_dir["Orders"],
            csv_dir["Store"],
            "--engine",
            "flat",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 queries in" in out


def test_batch_sharded_parallel_matches_serial(csv_dir, capsys):
    args = [
        "batch",
        "--csv",
        csv_dir["Orders"],
        csv_dir["Store"],
        "--sql",
        "SELECT * FROM Orders, Store WHERE o_item = s_item",
        "SELECT oid FROM Orders",
        "--verbose",
    ]
    assert main(args) == 0
    serial_out = capsys.readouterr().out

    assert (
        main(
            args
            + ["--shards", "2", "--workers", "2", "--cache-size", "4"]
        )
        == 0
    )
    sharded_out = capsys.readouterr().out
    assert "2 shards (hash)" in sharded_out
    assert "parallel" in sharded_out

    def tuple_counts(text):
        return [
            line.split("tuples")[0].split()[-1]
            for line in text.splitlines()
            if "tuples" in line
        ]

    assert tuple_counts(sharded_out) == tuple_counts(serial_out)


def test_batch_cache_size_reports_evictions(csv_dir, capsys):
    code = main(
        [
            "batch",
            "--csv",
            csv_dir["Orders"],
            csv_dir["Store"],
            "--sql",
            "SELECT * FROM Orders",
            "SELECT * FROM Store",
            "SELECT oid FROM Orders",
            "--cache-size",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 evicted" in out


def test_save_load_round_trip_commands(csv_dir, tmp_path, capsys):
    db_path = str(tmp_path / "db.fdbp")
    code = main(
        [
            "save",
            "--csv",
            csv_dir["Orders"],
            csv_dir["Store"],
            "-o",
            db_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "saved 2 relations" in out
    assert "FDBP format" in out

    code = main(
        [
            "load",
            db_path,
            "--sql",
            "SELECT * FROM Orders, Store WHERE o_item = s_item",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kind: database" in out
    assert "Orders(oid, o_item)" in out
    assert "9 tuples" in out


def test_save_sharded_and_batch_from_saved(csv_dir, tmp_path, capsys):
    db_path = str(tmp_path / "sharded.fdbp")
    assert (
        main(
            [
                "save",
                "--csv",
                csv_dir["Orders"],
                csv_dir["Store"],
                "-o",
                db_path,
                "--shards",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "2 shards (hash)" in out

    code = main(
        [
            "batch",
            "--db",
            db_path,
            "--sql",
            "SELECT * FROM Orders, Store WHERE o_item = s_item",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1 queries in" in out
    assert "2 shards (hash)" in out  # saved layout survives the trip


def test_batch_plan_store_reports_cross_run_hits(
    csv_dir, tmp_path, capsys
):
    store_dir = str(tmp_path / "plans")
    args = [
        "batch",
        "--csv",
        csv_dir["Orders"],
        csv_dir["Store"],
        "--sql",
        "SELECT * FROM Orders, Store WHERE o_item = s_item",
        "--plan-store",
        store_dir,
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "plan store: 0 hits, 1 misses, 1 written" in first

    # Second invocation builds everything afresh (new session, new
    # store handle) and must serve the plan from disk.
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "plan store: 1 hits, 0 misses" in second
    assert "0 compiled, 1 cache hits" in second


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "garbage.fdbp"
    bad.write_bytes(b"this is not an FDBP file")
    with pytest.raises(SystemExit):
        main(["load", str(bad)])


def test_load_rejects_missing_path(tmp_path):
    with pytest.raises(SystemExit):
        main(["load", str(tmp_path / "missing.fdbp")])


def test_batch_rejects_conflicting_shard_layout(
    csv_dir, tmp_path, capsys
):
    db_path = str(tmp_path / "sharded.fdbp")
    assert (
        main(
            [
                "save",
                "--csv",
                csv_dir["Orders"],
                "-o",
                db_path,
                "--shards",
                "2",
            ]
        )
        == 0
    )
    capsys.readouterr()
    with pytest.raises(SystemExit, match="conflicts with the saved"):
        main(
            [
                "batch",
                "--db",
                db_path,
                "--sql",
                "SELECT oid FROM Orders",
                "--shards",
                "4",
            ]
        )


def test_batch_without_queries_fails(csv_dir):
    with pytest.raises(SystemExit):
        main(["batch", "--csv", csv_dir["Orders"]])


@pytest.mark.parametrize(
    "flag,value",
    [("--shards", "0"), ("--workers", "0"), ("--cache-size", "0")],
)
def test_batch_rejects_invalid_layout_values(csv_dir, flag, value):
    with pytest.raises(SystemExit):
        main(
            [
                "batch",
                "--csv",
                csv_dir["Orders"],
                "--sql",
                "SELECT oid FROM Orders",
                flag,
                value,
            ]
        )


def test_python_dash_m_repro_smoke():
    """``python -m repro`` must resolve to the CLI (src/repro/__main__)."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert "factorised databases" in proc.stdout
    assert "batch" in proc.stdout


def test_missing_csv_fails():
    with pytest.raises(SystemExit):
        main(["query", "SELECT * FROM R"])


def test_shell_command(csv_dir, capsys, monkeypatch):
    lines = iter(
        ["SELECT oid FROM Orders", "not sql", "\\q"]
    )
    monkeypatch.setattr(
        "builtins.input", lambda prompt="": next(lines)
    )
    code = main(["shell", "--csv", csv_dir["Orders"]])
    assert code == 0
    out = capsys.readouterr().out
    assert "loaded: Orders" in out
    assert "error:" in out  # the bad query was reported, loop kept
