"""Unit tests for CSV I/O and evaluation budgets."""

import os
import time

import pytest

from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.csvio import (
    dump_database,
    dump_relation,
    load_database,
    load_relation,
    load_relation_text,
)
from repro.relational.database import Database


def test_load_relation_text_coerces_integers():
    r = load_relation_text("R", "a,b\n1,x\n2,3\n")
    assert list(r) == [(1, "x"), (2, 3)]
    assert r.attributes == ("a", "b")


def test_load_relation_text_empty_rejected():
    with pytest.raises(ValueError):
        load_relation_text("R", "")


def test_round_trip_through_files(tmp_path):
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 2), (3, 4)])
    db.add_rows("S", ("c",), [("x",), ("y",)])
    paths = dump_database(db, str(tmp_path))
    assert sorted(os.path.basename(p) for p in paths) == [
        "R.csv",
        "S.csv",
    ]
    loaded = load_database(paths)
    assert list(loaded["R"]) == [(1, 2), (3, 4)]
    assert list(loaded["S"]) == [("x",), ("y",)]


def test_relation_name_defaults_to_stem(tmp_path):
    db = Database()
    rel = db.add_rows("Orders", ("a",), [(1,)])
    path = str(tmp_path / "Orders.csv")
    dump_relation(rel, path)
    assert load_relation(path).name == "Orders"


def test_custom_delimiter(tmp_path):
    r = load_relation_text("R", "a|b\n1|2\n", delimiter="|")
    assert list(r) == [(1, 2)]


def test_budget_row_cap():
    budget = Budget(max_rows=10)
    budget.check(5)
    with pytest.raises(BudgetExceeded):
        budget.check(11)


def test_budget_timeout_check_now():
    budget = Budget(timeout_seconds=0.01)
    time.sleep(0.02)
    with pytest.raises(BudgetExceeded):
        budget.check_now()


def test_budget_restart_resets_clock():
    budget = Budget(timeout_seconds=0.05)
    time.sleep(0.06)
    budget.restart()
    budget.check_now()  # must not raise


def test_unlimited_budget_never_trips():
    budget = Budget()
    for i in range(10000):
        budget.check(i)
    budget.check_now()
