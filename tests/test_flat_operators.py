"""Unit tests for the flat physical operators (RDB substrate)."""

import pytest

from repro.query.query import ConstantCondition, EqualityCondition
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.operators import (
    hash_join,
    product,
    project,
    select_constant,
    select_equality,
    sort_merge_join,
    union,
)
from repro.relational.relation import Relation


@pytest.fixture
def r():
    return Relation.from_rows(
        "R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)]
    )


@pytest.fixture
def s():
    return Relation.from_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])


def test_select_constant(r):
    out = select_constant(r, ConstantCondition("a", "=", 1))
    assert list(out) == [(1, 1), (1, 2)]
    out = select_constant(r, ConstantCondition("b", ">", 1))
    assert list(out) == [(1, 2), (2, 2)]


def test_select_equality(r):
    out = select_equality(r, EqualityCondition("a", "b"))
    assert list(out) == [(1, 1), (2, 2)]


def test_project_dedupes(r):
    out = project(r, ["b"])
    assert out.attributes == ("b",)
    assert list(out) == [(1,), (2,)]


def test_project_reorders(r):
    out = project(r, ["b", "a"])
    assert out.attributes == ("b", "a")
    assert (2, 1) in out


def test_product(r, s):
    out = product(r, s)
    assert out.cardinality == len(r) * len(s)
    assert out.attributes == ("a", "b", "c", "d")


def test_sort_merge_join_many_to_many(r, s):
    out = sort_merge_join(r, s, [("b", "c")])
    # b=1 matches c=1 (1 tuple); b=2 matches c=2 (2 tuples each side)
    expected = {
        (1, 1, 1, 7),
        (3, 1, 1, 7),
        (1, 2, 2, 8),
        (1, 2, 2, 9),
        (2, 2, 2, 8),
        (2, 2, 2, 9),
    }
    assert set(out.rows) == expected


def test_hash_join_agrees_with_sort_merge(r, s):
    a = sort_merge_join(r, s, [("b", "c")])
    b = hash_join(r, s, [("b", "c")])
    assert a == b


def test_joins_on_multiple_pairs(r):
    t = Relation.from_rows("T", ("e", "f"), [(1, 1), (1, 2), (2, 9)])
    a = sort_merge_join(r, t, [("a", "e"), ("b", "f")])
    b = hash_join(r, t, [("a", "e"), ("b", "f")])
    assert set(a.rows) == {(1, 1, 1, 1), (1, 2, 1, 2)}
    assert a == b


def test_join_with_no_pairs_is_product(r, s):
    assert sort_merge_join(r, s, []) == product(r, s)
    assert hash_join(r, s, []) == product(r, s)


def test_join_empty_input(s):
    empty = Relation.from_rows("E", ("a", "b"), [])
    assert sort_merge_join(empty, s, [("b", "c")]).cardinality == 0
    assert hash_join(empty, s, [("b", "c")]).cardinality == 0


def test_union_aligns_attribute_order():
    r1 = Relation.from_rows("R", ("a", "b"), [(1, 2)])
    r2 = Relation.from_rows("S", ("b", "a"), [(3, 4), (2, 1)])
    out = union(r1, r2)
    assert set(out.rows) == {(1, 2), (4, 3)}


def test_budget_row_cap_trips_in_joins(r, s):
    budget = Budget(max_rows=2)
    with pytest.raises(BudgetExceeded):
        sort_merge_join(r, s, [("b", "c")], budget=budget)
    budget = Budget(max_rows=2)
    with pytest.raises(BudgetExceeded):
        hash_join(r, s, [("b", "c")], budget=budget)
    budget = Budget(max_rows=2)
    with pytest.raises(BudgetExceeded):
        product(r, s, budget=budget)
