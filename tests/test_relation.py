"""Unit tests for schemas and in-memory relations."""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


def test_schema_rejects_duplicates_and_empty_name():
    with pytest.raises(SchemaError):
        RelationSchema("R", ("a", "a"))
    with pytest.raises(SchemaError):
        RelationSchema("", ("a",))


def test_schema_index_and_positions():
    s = RelationSchema("R", ("a", "b", "c"))
    assert s.index_of("b") == 1
    assert s.positions() == {"a": 0, "b": 1, "c": 2}
    with pytest.raises(SchemaError):
        s.index_of("zz")


def test_schema_project_and_rename():
    s = RelationSchema("R", ("a", "b"))
    assert s.project(["b"]).attributes == ("b",)
    renamed = s.renamed("R2", {"a": "x"})
    assert renamed.name == "R2" and renamed.attributes == ("x", "b")


def test_schema_concat_disjointness():
    s = RelationSchema("R", ("a",))
    t = RelationSchema("S", ("b",))
    assert s.concat(t, "RS").attributes == ("a", "b")
    with pytest.raises(SchemaError):
        s.concat(RelationSchema("S2", ("a",)), "bad")


def test_relation_sorts_and_dedupes():
    r = Relation.from_rows("R", ("a", "b"), [(2, 1), (1, 2), (2, 1)])
    assert list(r) == [(1, 2), (2, 1)]
    assert r.cardinality == 2


def test_relation_arity_mismatch_rejected():
    with pytest.raises(SchemaError):
        Relation.from_rows("R", ("a", "b"), [(1,)])


def test_membership_uses_binary_search():
    r = Relation.from_rows("R", ("a",), [(i,) for i in range(100)])
    assert (50,) in r
    assert (200,) not in r


def test_distinct_count_cached_and_correct():
    r = Relation.from_rows(
        "R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (2, 3)]
    )
    assert r.distinct_count("a") == 2
    assert r.distinct_count("b") == 3
    assert r.values("a") == [1, 2]


def test_equality_ignores_attribute_order():
    r = Relation.from_rows("R", ("a", "b"), [(1, 2), (3, 4)])
    s = Relation.from_rows("S", ("b", "a"), [(2, 1), (4, 3)])
    assert r == s


def test_equality_detects_different_content():
    r = Relation.from_rows("R", ("a",), [(1,)])
    s = Relation.from_rows("S", ("a",), [(2,)])
    assert r != s


def test_equality_different_schema_sets():
    r = Relation.from_rows("R", ("a",), [(1,)])
    s = Relation.from_rows("S", ("b",), [(1,)])
    assert r != s


def test_renamed_shares_rows():
    r = Relation.from_rows("R", ("a", "b"), [(1, 2)])
    r2 = r.renamed("R2", {"a": "x"})
    assert r2.attributes == ("x", "b")
    assert list(r2) == [(1, 2)]


def test_sorted_by_secondary_attribute():
    r = Relation.from_rows("R", ("a", "b"), [(1, 9), (2, 1), (3, 5)])
    assert r.sorted_by(["b"]) == [(2, 1), (3, 5), (1, 9)]


def test_pretty_renders_header_and_truncation():
    r = Relation.from_rows("R", ("a",), [(i,) for i in range(20)])
    text = r.pretty(limit=3)
    assert text.splitlines()[0] == "a"
    assert "(20 rows)" in text
