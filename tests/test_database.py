"""Unit tests for the database catalogue."""

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import SchemaError


def test_add_and_lookup():
    db = Database()
    db.add_rows("R", ("a",), [(1,), (2,)])
    assert "R" in db and db["R"].cardinality == 2
    assert db.names == ["R"]


def test_duplicate_relation_name_rejected():
    db = Database()
    db.add_rows("R", ("a",), [(1,)])
    with pytest.raises(SchemaError):
        db.add_rows("R", ("b",), [(1,)])


def test_global_attribute_uniqueness_enforced():
    db = Database()
    db.add_rows("R", ("a",), [(1,)])
    with pytest.raises(SchemaError):
        db.add_rows("S", ("a",), [(1,)])


def test_relation_of_attribute():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 2)])
    db.add_rows("S", ("c",), [(3,)])
    assert db.relation_of("c").name == "S"
    with pytest.raises(SchemaError):
        db.relation_of("zz")


def test_total_size_and_len():
    db = Database()
    db.add_rows("R", ("a",), [(1,), (2,)])
    db.add_rows("S", ("b",), [(3,)])
    assert db.total_size == 3
    assert len(db) == 2


def test_schema_snapshot():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 2)])
    assert db.schema() == {"R": ("a", "b")}


def test_add_renamed_for_self_joins():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 2), (2, 3)])
    db.add_renamed("R", "R2", {"a": "a2", "b": "b2"})
    assert db["R2"].attributes == ("a2", "b2")
    assert list(db["R2"]) == list(db["R"])


def test_statistics():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    assert db.cardinality("R") == 3
    assert db.distinct("a") == 2
    stats = db.stats()
    assert stats["R"]["__cardinality__"] == 3
    assert stats["R"]["b"] == 2


def test_construct_from_iterable_of_relations():
    r = Relation.from_rows("R", ("a",), [(1,)])
    s = Relation.from_rows("S", ("b",), [(2,)])
    db = Database([r, s])
    assert set(db.names) == {"R", "S"}
    assert db.attributes() == ["a", "b"]
