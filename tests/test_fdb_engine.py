"""Integration tests for the FDB engine facade."""

import pytest

from repro import FDB, Database, Query, RelationalEngine, SQLiteEngine
from repro.query.parser import parse_query
from repro.workloads import (
    grocery_database,
    query_q1,
    query_q2,
    random_database,
    random_followup_equalities,
    random_query,
)
from tests.conftest import assignments, filtered, flat_assignments


@pytest.fixture
def fdb(grocery):
    return FDB(grocery, check_invariants=True)


def test_q1_matches_flat(grocery, fdb, q1):
    fr = fdb.evaluate(q1)
    flat = RelationalEngine(grocery).evaluate(q1)
    assert assignments(fr) == flat_assignments(flat)


def test_q2_matches_flat_and_is_linear(grocery, fdb, q2):
    fr = fdb.evaluate(q2)
    flat = RelationalEngine(grocery).evaluate(q2)
    assert assignments(fr) == flat_assignments(flat)
    # s(Q2) = 1: the factorisation is linear in the input.
    assert fr.size() <= grocery["Produce"].cardinality * 2 + (
        grocery["Serve"].cardinality * 2
    )


def test_constants_applied(grocery, fdb):
    q = Query.make(
        ["Orders", "Store"],
        equalities=[("o_item", "s_item")],
        constants=[("s_location", "=", "Istanbul")],
    )
    fr = fdb.evaluate(q)
    assert all(d["s_location"] == "Istanbul" for d in fr)
    node = fr.tree.node_of("s_location")
    assert node.constant


def test_projection_applied(grocery, fdb):
    q = Query.make(
        ["Orders", "Store"],
        equalities=[("o_item", "s_item")],
        projection=["oid", "s_location"],
    )
    fr = fdb.evaluate(q)
    assert set(fr.attributes) == {"oid", "s_location"}
    flat = RelationalEngine(grocery).evaluate(q)
    assert assignments(fr) == flat_assignments(flat)


def test_parse_query_end_to_end(grocery, fdb):
    q = parse_query(
        "SELECT * FROM Orders, Store "
        "WHERE o_item = s_item AND oid >= 2"
    )
    fr = fdb.evaluate(q)
    flat = RelationalEngine(grocery).evaluate(q)
    assert assignments(fr) == flat_assignments(flat)


def test_example2_join_of_factorised_results(grocery, fdb, q1, q2):
    """Example 2: Q1 JOIN_{location,item} Q2 on factorised inputs."""
    from repro.ops import product

    fr1 = fdb.evaluate(q1)
    fr2 = fdb.evaluate(q2)
    joined = product(fr1, fr2)
    followup = Query.make(
        [],
        equalities=[
            ("o_item", "p_item"),
            ("s_location", "v_location"),
        ],
    )
    result, plan = fdb.evaluate_on(joined, followup)
    assert assignments(result) == filtered(
        joined,
        [("o_item", "p_item"), ("s_location", "v_location")],
    )
    assert len(plan) >= 1


def test_evaluate_on_with_constants_and_projection(grocery, fdb, q1):
    fr = fdb.evaluate(q1)
    followup = Query.make(
        [],
        constants=[("oid", "=", 1)],
        projection=["o_item", "s_item", "dispatcher"],
    )
    result, _ = fdb.evaluate_on(fr, followup)
    keep = {"o_item", "s_item", "dispatcher"}
    expected = {
        tuple(sorted((k, v) for k, v in d.items() if k in keep))
        for d in fr
        if d["oid"] == 1
    }
    assert assignments(result) == expected


def test_evaluate_on_unknown_attribute_rejected(grocery, fdb, q1):
    fr = fdb.evaluate(q1)
    bad = Query.make([], constants=[("nope", "=", 1)])
    with pytest.raises(Exception):
        fdb.evaluate_on(fr, bad)


def test_greedy_engine_agrees_with_exhaustive(grocery, q1):
    full_engine = FDB(grocery, plan_search="exhaustive")
    greedy_engine = FDB(grocery, plan_search="greedy")
    fr_full = full_engine.evaluate(q1)
    fr_greedy = greedy_engine.evaluate(q1)
    assert assignments(fr_full) == assignments(fr_greedy)
    followup = Query.make(
        [], equalities=[("o_item", "dispatcher")]
    )
    # (a never-matching join, but legal: both engines must agree)
    out_full, _ = full_engine.evaluate_on(fr_full, followup)
    out_greedy, _ = greedy_engine.evaluate_on(fr_greedy, followup)
    assert assignments(out_full) == assignments(out_greedy)


def test_invalid_plan_search_rejected(grocery):
    with pytest.raises(ValueError):
        FDB(grocery, plan_search="quantum")


@pytest.mark.parametrize("seed", range(5))
def test_three_engines_agree_on_random_workloads(seed):
    db = random_database(3, 8, 15, domain=6, seed=seed)
    q = random_query(db, 2, seed=seed + 50)
    fr = FDB(db, check_invariants=True).evaluate(q)
    flat = RelationalEngine(db).evaluate(q)
    assert assignments(fr) == flat_assignments(flat)
    with SQLiteEngine(db) as sqlite:
        assert sqlite.count(q) == fr.count()


@pytest.mark.parametrize("seed", [0, 1])
def test_factorised_pipeline_random(seed):
    """Experiment 4 shape: query results of queries, twice removed."""
    db = random_database(4, 10, 12, domain=4, seed=seed)
    q = random_query(db, 3, seed=seed)
    fdb = FDB(db, check_invariants=True)
    fr = fdb.evaluate(q)
    if fr.is_empty():
        pytest.skip("empty first-stage result")
    eqs = random_followup_equalities(fr.tree, 2, seed=seed)
    followup = Query.make([], equalities=eqs)
    result, plan = fdb.evaluate_on(fr, followup)
    assert assignments(result) == filtered(fr, eqs)
    # The plan's bottleneck covers both endpoints.
    from repro.costs.cost_model import s_tree

    assert plan.cost.bottleneck >= s_tree(plan.input_tree)
    assert plan.cost.bottleneck >= s_tree(plan.output_tree)
