"""Cross-engine differential harness.

Policy: every engine this repository grows must agree with the others
on the full SPJ space, not just the hand-picked paper workloads.  The
harness draws seeded random SPJ queries (random relation subsets,
non-redundant equalities, constant comparisons over actual attribute
values, random projections) via :mod:`repro.workloads.generator` and
asserts that the factorised engine, the flat relational engine and the
SQLite comparator return exactly the same sorted result tuples.

All seeds are fixed, so a failure is reproducible by query index.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.engine import FDB
from repro.exec import ParallelExecutor, SerialExecutor
from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.sqlite_engine import SQLiteEngine
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries

#: (database seed, query seed, #queries) -- 3 x 20 = 60 >= 50 queries.
BATCHES = [(101, 201, 20), (102, 202, 20), (103, 203, 20)]


def _database(seed: int) -> Database:
    # Small enough that the worst Cartesian product stays cheap, big
    # enough that joins/selections produce non-trivial results.
    return random_database(
        relations=4, attributes=8, tuples=6, domain=5, seed=seed
    )


def _queries(db: Database, seed: int, count: int) -> List[Query]:
    return random_spj_queries(
        db, count, seed=seed, max_relations=3, max_equalities=3
    )


def fdb_rows(
    db: Database, query: Query
) -> Tuple[Tuple[str, ...], List[tuple]]:
    """FDB result as (sorted attribute order, sorted distinct rows)."""
    fr = FDB(db, check_invariants=True).evaluate(query)
    order = fr.attributes
    return order, sorted(set(fr.rows(order)))


def flat_rows(db: Database, query: Query, order) -> List[tuple]:
    relation = RelationalEngine(db).evaluate(query)
    perm = [relation.schema.index_of(a) for a in order]
    return sorted(
        {tuple(row[i] for i in perm) for row in relation.rows}
    )


def sqlite_rows(
    engine: SQLiteEngine, db: Database, query: Query, order
) -> List[tuple]:
    rows = engine.evaluate(query)
    if query.projection is not None:
        columns = list(query.projection)
    else:
        columns = [
            attr
            for name in query.relations
            for attr in db[name].attributes
        ]
    perm = [columns.index(a) for a in order]
    return sorted({tuple(row[i] for i in perm) for row in rows})


@pytest.mark.parametrize("db_seed,query_seed,count", BATCHES)
def test_engines_agree_on_random_spj_queries(
    db_seed, query_seed, count
):
    db = _database(db_seed)
    queries = _queries(db, query_seed, count)
    assert len(queries) == count
    with SQLiteEngine(db) as sqlite:
        for index, query in enumerate(queries):
            order, expected = fdb_rows(db, query)
            context = f"seed {db_seed}/{query_seed} query {index}: {query}"
            assert flat_rows(db, query, order) == expected, context
            assert (
                sqlite_rows(sqlite, db, query, order) == expected
            ), context


def test_harness_covers_at_least_fifty_queries():
    assert sum(count for _, _, count in BATCHES) >= 50


def test_session_facade_matches_direct_engines():
    """The QuerySession facade must not change any engine's answer."""
    db = _database(77)
    queries = _queries(db, 78, 12)
    session = QuerySession(db)
    for query in queries:
        _, expected = fdb_rows(db, query)
        for engine in ("auto", "fdb", "flat", "sqlite"):
            assert session.run(query, engine=engine).rows() == expected
    session.close()


@pytest.mark.parametrize(
    "db_seed,query_seed,count,strategy",
    [
        (101, 201, 20, "hash"),
        (102, 202, 20, "round_robin"),
        (103, 203, 20, "hash"),
    ],
)
def test_sharded_parallel_path_agrees_with_all_engines(
    db_seed, query_seed, count, strategy
):
    """ShardedDatabase + ParallelExecutor joins the harness (PR-1
    policy): the per-shard union path must agree with FDB, the flat
    engine and SQLite on the same seeded random SPJ batches."""
    db = _database(db_seed)
    sharded = ShardedDatabase.from_database(
        db, shards=3, strategy=strategy
    )
    queries = _queries(db, query_seed, count)
    executor = ParallelExecutor(max_workers=3)
    with QuerySession(
        sharded, executor=executor, check_invariants=True
    ) as session, SQLiteEngine(db) as sqlite:
        results = session.run_batch(queries)
        for index, (query, result) in enumerate(zip(queries, results)):
            order, expected = fdb_rows(db, query)
            context = (
                f"seed {db_seed}/{query_seed} query {index} "
                f"({strategy}): {query}"
            )
            assert result.rows() == expected, context
            assert flat_rows(db, query, order) == expected, context
            assert (
                sqlite_rows(sqlite, db, query, order) == expected
            ), context


def test_sharded_serial_path_agrees():
    """The merged view of a ShardedDatabase serves the serial executor
    unchanged -- same answers as the flat database."""
    db = _database(104)
    sharded = ShardedDatabase.from_database(db, shards=4)
    queries = _queries(db, 204, 12)
    with QuerySession(sharded, executor=SerialExecutor()) as session:
        for query in queries:
            _, expected = fdb_rows(db, query)
            assert session.run(query).rows() == expected


def test_saved_then_reloaded_database_agrees(tmp_path):
    """Persistence joins the harness (PR-1 policy): a database that
    went through disk (repro.persist) must answer every seeded random
    SPJ query exactly like the in-memory original, on all engines."""
    from repro import persist

    db = _database(105)
    path = str(tmp_path / "db.fdbp")
    persist.save(db, path)
    reloaded = persist.load(path)
    queries = _queries(db, 205, 15)
    with QuerySession(reloaded) as session, SQLiteEngine(
        reloaded
    ) as sqlite:
        for index, query in enumerate(queries):
            order, expected = fdb_rows(db, query)
            context = f"reloaded db, query {index}: {query}"
            assert session.run(query).rows() == expected, context
            assert (
                flat_rows(reloaded, query, order) == expected
            ), context
            assert (
                sqlite_rows(sqlite, reloaded, query, order) == expected
            ), context


@pytest.mark.parametrize("strategy", ["hash", "round_robin"])
def test_saved_then_reloaded_sharded_parallel_agrees(
    tmp_path, strategy
):
    """A sharded database reloaded from its per-shard files + manifest
    must agree through the ParallelExecutor union path as well."""
    from repro import persist

    db = _database(106)
    sharded = ShardedDatabase.from_database(
        db, shards=3, strategy=strategy
    )
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    reloaded = persist.load(path)
    assert isinstance(reloaded, ShardedDatabase)
    queries = _queries(db, 206, 12)
    executor = ParallelExecutor(max_workers=3)
    with QuerySession(
        reloaded, executor=executor, check_invariants=True
    ) as session:
        results = session.run_batch(queries)
        for index, (query, result) in enumerate(zip(queries, results)):
            _, expected = fdb_rows(db, query)
            context = (
                f"reloaded sharded ({strategy}), query {index}: {query}"
            )
            assert result.rows() == expected, context


def test_session_fallback_path_agrees():
    """Forcing the explosion fallback must not change results."""
    db = _database(55)
    queries = _queries(db, 56, 10)
    # fallback_budget=0 routes every auto query to the flat engine.
    session = QuerySession(db, fallback_budget=0.0)
    for query in queries:
        _, expected = fdb_rows(db, query)
        result = session.run(query)
        assert result.engine == "flat"
        assert result.rows() == expected
    assert session.stats.fallbacks == len(queries)


def test_arena_engine_path_agrees():
    """The arena-encoded engine joins the harness (PR-1 policy): same
    seeded random SPJ batches, exactly the same answers as the object
    encoding, the flat engine and SQLite."""
    db = _database(107)
    queries = _queries(db, 207, 20)
    with QuerySession(
        db, encoding="arena", check_invariants=True
    ) as session, SQLiteEngine(db) as sqlite:
        for index, query in enumerate(queries):
            order, expected = fdb_rows(db, query)
            context = f"arena engine, query {index}: {query}"
            assert session.run(query).rows() == expected, context
            assert flat_rows(db, query, order) == expected, context
            assert (
                sqlite_rows(sqlite, db, query, order) == expected
            ), context


@pytest.mark.parametrize("strategy", ["hash", "round_robin"])
def test_arena_sharded_parallel_path_agrees(strategy):
    """Arena encoding through the sharded + parallel union path."""
    db = _database(108)
    sharded = ShardedDatabase.from_database(
        db, shards=3, strategy=strategy
    )
    queries = _queries(db, 208, 15)
    executor = ParallelExecutor(max_workers=3)
    with QuerySession(
        sharded,
        executor=executor,
        encoding="arena",
        check_invariants=True,
    ) as session:
        results = session.run_batch(queries)
        for index, (query, result) in enumerate(zip(queries, results)):
            _, expected = fdb_rows(db, query)
            context = (
                f"arena sharded ({strategy}), query {index}: {query}"
            )
            assert result.rows() == expected, context


@pytest.mark.parametrize(
    "db_seed,query_seed,count",
    [(110, 210, 20), (111, 211, 20), (112, 212, 15)],
)
def test_served_path_agrees_with_all_engines(
    db_seed, query_seed, count
):
    """The network tier joins the harness (PR-1 policy): a query that
    went client -> server -> arena engine -> wire -> client must
    return exactly the rows of FDB, the flat engine and SQLite.
    3 x (20+20+15) = 55 >= 50 queries."""
    from repro.net import RemoteSession, ServerThread

    db = _database(db_seed)
    queries = _queries(db, query_seed, count)
    session = QuerySession(db, encoding="arena", check_invariants=True)
    with ServerThread(session) as server, RemoteSession(
        server.address
    ) as client, SQLiteEngine(db) as sqlite:
        results = client.run_batch(queries)
        for index, (query, result) in enumerate(zip(queries, results)):
            order, expected = fdb_rows(db, query)
            context = (
                f"served, seed {db_seed}/{query_seed} "
                f"query {index}: {query}"
            )
            assert result.rows() == expected, context
            assert flat_rows(db, query, order) == expected, context
            assert (
                sqlite_rows(sqlite, db, query, order) == expected
            ), context


@pytest.mark.parametrize(
    "db_seed,query_seed,count,strategy",
    [
        (113, 213, 17, "hash"),
        (114, 214, 17, "round_robin"),
        (115, 215, 16, "hash"),
    ],
)
def test_remote_executor_multi_worker_path_agrees(
    tmp_path, db_seed, query_seed, count, strategy
):
    """Multi-host shard execution joins the harness (PR-1 policy):
    two shard-worker servers, each having loaded the sharded database
    from its per-shard FDBP files, evaluated through a RemoteExecutor
    coordinator, must agree with FDB, the flat engine, SQLite *and*
    the in-process sharded-parallel union path.
    17+17+16 = 50 >= 50 queries."""
    from repro import persist
    from repro.net import RemoteExecutor, ServerThread

    db = _database(db_seed)
    sharded = ShardedDatabase.from_database(
        db, shards=3, strategy=strategy
    )
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    queries = _queries(db, query_seed, count)
    worker_a = QuerySession(persist.load(path), encoding="arena")
    worker_b = QuerySession(persist.load(path))
    with ServerThread(worker_a) as server_a, ServerThread(
        worker_b
    ) as server_b, SQLiteEngine(db) as sqlite:
        executor = RemoteExecutor(
            [server_a.address, server_b.address], timeout=60
        )
        local = QuerySession(
            ShardedDatabase.from_database(
                db, shards=3, strategy=strategy
            ),
            executor=ParallelExecutor(max_workers=3),
        )
        with QuerySession(
            sharded, executor=executor, check_invariants=True
        ) as session, local:
            results = session.run_batch(queries)
            local_results = local.run_batch(queries)
            for index, (query, result, local_result) in enumerate(
                zip(queries, results, local_results)
            ):
                order, expected = fdb_rows(db, query)
                context = (
                    f"remote, seed {db_seed}/{query_seed} "
                    f"({strategy}) query {index}: {query}"
                )
                assert result.rows() == expected, context
                assert local_result.rows() == expected, context
                assert flat_rows(db, query, order) == expected, context
                assert (
                    sqlite_rows(sqlite, db, query, order) == expected
                ), context
        assert executor.remote_tasks > 0
        assert executor.local_fallbacks == 0


@pytest.mark.parametrize(
    "db_seed,query_seed,count,strategy",
    [
        (116, 216, 17, "hash"),
        (117, 217, 17, "round_robin"),
        (118, 218, 16, "hash"),
    ],
)
def test_replicated_cluster_with_one_dead_worker_agrees(
    tmp_path, db_seed, query_seed, count, strategy
):
    """The cluster tier joins the harness (PR-1 policy): a 3-worker
    replicated ring (R=2, consistent-hash shard ownership), with the
    busiest primary worker killed between sub-batches, must keep
    agreeing with FDB, the flat engine and SQLite -- the surviving
    replicas absorb the dead worker's shards via retries, with zero
    local degrades.  17+17+16 = 50 >= 50 queries."""
    from repro import persist
    from repro.net import (
        ClusterMap,
        RemoteSession,
        ReplicatedExecutor,
        ServerThread,
    )

    db = _database(db_seed)
    shards = 3
    sharded = ShardedDatabase.from_database(
        db, shards=shards, strategy=strategy
    )
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    queries = _queries(db, query_seed, count)
    servers = [
        ServerThread(
            QuerySession(persist.load(path), encoding="arena"),
            owned_shards=[],
        )
        for _ in range(3)
    ]
    keys = [f"{h}:{p}" for h, p in (s.address for s in servers)]
    cmap = ClusterMap(keys, shards, replication_factor=2)
    assignments = cmap.assignments()
    for key, server in zip(keys, servers):
        if assignments[key]:
            with RemoteSession(server.address) as client:
                client.own_shards(assignments[key])
    primaries = [cmap.replicas_for(s)[0] for s in range(shards)]
    victim = keys.index(max(keys, key=primaries.count))
    executor = ReplicatedExecutor(
        keys,
        replication_factor=2,
        timeout=60,
        backoff_base=0.01,
        quarantine_seconds=60,
        seed=db_seed,
    )
    half = count // 2
    try:
        with SQLiteEngine(db) as sqlite, QuerySession(
            sharded, executor=executor, check_invariants=True
        ) as session:
            results = list(session.run_batch(queries[:half]))
            servers[victim].stop()  # a primary dies between batches
            results += list(session.run_batch(queries[half:]))
            for index, (query, result) in enumerate(
                zip(queries, results)
            ):
                order, expected = fdb_rows(db, query)
                context = (
                    f"cluster, seed {db_seed}/{query_seed} "
                    f"({strategy}) query {index}: {query}"
                )
                assert result.rows() == expected, context
                assert flat_rows(db, query, order) == expected, context
                assert (
                    sqlite_rows(sqlite, db, query, order) == expected
                ), context
        assert executor.remote_tasks > 0
        assert executor.retries > 0
        assert executor.degrade_to_local == 0
    finally:
        for server in servers:
            try:
                server.stop()
            except Exception:
                pass


def test_arena_saved_then_reloaded_results_agree(tmp_path):
    """Factorised results that went to disk as arena blobs answer
    follow-up reads exactly like the in-memory originals."""
    from repro import persist

    db = _database(109)
    queries = _queries(db, 209, 10)
    with QuerySession(db, encoding="arena") as session:
        for index, query in enumerate(queries):
            result = session.run(query, engine="fdb")
            fr = result.factorised
            if fr is None or fr.encoding != "arena":
                continue
            path = str(tmp_path / f"result-{index}.fdbp")
            persist.save(fr, path)
            reloaded = persist.load(path)
            _, expected = fdb_rows(db, query)
            order = reloaded.attributes
            assert (
                sorted(set(reloaded.rows(order))) == expected
            ), f"reloaded arena result, query {index}: {query}"


@pytest.mark.parametrize("db_seed,query_seed,count", BATCHES)
def test_arena_native_plans_agree_without_adapter_round_trips(
    db_seed, query_seed, count
):
    """Force every query through the factorised-input path: factorise
    the bare join first, then run selections/projection as an f-plan
    over it, on both encodings.  The arena side must match the object
    side, the one-shot engines and SQLite -- and must never round-trip
    through the object encoding (the adapter counter stays flat)."""
    from repro.core.factorised import ADAPTER

    db = _database(db_seed)
    sqlite = SQLiteEngine(db)
    arena_engine = FDB(db, encoding="arena")
    object_engine = FDB(db)
    restructured = 0
    for index, query in enumerate(_queries(db, query_seed, count)):
        base = Query.make(query.relations)
        tree = object_engine.optimal_tree(base)
        arena_fr = arena_engine.factorise_query(base, tree=tree)
        object_fr = object_engine.factorise_query(base, tree=tree)
        followup = Query.make(
            [],
            equalities=[
                (eq.left, eq.right) for eq in query.equalities
            ],
            constants=[
                (c.attribute, c.op, c.value) for c in query.constants
            ],
            projection=query.projection,
        )
        context = (
            f"arena plans, seed {db_seed}/{query_seed} "
            f"query {index}: {query}"
        )
        before = ADAPTER.snapshot()["to_object_calls"]
        arena_out, arena_plan = arena_engine.evaluate_on(
            arena_fr, followup
        )
        after = ADAPTER.snapshot()["to_object_calls"]
        assert after == before, (
            f"{context}: {after - before} adapter round trips "
            f"during plan {arena_plan}"
        )
        object_out, object_plan = object_engine.evaluate_on(
            object_fr, followup
        )
        assert str(arena_plan) == str(object_plan), context
        if arena_plan.steps:
            restructured += 1
        assert arena_out.encoding == "arena", context
        order, expected = fdb_rows(db, query)
        assert sorted(set(arena_out.rows(order))) == expected, context
        assert sorted(set(object_out.rows(order))) == expected, context
        assert sqlite_rows(sqlite, db, query, order) == expected, context
    assert restructured >= 3, (
        f"only {restructured} of {count} plans restructured the tree; "
        "the batch is not exercising swap/merge kernels"
    )
