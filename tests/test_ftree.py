"""Unit tests for f-trees: structure, path constraint, normalisation."""

import pytest

from repro.core.ftree import FNode, FTree, FTreeError, label_key
from repro.query.hypergraph import Hypergraph


def chain(edges=({"a", "b"}, {"b", "c"})):
    """a - b - c chain with dependencies a-b and b-c."""
    return FTree.from_nested(
        [("a", [("b", [("c", [])])])], edges=edges
    )


def test_node_label_nonempty():
    with pytest.raises(FTreeError):
        FNode(set())


def test_children_canonically_sorted():
    node = FNode({"r"}, [FNode({"z"}), FNode({"a"})])
    assert [sorted(c.label) for c in node.children] == [["a"], ["z"]]


def test_label_key_deterministic():
    assert label_key({"b", "a"}) == ("a", "b")


def test_duplicate_attribute_rejected():
    with pytest.raises(FTreeError):
        FTree(
            [FNode({"a"}), FNode({"a", "b"})],
            Hypergraph([]),
        )


def test_node_of_and_parents():
    t = chain()
    assert t.node_of("b").label == frozenset({"b"})
    assert t.parent_of(t.node_of("c")).label == frozenset({"b"})
    assert t.parent_of(t.node_of("a")) is None
    with pytest.raises(FTreeError):
        t.node_of("zz")


def test_ancestors_root_first():
    t = chain()
    anc = t.ancestors(t.node_of("c"))
    assert [sorted(n.label) for n in anc] == [["a"], ["b"]]
    assert t.is_ancestor(t.node_of("a"), t.node_of("c"))
    assert not t.is_ancestor(t.node_of("c"), t.node_of("a"))


def test_root_to_leaf_paths():
    t = FTree.from_nested(
        [("r", [("x", []), ("y", [("z", [])])])],
        edges=[{"r", "x"}, {"r", "y"}, {"y", "z"}],
    )
    paths = t.root_to_leaf_paths()
    rendered = sorted(
        tuple(sorted(n.label)[0] for n in p) for p in paths
    )
    assert rendered == [("r", "x"), ("r", "y", "z")]


def test_path_constraint_satisfied_on_chain():
    assert chain().satisfies_path_constraint()


def test_path_constraint_violated_when_edge_spans_siblings():
    t = FTree.from_nested(
        [("r", [("a", []), ("b", [])])],
        edges=[{"a", "b"}],  # a and b must share a path but are siblings
    )
    assert not t.satisfies_path_constraint()


def test_pushable_iff_independent_of_parent():
    # c depends on b (edge {b,c}): not pushable above b.
    t = chain()
    assert not t.pushable(t.node_of("c"))
    # With no b-c edge, c becomes pushable.
    t2 = chain(edges=({"a", "b"}, {"a", "c"}))
    # now c depends on a but b is between them; c pushable above b
    assert t2.pushable(t2.node_of("c"))


def test_is_normalised():
    assert chain().is_normalised()
    t2 = chain(edges=({"a", "b"}, {"a", "c"}))
    assert not t2.is_normalised()


def test_forest_of_independent_components_is_normalised():
    t = FTree.from_nested(
        [("a", []), ("b", [])], edges=[{"a"}, {"b"}]
    )
    assert t.is_normalised()
    assert t.satisfies_path_constraint()


def test_keys_equal_for_identical_trees():
    assert chain().key() == chain().key()
    assert chain() == chain()
    assert hash(chain()) == hash(chain())


def test_keys_differ_for_different_shapes():
    flat = FTree.from_nested(
        [("a", []), ("b", [("c", [])])],
        edges=[{"a", "b"}, {"b", "c"}],
    )
    assert flat.key() != chain().key()


def test_constant_flag_in_key():
    plain = FTree([FNode({"a"})], Hypergraph([]))
    const = FTree([FNode({"a"}, constant=True)], Hypergraph([]))
    assert plain.key() != const.key()


def test_replace_node_splices_children():
    t = chain()
    # Remove b, splicing c into a's children.
    out = t.replace_node(frozenset({"b"}), [t.node_of("c")])
    assert out.parent_of(out.node_of("c")).label == frozenset({"a"})
    with pytest.raises(FTreeError):
        t.replace_node(frozenset({"zz"}), [])


def test_replace_node_removal():
    t = chain()
    out = t.replace_node(frozenset({"c"}), [])
    assert "c" not in out.attributes()
    assert len(list(out.iter_nodes())) == 2


def test_pretty_renderings():
    t = chain()
    assert t.pretty_inline() == "{a}({b}({c}))"
    assert t.pretty().splitlines() == ["a", "  b", "    c"]


def test_subtree_attributes():
    t = chain()
    assert t.node_of("b").subtree_attributes() == frozenset(
        {"b", "c"}
    )
    assert t.attributes() == frozenset({"a", "b", "c"})


def test_class_partition():
    t = FTree.from_nested(
        [(("a", "b"), [("c", [])])], edges=[{"a", "c"}]
    )
    assert t.class_partition() == frozenset(
        {frozenset({"a", "b"}), frozenset({"c"})}
    )
