"""Plan-cache semantics of the serving layer (:mod:`repro.service`)."""

from __future__ import annotations

import pytest

from repro.query.parser import parse_query
from repro.query.query import Query
from repro.relational.database import Database
from repro.service import QuerySession
from repro.workloads import permuted_variant, repeated_query_workload


@pytest.fixture
def db() -> Database:
    database = Database()
    database.add_rows(
        "R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)]
    )
    database.add_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])
    database.add_rows("U", ("e",), [(7,), (8,)])
    return database


@pytest.fixture
def session(db) -> QuerySession:
    return QuerySession(db)


JOIN = "SELECT * FROM R, S WHERE b = c"
REORDERED = "SELECT * FROM S, R WHERE c = b"


# -- plan-cache hits and misses -------------------------------------------


def test_first_evaluation_is_a_miss(session):
    result = session.run(parse_query(JOIN))
    assert result.engine == "fdb"
    assert not result.cached
    assert session.stats.plan_misses == 1
    assert session.stats.plan_hits == 0


def test_reordered_from_and_where_hits(session):
    first = session.run(parse_query(JOIN))
    second = session.run(parse_query(REORDERED))
    assert second.cached
    assert session.stats.plan_hits == 1
    assert second.rows() == first.rows()


def test_permuted_variants_always_hit(session, db):
    query = Query.make(
        ["R", "S", "U"],
        equalities=[("b", "c"), ("d", "e")],
        constants=[("a", "<=", 2)],
        projection=["a", "d", "e"],
    )
    base = session.run(query)
    for seed in range(5):
        variant = permuted_variant(query, seed=seed)
        assert variant.canonical_key() == query.canonical_key()
        result = session.run(variant)
        assert result.cached
        assert result.rows() == base.rows()
    assert session.stats.plan_misses == 1
    assert session.stats.plan_hits == 5


def test_different_query_misses(session):
    session.run(parse_query(JOIN))
    other = session.run(parse_query("SELECT * FROM R, S WHERE b = d"))
    assert not other.cached
    assert session.stats.plan_misses == 2


# -- invalidation on database mutation ------------------------------------


def test_add_rows_invalidates_plans(session, db):
    session.run(parse_query(JOIN))
    db.add_rows("V", ("f",), [(1,)])
    result = session.run(parse_query(JOIN))
    assert not result.cached
    assert session.stats.invalidations == 1
    assert session.stats.plan_misses == 2


def test_extend_rows_delta_refresh_serves_warm(session, db):
    session.statistics()
    session.run(parse_query(JOIN))
    before = session.stats.stats_builds
    assert session.statistics() is session.statistics()
    assert session.stats.stats_builds == before  # reused, not rebuilt

    db.extend_rows("S", [(1, 99)])
    result = session.run(parse_query(JOIN))
    # An append is absorbed: the plan survives and the cached result
    # is caught up by unioning in the factorised delta rows.
    assert result.cached
    assert session.stats.invalidations == 1
    assert session.stats.delta_refreshes == 1
    assert session.stats.result_hits == 1
    assert session.cache_counters()["results"]["delta_merges"] == 1
    # Statistics are still rebuilt: cardinalities changed.
    assert session.statistics().cardinalities["S"] == 4
    assert session.stats.stats_builds == before + 1
    # The new tuple (c=1 joins b=1) is visible in the served result.
    assert (1, 1, 1, 99) in result.rows()


def test_version_counter_moves_once_per_mutation(db):
    start = db.version
    db.extend_rows("R", [(5, 5)])
    db.add_rows("W", ("g",), [(1,)])
    assert db.version == start + 2


def test_delete_rows_invalidates_cached_result_not_plan(session, db):
    session.run(parse_query(JOIN))
    assert session.statistics().cardinalities["R"] == 4
    builds = session.stats.stats_builds

    assert db.delete_rows("R", where=lambda row: row[0] == 1) == 2
    result = session.run(parse_query(JOIN))
    # Removes cannot be folded into a factorised union: the cached
    # *result* dies, but the compiled plan survives the data change.
    assert result.cached  # plan hit
    assert session.stats.invalidations == 1
    assert session.stats.delta_refreshes == 1
    assert session.stats.result_misses == 2  # cold run + dropped entry
    assert session.cache_counters()["results"]["invalidations"] == 1
    assert session.statistics().cardinalities["R"] == 2
    assert session.stats.stats_builds == builds + 1
    # Rows joining through the deleted a=1 tuples are gone.
    assert all(row[0] != 1 for row in result.rows())


def test_update_rows_invalidates_cached_result_not_plan(session, db):
    session.run(parse_query(JOIN))
    assert session.statistics().distincts["S"]["d"] == 3
    builds = session.stats.stats_builds

    # (1, 7) already has d=7, so two of the three rows actually change.
    assert db.update_rows("S", lambda row: True, {"d": 7}) == 2
    result = session.run(parse_query(JOIN))
    assert result.cached  # plan hit; the result itself was rebuilt
    assert session.stats.invalidations == 1
    assert session.stats.delta_refreshes == 1
    assert session.cache_counters()["results"]["invalidations"] == 1
    assert session.statistics().distincts["S"]["d"] == 1
    assert session.stats.stats_builds == builds + 1
    assert all(row[3] == 7 for row in result.rows())


# -- batch execution -------------------------------------------------------


def test_batch_dedup_counts_in_stats(session):
    queries = [
        parse_query(JOIN),
        parse_query(REORDERED),
        parse_query("SELECT a FROM R"),
        parse_query(JOIN),
    ]
    results = session.run_batch(queries)
    assert [r.deduped for r in results] == [False, True, False, True]
    assert session.stats.batch_queries == 4
    assert session.stats.batch_deduped == 2
    assert session.stats.plan_misses == 2  # one per canonical query
    assert results[1].rows() == results[0].rows()


def test_batch_results_keep_input_order(session):
    workload = repeated_query_workload(
        session.database, unique=2, total=6, equalities=1, seed=3
    )
    results = session.run_batch(workload)
    assert len(results) == 6
    for query, result in zip(workload, results):
        assert result.query is query
    assert (
        session.stats.batch_deduped
        == 6 - session.stats.plan_misses
    )


# -- statistics reuse and fallback ----------------------------------------


def test_statistics_built_once_per_version(session):
    assert session.stats.stats_builds == 0  # lazy until needed
    first = session.statistics()
    again = session.statistics()
    assert first is again
    assert session.stats.stats_builds == 1


def test_estimates_cost_model_shares_session_statistics(db):
    session = QuerySession(db, cost_model="estimates")
    assert session.stats.stats_builds == 1
    assert session._fdb._stats is session.statistics()
    assert session.stats.stats_builds == 1


def test_fallback_budget_routes_to_flat(db):
    session = QuerySession(db, fallback_budget=0.0)
    result = session.run(parse_query(JOIN))
    assert result.engine == "flat"
    assert session.stats.fallbacks == 1
    # A generous budget keeps the factorised path.
    roomy = QuerySession(db, fallback_budget=1e12)
    assert roomy.run(parse_query(JOIN)).engine == "fdb"
    assert roomy.stats.fallbacks == 0


def test_fallback_estimate_cached_on_plan(db):
    session = QuerySession(db, fallback_budget=0.0)
    session.run(parse_query(JOIN))
    session.run(parse_query(REORDERED))
    assert session.stats.stats_builds == 1  # estimate computed once
    assert session.stats.plan_hits == 1  # fallback still uses the cache


# -- LRU bounds on the plan caches -----------------------------------------


DISTINCT_QUERIES = [
    "SELECT * FROM R",
    "SELECT * FROM S",
    "SELECT * FROM R, S WHERE b = c",
    "SELECT * FROM R, S WHERE b = d",
]


def test_cache_size_bounds_plan_cache(db):
    session = QuerySession(db, cache_size=2)
    for sql in DISTINCT_QUERIES:
        session.run(parse_query(sql))
    assert len(session._plans) == 2
    assert session.stats.plan_evictions == 2
    assert session.cached_plan_count == 2


def test_eviction_is_least_recently_used(db):
    # Result caching off: this test observes plan-cache recency via
    # ``cached``, which a warm result would otherwise short-circuit.
    session = QuerySession(db, cache_size=2, result_cache_size=0)
    session.run(parse_query(DISTINCT_QUERIES[0]))
    session.run(parse_query(DISTINCT_QUERIES[1]))
    session.run(parse_query(DISTINCT_QUERIES[0]))  # refresh #0
    session.run(parse_query(DISTINCT_QUERIES[2]))  # evicts #1
    assert session.run(parse_query(DISTINCT_QUERIES[0])).cached
    assert not session.run(parse_query(DISTINCT_QUERIES[1])).cached
    assert session.stats.plan_evictions >= 1


def test_evicted_plans_are_recompiled_correctly(db):
    bounded = QuerySession(db, cache_size=1)
    unbounded = QuerySession(db)
    for sql in DISTINCT_QUERIES * 2:
        assert (
            bounded.run(parse_query(sql)).rows()
            == unbounded.run(parse_query(sql)).rows()
        )
    # Capacity one and a cycle of four: every run is a miss.
    assert bounded.stats.plan_hits == 0
    assert bounded.stats.plan_misses == 8
    assert unbounded.stats.plan_hits == 4


def test_cache_counters_exposed(db):
    session = QuerySession(db, cache_size=2)
    for sql in DISTINCT_QUERIES:
        session.run(parse_query(sql))
    counters = session.cache_counters()
    assert counters["plans"]["size"] == 2
    assert counters["plans"]["evictions"] == 2
    assert counters["plans"]["misses"] == 4
    assert counters["fplans"]["size"] == 0


def test_invalid_cache_size_rejected(db):
    with pytest.raises(ValueError):
        QuerySession(db, cache_size=0)


def test_run_on_fplan_cache_is_bounded(db):
    session = QuerySession(db, cache_size=1)
    fr = session.run(parse_query("SELECT * FROM R, S")).factorised
    session.run_on(fr, Query.make([], equalities=[("b", "c")]))
    session.run_on(fr, Query.make([], equalities=[("b", "d")]))
    session.run_on(fr, Query.make([], equalities=[("b", "c")]))
    assert len(session._fplans) == 1
    assert session.stats.fplan_evictions == 2
    assert session.stats.fplan_hits == 0  # cycle of two, capacity one


# -- facade odds and ends --------------------------------------------------


def test_unknown_engine_rejected(session):
    with pytest.raises(ValueError):
        session.run(parse_query(JOIN), engine="postgres")


def test_cached_plan_hit_counter(session):
    query = parse_query(JOIN)
    session.run(query)
    session.run(query)
    session.run(query)
    (plan,) = session._plans.values()
    assert plan.hits == 2
    assert session.cached_plan_count == 1


def test_run_on_caches_fplans(session):
    fr = session.run(parse_query("SELECT * FROM R, S")).factorised
    first = session.run_on(fr, Query.make([], equalities=[("b", "c")]))
    second = session.run_on(fr, Query.make([], equalities=[("c", "b")]))
    assert not first.cached
    assert second.cached
    assert session.stats.fplan_hits == 1
    assert first.rows() == second.rows()
    assert first.plan is second.plan


def test_session_context_manager_closes_sqlite(db):
    with QuerySession(db) as session:
        result = session.run(parse_query(JOIN), engine="sqlite")
        assert result.engine == "sqlite"
        assert session._sqlite is not None
    assert session._sqlite is None


def test_session_arena_encoding_serves_and_caches(db):
    with QuerySession(db, encoding="arena") as session:
        cold = session.run(parse_query(JOIN))
        warm = session.run(parse_query(JOIN))
        assert cold.factorised is not None
        assert cold.factorised.encoding == "arena"
        assert not cold.cached and warm.cached
        assert cold.rows() == warm.rows()
    with QuerySession(db) as reference:
        assert reference.run(parse_query(JOIN)).rows() == cold.rows()


def test_session_rejects_unknown_encoding(db):
    with pytest.raises(ValueError, match="encoding"):
        QuerySession(db, encoding="columnar")
