"""Unit tests for the swap operator (Section 3.1, Figure 4)."""

import random

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.ops import swap, swap_reference, swap_tree, OperatorError
from repro.relational.relation import Relation
from repro.workloads import (
    grocery_database,
    tree_t1,
    tree_t2,
    tree_t3,
    tree_t4,
)
from tests.conftest import assignments


def q1_factorised():
    db = grocery_database()
    tree = tree_t1()
    return FactorisedRelation(
        tree, factorise([db["Orders"], db["Store"], db["Disp"]], tree)
    )


def test_example8_t1_to_t2():
    """Example 8: chi_{item,location} turns T1 into T2."""
    fr = q1_factorised()
    out = swap(fr, "o_item", "s_location").validate()
    assert out.tree.key() == tree_t2().key()
    assert assignments(out) == assignments(fr)


def test_example2_t3_to_t4():
    """Example 2's restructuring of Q2's result from T3 to T4."""
    db = grocery_database()
    tree = tree_t3()
    fr = FactorisedRelation(
        tree, factorise([db["Produce"], db["Serve"]], tree)
    )
    out = swap(fr, "p_supplier", "p_item").validate()
    assert out.tree.key() == tree_t4().key()
    assert assignments(out) == assignments(fr)


def test_swap_is_its_own_inverse_on_relation():
    fr = q1_factorised()
    there = swap(fr, "o_item", "s_location")
    back = swap(there, "s_location", "o_item")
    assert back.tree.key() == fr.tree.key()
    assert assignments(back) == assignments(fr)
    assert back.data == fr.data  # canonical form is unique


def test_swap_requires_parent_child():
    fr = q1_factorised()
    with pytest.raises(OperatorError):
        swap(fr, "o_item", "dispatcher")  # grandchild, not child
    with pytest.raises(OperatorError):
        swap(fr, "oid", "o_item")  # wrong direction


def test_swap_dependent_children_stay_below():
    """T_AB children (dependent on A) must remain under A."""
    tree = tree_t1()
    swapped = swap_tree(tree, "o_item", "s_location")
    # After the swap, dispatcher (dependent on location only) moves up
    # with location; oid (dependent on item) stays under item.
    loc = swapped.node_of("s_location")
    assert swapped.parent_of(swapped.node_of("o_item")).label == (
        loc.label
    )
    assert swapped.parent_of(swapped.node_of("dispatcher")).label == (
        loc.label
    )
    assert swapped.parent_of(swapped.node_of("oid")).label == (
        frozenset({"o_item", "s_item"})
    )


def test_swap_preserves_path_constraint_and_normalisation():
    fr = q1_factorised()
    out = swap(fr, "o_item", "s_location")
    assert out.tree.satisfies_path_constraint()
    assert out.tree.is_normalised()


def test_priority_queue_matches_reference_implementation():
    fr = q1_factorised()
    fast = swap(fr, "o_item", "s_location")
    slow = swap_reference(fr, "o_item", "s_location")
    assert fast.tree.key() == slow.tree.key()
    assert fast.data == slow.data


@pytest.mark.parametrize("seed", range(6))
def test_random_swaps_match_reference(seed):
    """Differential: PQ swap == reference swap on random data."""
    rng = random.Random(seed)
    rows_r = [
        (rng.randint(1, 4), rng.randint(1, 4))
        for _ in range(rng.randint(2, 10))
    ]
    rows_s = [
        (rng.randint(1, 4), rng.randint(1, 4))
        for _ in range(rng.randint(2, 10))
    ]
    r = Relation.from_rows("R", ("a", "b"), rows_r)
    s = Relation.from_rows("S", ("c", "d"), rows_s)
    tree = FTree.from_nested(
        [("a", [(("b", "c"), [("d", [])])])],
        edges=[{"a", "b"}, {"c", "d"}],
    )
    data = factorise([r, s], tree)
    if data is None:
        pytest.skip("empty join")
    fr = FactorisedRelation(tree, data)
    fast = swap(fr, "a", "b").validate()
    slow = swap_reference(fr, "a", "b").validate()
    assert fast.data == slow.data
    assert assignments(fast) == assignments(fr)


def test_swap_on_empty_relation():
    fr = q1_factorised()
    empty = FactorisedRelation(fr.tree, None)
    out = swap(empty, "o_item", "s_location")
    assert out.is_empty()
    assert out.tree.key() == tree_t2().key()


def test_swap_at_nested_level():
    """Swapping below the root rewrites every occurrence."""
    db = grocery_database()
    tree = tree_t1()
    fr = FactorisedRelation(
        tree, factorise([db["Orders"], db["Store"], db["Disp"]], tree)
    )
    out = swap(fr, "s_location", "dispatcher").validate()
    assert assignments(out) == assignments(fr)
    # dispatcher now sits between item and location.
    disp = out.tree.node_of("dispatcher")
    assert out.tree.parent_of(disp).label == frozenset(
        {"o_item", "s_item"}
    )
    loc = out.tree.node_of("s_location")
    assert out.tree.parent_of(loc).label == disp.label
