"""Unit tests for s(T), s(f) and the lexicographic plan cost."""

from fractions import Fraction

from repro.core.ftree import FNode, FTree
from repro.costs.cost_model import PlanCost, s_plan, s_tree
from repro.query.hypergraph import Hypergraph
from repro.workloads import tree_t1, tree_t2, tree_t3, tree_t4


def test_paper_example4_costs():
    """Example 4: every f-tree in Figure 2 has s = 2 except T3 (s = 1)."""
    assert s_tree(tree_t1()) == Fraction(2)
    assert s_tree(tree_t2()) == Fraction(2)
    assert s_tree(tree_t3()) == Fraction(1)
    assert s_tree(tree_t4()) == Fraction(2)


def test_single_relation_tree_costs_one():
    tree = FTree.from_nested(
        [("a", [("b", [("c", [])])])],
        edges=[{"a", "b", "c"}],
    )
    assert s_tree(tree) == Fraction(1)


def test_constant_nodes_ignored():
    tree = FTree(
        [
            FNode({"c"}, [FNode({"a"})], constant=True),
        ],
        Hypergraph([{"a"}]),
    )
    # Path {c, a}: c is constant, only a counts; a covered by one edge.
    assert s_tree(tree) == Fraction(1)


def test_s_plan_is_bottleneck():
    trees = [tree_t3(), tree_t4()]
    assert s_plan(trees) == Fraction(2)
    assert s_plan([tree_t3()]) == Fraction(1)
    assert s_plan([]) == Fraction(0)


def test_example11_costs():
    """Example 11: the intermediate tree of the first f-plan costs 2."""
    edges = [{"A", "B", "C"}, {"D", "E", "F"}]
    start = FTree.from_nested(
        [
            (
                ("A", "D"),
                [("B", [("C", [])]), ("E", [("F", [])])],
            )
        ],
        edges=edges,
    )
    assert s_tree(start) == Fraction(1)
    # After swapping B above {A,D}: path B - {A,D} - E - F needs both
    # relations for B and F separately -> cost 2.
    from repro.ops import swap_tree

    swapped = swap_tree(start, "A", "B")
    assert s_tree(swapped) == Fraction(2)
    # The alternative first step chi_{E,F} keeps cost 1.
    alt = swap_tree(start, "E", "F")
    assert s_tree(alt) == Fraction(1)


def test_plan_cost_lexicographic_order():
    a = PlanCost(Fraction(1), Fraction(2), 5)
    b = PlanCost(Fraction(2), Fraction(1), 1)
    assert a < b  # bottleneck dominates
    c = PlanCost(Fraction(1), Fraction(1), 9)
    assert c < a  # same bottleneck, smaller final
    d = PlanCost(Fraction(1), Fraction(1), 2)
    assert d < c  # same both, fewer ops
    assert d == PlanCost(Fraction(1), Fraction(1), 2)


def test_plan_cost_of_trees():
    cost = PlanCost.of_trees([tree_t3(), tree_t4()])
    assert cost.bottleneck == Fraction(2)
    assert cost.final == Fraction(2)
    assert cost.length == 1
