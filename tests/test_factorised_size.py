"""Unit tests for FactorisedRelation and the size measures."""

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.frep import FRepError, ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.core.size import data_elements, representation_size, tuple_count
from repro.core.validate import validate, validate_relation
from repro.query.hypergraph import Hypergraph
from repro.relational.relation import Relation


@pytest.fixture
def fr():
    r = Relation.from_rows(
        "R", ("a", "b"), [(1, 1), (1, 2), (2, 2)]
    )
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    return FactorisedRelation(tree, factorise([r], tree))


def test_attributes_sorted(fr):
    assert fr.attributes == ("a", "b")


def test_size_counts_singletons(fr):
    assert fr.size() == 5
    assert representation_size(fr.tree.roots, fr.data) == 5


def test_count_without_enumeration(fr):
    assert fr.count() == 3
    assert tuple_count(fr.tree.roots, fr.data) == 3


def test_flat_data_elements(fr):
    assert fr.flat_data_elements() == 3 * 2
    assert data_elements(fr.tree.roots, fr.data) == 6


def test_empty_relation():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    fr = FactorisedRelation(tree, None)
    assert fr.is_empty()
    assert fr.size() == 0 and fr.count() == 0
    assert list(fr) == []
    assert fr.to_expression().tuples() == set()


def test_to_relation_round_trip(fr):
    flat = fr.to_relation("flat")
    assert set(flat.rows) == {(1, 1), (1, 2), (2, 2)}
    assert fr.equals_flat(flat)


def test_equals_flat_detects_mismatch(fr):
    other = Relation.from_rows("X", ("a", "b"), [(1, 1)])
    assert not fr.equals_flat(other)
    different_schema = Relation.from_rows("Y", ("a", "z"), [(1, 1)])
    assert not fr.equals_flat(different_schema)


def test_same_relation_across_structures(fr):
    # Same relation factorised over b -> a instead of a -> b.
    r = fr.to_relation()
    tree = FTree.from_nested([("b", [("a", [])])], [{"a", "b"}])
    other = FactorisedRelation(tree, factorise([r], tree))
    assert fr.same_relation(other)
    assert other.same_relation(fr)


def test_pretty_is_definition1_text(fr):
    text = fr.pretty()
    assert "⟨a:1⟩" in text
    assert fr.pretty(unicode_glyphs=False).startswith("<")


def test_copy_is_independent(fr):
    clone = fr.copy()
    clone.data.factors[0].entries.pop()
    assert fr.count() == 3
    assert clone.count() != 3


def test_validate_catches_misalignment():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    bad = ProductRep([])  # arity mismatch: 1 root but 0 factors
    with pytest.raises(FRepError):
        validate(tree.roots, bad)


def test_validate_catches_unsorted_union():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    bad = ProductRep(
        [UnionRep([(2, ProductRep()), (1, ProductRep())])]
    )
    with pytest.raises(FRepError):
        validate(tree.roots, bad)


def test_validate_catches_empty_union():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    with pytest.raises(FRepError):
        validate(tree.roots, ProductRep([UnionRep([])]))


def test_validate_catches_constant_node_with_two_values():
    tree = FTree([FNode({"a"}, constant=True)], Hypergraph([]))
    bad = ProductRep(
        [UnionRep([(1, ProductRep()), (2, ProductRep())])]
    )
    with pytest.raises(FRepError):
        validate(tree.roots, bad)


def test_validate_relation_checks_path_constraint():
    tree = FTree.from_nested(
        [("r", [("a", []), ("b", [])])], edges=[{"a", "b"}]
    )
    with pytest.raises(FRepError):
        validate_relation(tree, None)


def test_repr_mentions_size_and_count(fr):
    text = repr(fr)
    assert "size=5" in text and "tuples=3" in text
