"""Mutation-differential harness for incremental maintenance.

Policy extension of ``tests/test_differential.py``: the engines must
agree not just on a static database but *across mutations*.  Each
sequence interleaves seeded random mutations (append / delete /
update) with repeated queries drawn from a small pool, so the
session's delta-maintained result cache is constantly caught up and
re-served, and asserts after every step that the served answer is
byte-identical (sorted flat tuples) to

- a fresh factorised recompute (invariants on),
- the flat relational engine, and
- SQLite.

50 sequences run over four paths -- flat, arena, sharded + parallel
executor, and served over the wire protocol (mutating through the
client's ``mutate`` frames) -- with all seeds fixed, so a failure
reproduces by sequence seed and mutation history.

Alongside the harness: property tests for version monotonicity and
delta-log consistency, shard-view row conservation under incremental
repartitioning, result-cache staleness safety, and the plan-store
regression (a plan survives an absorbable append, dies on a schema
change).
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro import persist
from repro.engine import FDB
from repro.exec import ParallelExecutor
from repro.ivm import absorbable, join_query
from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.sqlite_engine import SQLiteEngine
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.storage.sharded import stable_row_hash
from repro.workloads import random_database, random_spj_queries

DOMAIN = 5
#: Mutation steps per sequence; each step re-checks two pool queries.
STEPS = 5
#: Queries per sequence pool (reuse is what exercises catch-up).
POOL = 5

#: Sequence seeds per path -- 18 + 12 + 10 + 10 = 50 sequences.
SEQ_FLAT = list(range(18))
SEQ_ARENA = list(range(18, 30))
SEQ_SHARDED = list(range(30, 40))
SEQ_SERVED = list(range(40, 50))


def _database(seed: int) -> Database:
    return random_database(
        relations=4, attributes=8, tuples=6, domain=DOMAIN, seed=seed
    )


def _pool(db: Database, seed: int) -> List[Query]:
    return random_spj_queries(
        db, POOL, seed=seed + 10_000, max_relations=3, max_equalities=3
    )


def _seed_params(seeds: List[int], fast: int) -> List:
    """The first ``fast`` seeds stay in the smoke tier; the rest carry
    the ``slow`` marker (full CI job and local full runs only)."""
    return [
        pytest.param(seed)
        if i < fast
        else pytest.param(seed, marks=pytest.mark.slow)
        for i, seed in enumerate(seeds)
    ]


# -- reference evaluations ----------------------------------------------------


def fdb_rows(
    db: Database, query: Query
) -> Tuple[Tuple[str, ...], List[tuple]]:
    """Recompute from scratch: a fresh engine, no caches."""
    fr = FDB(db, check_invariants=True).evaluate(query)
    order = fr.attributes
    return order, sorted(set(fr.rows(order)))


def flat_rows(db: Database, query: Query, order) -> List[tuple]:
    relation = RelationalEngine(db).evaluate(query)
    perm = [relation.schema.index_of(a) for a in order]
    return sorted(
        {tuple(row[i] for i in perm) for row in relation.rows}
    )


def sqlite_rows(db: Database, query: Query, order) -> List[tuple]:
    with SQLiteEngine(db) as engine:
        rows = engine.evaluate(query)
    if query.projection is not None:
        columns = list(query.projection)
    else:
        columns = [
            attr
            for name in query.relations
            for attr in db[name].attributes
        ]
    perm = [columns.index(a) for a in order]
    return sorted({tuple(row[i] for i in perm) for row in rows})


# -- the mutation generator ---------------------------------------------------


def mutate(db: Database, rng: random.Random, wire=None) -> str:
    """Apply one random mutation; returns a reproducible description.

    With ``wire`` (a :class:`repro.net.client.RemoteSession`), appends
    and deletes travel as ``mutate`` frames so the served path is
    mutated the way a remote writer would; updates have no wire verb
    and go through the shared database object directly.
    """
    name = rng.choice(sorted(rel.name for rel in db))
    relation = db[name]
    kind = rng.choice(("append", "delete", "update"))
    if kind != "append" and len(relation) <= 1:
        kind = "append"  # keep every relation joinable
    if kind == "append":
        fresh = [
            tuple(rng.randint(1, DOMAIN) for _ in relation.attributes)
            for _ in range(rng.randint(1, 3))
        ]
        if wire is not None:
            wire.extend_rows(name, fresh)
        else:
            db.extend_rows(name, fresh)
        return f"append {fresh} to {name}"
    if kind == "delete":
        doomed = rng.sample(
            list(relation.rows),
            rng.randint(1, min(2, len(relation) - 1)),
        )
        if wire is not None:
            wire.delete_rows(name, doomed)
        else:
            db.delete_rows(name, rows=doomed)
        return f"delete {doomed} from {name}"
    attr = rng.choice(relation.attributes)
    index = relation.schema.index_of(attr)
    old = rng.choice(list(relation.rows))[index]
    new = rng.randint(1, DOMAIN)
    db.update_rows(name, lambda row: row[index] == old, {attr: new})
    return f"update {name}.{attr}: {old} -> {new}"


# -- the sequence runner ------------------------------------------------------


def check(
    db: Database,
    query: Query,
    run_query: Callable[[Query], List[tuple]],
    seed: int,
    history: List[str],
) -> None:
    order, expected = fdb_rows(db, query)
    context = f"seed {seed}, after {history}: {query}"
    assert run_query(query) == expected, context
    assert flat_rows(db, query, order) == expected, context
    assert sqlite_rows(db, query, order) == expected, context


def run_sequence(
    seed: int,
    db: Database,
    run_query: Callable[[Query], List[tuple]],
    wire=None,
) -> None:
    """One interleaved mutation/query sequence against one path."""
    rng = random.Random(seed)
    pool = _pool(db, seed)
    history: List[str] = []
    for query in pool:  # warm every cache tier pre-mutation
        check(db, query, run_query, seed, history)
    for _ in range(STEPS):
        history.append(mutate(db, rng, wire=wire))
        for query in rng.sample(pool, 2):
            check(db, query, run_query, seed, history)


# -- the four paths -----------------------------------------------------------


@pytest.mark.parametrize("seed", _seed_params(SEQ_FLAT, fast=6))
def test_flat_path_sequences(seed):
    db = _database(seed)
    with QuerySession(db, check_invariants=True) as session:
        run_sequence(seed, db, lambda q: session.run(q).rows())
        counters = session.cache_counters()["results"]
        assert counters["hits"] + counters["misses"] > 0


@pytest.mark.parametrize("seed", _seed_params(SEQ_ARENA, fast=3))
def test_arena_path_sequences(seed):
    db = _database(seed)
    with QuerySession(
        db, encoding="arena", check_invariants=True
    ) as session:
        run_sequence(seed, db, lambda q: session.run(q).rows())


@pytest.mark.parametrize("seed", _seed_params(SEQ_SHARDED, fast=3))
def test_sharded_parallel_path_sequences(seed):
    strategy = "hash" if seed % 2 == 0 else "round_robin"
    sharded = ShardedDatabase.from_database(
        _database(seed), shards=3, strategy=strategy
    )
    executor = ParallelExecutor(max_workers=3, pool="thread")
    with QuerySession(
        sharded, executor=executor, check_invariants=True
    ) as session:
        run_sequence(seed, sharded, lambda q: session.run(q).rows())


@pytest.mark.parametrize("seed", _seed_params(SEQ_SERVED, fast=3))
def test_served_path_sequences(seed):
    from repro.net import RemoteSession, ServerThread

    db = _database(seed)
    session = QuerySession(db, encoding="arena", check_invariants=True)
    with ServerThread(session) as server, RemoteSession(
        server.address
    ) as client:
        run_sequence(
            seed, db, lambda q: client.run(q).rows(), wire=client
        )
        stats = client.stats()
        assert stats["server"]["mutations"] > 0


def test_harness_covers_at_least_fifty_sequences():
    assert (
        len(SEQ_FLAT)
        + len(SEQ_ARENA)
        + len(SEQ_SHARDED)
        + len(SEQ_SERVED)
        >= 50
    )


# -- delta maintenance is actually exercised ---------------------------------


@pytest.mark.parametrize("encoding", ["object", "arena"])
def test_append_requery_is_delta_maintained(encoding):
    """query -> absorbable append -> same query must be served from
    the caught-up cache entry, not recomputed, and still be exact."""
    db = _database(7)
    with QuerySession(
        db, encoding=encoding, check_invariants=True
    ) as session:
        pool = _pool(db, 7)
        for query in pool:
            session.run(query)
        target = pool[0]
        name = target.relations[0]
        relation = db[name]
        db.extend_rows(
            name, [tuple(9 for _ in relation.attributes)]
        )
        result = session.run(target)
        _, expected = fdb_rows(db, target)
        assert result.rows() == expected
        assert result.cached, "append-then-requery must serve warm"
        counters = session.cache_counters()["results"]
        assert counters["delta_merges"] >= 1
        assert counters["delta_rows"] >= 1
        assert session.stats.delta_refreshes == 1


def test_delete_on_referenced_relation_invalidates_entry():
    db = _database(8)
    with QuerySession(db, check_invariants=True) as session:
        pool = _pool(db, 8)
        target = pool[0]
        session.run(target)
        name = target.relations[0]
        db.delete_rows(name, rows=[db[name].rows[0]])
        result = session.run(target)
        _, expected = fdb_rows(db, target)
        assert result.rows() == expected
        counters = session.cache_counters()["results"]
        assert counters["invalidations"] >= 1


def test_mutation_on_unreferenced_relation_keeps_entry():
    """A delete on a relation the query never touches is absorbable
    trivially: the cached entry survives untouched."""
    db = Database()
    db.add_rows("R", ("a", "rb"), [(1, 2), (2, 3)])
    db.add_rows("S", ("sb", "c"), [(2, 5), (3, 7)])
    db.add_rows("U", ("u",), [(1,), (2,)])
    with QuerySession(db, check_invariants=True) as session:
        query = Query.make(
            ["R", "S"], equalities=[("rb", "sb")]
        )
        session.run(query)
        db.delete_rows("U", rows=[(1,)])
        result = session.run(query)
        assert result.cached
        counters = session.cache_counters()["results"]
        assert counters["invalidations"] == 0
        assert counters["hits"] >= 1
        assert sorted(result.rows()) == fdb_rows(db, query)[1]


def test_projection_variants_share_one_join_entry():
    """Entries are keyed on the projection-stripped join, so two
    projections of the same join share one delta-maintained result."""
    db = Database()
    db.add_rows("R", ("a", "rb"), [(1, 2), (2, 3)])
    db.add_rows("S", ("sb", "c"), [(2, 5), (3, 7)])
    with QuerySession(db, check_invariants=True) as session:
        base = Query.make(["R", "S"], equalities=[("rb", "sb")])
        narrow = Query.make(
            ["R", "S"], equalities=[("rb", "sb")], projection=["a"]
        )
        assert (
            join_query(base).canonical_key()
            == join_query(narrow).canonical_key()
        )
        session.run(base)
        result = session.run(narrow)
        assert result.cached
        assert result.rows() == fdb_rows(db, narrow)[1]
        assert session.cache_counters()["results"]["size"] == 1


# -- property tests -----------------------------------------------------------


mutation_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "delete", "update", "noop"]),
        st.integers(min_value=0, max_value=2**30),
    ),
    min_size=1,
    max_size=12,
)


@given(ops=mutation_ops)
@settings(max_examples=40, deadline=None)
def test_version_monotone_and_log_reaches_present(ops):
    """Database.version never decreases, bumps exactly on effective
    mutations, and the delta log always explains the present."""
    db = _database(1)
    start = db.version
    for kind, raw in ops:
        rng = random.Random(raw)
        before = db.version
        if kind == "noop":
            # A delete that matches nothing must not bump the version.
            removed = db.delete_rows(
                "R0", where=lambda row: False
            )
            assert removed == 0
            assert db.version == before
            continue
        if kind == "append":
            db.extend_rows(
                "R1",
                [
                    tuple(
                        rng.randint(1, DOMAIN)
                        for _ in db["R1"].attributes
                    )
                ],
            )
            assert db.version == before + 1
        elif kind == "delete":
            target = db["R2"]
            if len(target) > 1:
                count = db.delete_rows(
                    "R2", rows=[rng.choice(list(target.rows))]
                )
                assert db.version == before + (1 if count else 0)
        else:
            attr = rng.choice(db["R3"].attributes)
            index = db["R3"].schema.index_of(attr)
            pivot = rng.randint(1, DOMAIN)
            changed = db.update_rows(
                "R3",
                lambda row: row[index] == pivot,
                {attr: rng.randint(1, DOMAIN)},
            )
            assert db.version == before + (1 if changed else 0)
        assert db.version >= before
        last = db.delta_log.last()
        if db.version > before:
            assert last is not None and last.version == db.version
    # The log explains the whole walk (well under capacity) ...
    deltas = db.changes_since(start)
    assert deltas is not None
    assert [d.version for d in deltas] == list(
        range(start + 1, db.version + 1)
    )
    # ... reports "nothing changed" at the present ...
    assert db.changes_since(db.version) == []
    # ... and refuses versions from the future.
    assert db.changes_since(db.version + 1) is None


def test_delta_log_truncation_makes_gap_unexplainable():
    db = Database(delta_log_capacity=4)
    db.add_rows("R", ("a",), [(0,)])
    base = db.version
    for i in range(1, 10):
        db.extend_rows("R", [(i,)])
    assert db.changes_since(base) is None  # truncated away
    recent = db.changes_since(db.version - 2)
    assert recent is not None and len(recent) == 2
    assert not absorbable(db.changes_since(base), frozenset({"R"}))


def test_schema_change_in_range_is_unexplainable():
    db = Database()
    db.add_rows("R", ("a",), [(0,)])
    base = db.version
    db.extend_rows("R", [(1,)])
    db.add_rows("S", ("s",), [(5,)])  # schema change
    db.extend_rows("R", [(2,)])
    assert db.changes_since(base) is None
    assert db.changes_since(db.version) == []


@pytest.mark.parametrize("strategy", ["hash", "round_robin"])
@pytest.mark.parametrize("seed", [3, 4])
def test_shard_views_conserve_rows_under_mutation(strategy, seed):
    """Row conservation: after any mutation mix, shard partitions are
    disjoint, union back to the merged view, and (hash) every row
    sits on the shard its content names."""
    sharded = ShardedDatabase.from_database(
        _database(seed), shards=3, strategy=strategy
    )
    rng = random.Random(seed)
    for _ in range(12):
        mutate(sharded, rng)
        for relation in sharded:
            merged = set(relation.rows)
            parts = [
                list(sharded.shard(i)[relation.name].rows)
                for i in range(sharded.shard_count)
            ]
            assert sum(len(p) for p in parts) == len(merged)
            assert set().union(*map(set, parts)) == merged
            if strategy == "hash":
                for i, part in enumerate(parts):
                    for row in part:
                        assert stable_row_hash(row) % 3 == i
    counters = sharded.repartition_counters()
    if strategy == "hash":
        assert counters["delta"] > 0, "hash mutations must be routed"
    else:
        assert counters["delta"] == 0  # round_robin always rebuilds


def test_hash_appends_leave_unaffected_shards_untouched():
    sharded = ShardedDatabase(shards=4, strategy="hash")
    sharded.add_rows("R", ("a", "rb"), [(i, i) for i in range(8)])
    full_before = sharded.repartitions_full
    row = (99, 99)
    home = stable_row_hash(row) % 4
    before = [
        list(sharded.shard(i)["R"].rows) for i in range(4)
    ]
    sharded.extend_rows("R", [row])
    assert sharded.repartitions_full == full_before
    for i in range(4):
        after = list(sharded.shard(i)["R"].rows)
        if i == home:
            assert after == sorted(before[i] + [row])
        else:
            assert after == before[i]


def test_result_cache_never_serves_stale_entries():
    """Staleness safety: whenever the session answers, every cache
    entry it could have served is at the live database version."""
    db = _database(5)
    rng = random.Random(5)
    pool = _pool(db, 5)
    with QuerySession(db, check_invariants=True) as session:
        for step in range(15):
            mutate(db, rng)
            query = rng.choice(pool)
            result = session.run(query)
            _, expected = fdb_rows(db, query)
            assert result.rows() == expected, f"step {step}: {query}"
            served = session._results.lookup(
                query, db, check_invariants=True
            )
            assert served is not None
            assert served.version == db.version


# -- repro.ivm unit behaviour -------------------------------------------------


def test_delta_view_rejects_unreferenced_relation():
    from repro.ivm import MaintenanceError, delta_view

    db = Database()
    db.add_rows("R", ("a",), [(1,)])
    db.add_rows("S", ("s",), [(2,)])
    query = Query.make(["R"])
    with pytest.raises(MaintenanceError):
        delta_view(db, query, "S", [(3,)])
    view = delta_view(db, query, "R", [(9,)])
    assert list(view["R"].rows) == [(9,)]


def test_apply_deltas_on_current_entry_is_a_noop():
    from repro.ivm import ResultCache, apply_deltas

    db = Database()
    db.add_rows("R", ("a",), [(1,)])
    query = Query.make(["R"])
    fr = FDB(db).evaluate(query)
    cache = ResultCache()
    entry = cache.store(query, db, fr.tree, fr)
    assert apply_deltas(entry, db) == (0, 0)
    assert entry.deltas_applied == 0


def test_result_cache_eviction_and_membership():
    from repro.ivm import ResultCache

    db = Database()
    db.add_rows("R", ("a",), [(1,)])
    db.add_rows("S", ("s",), [(2,)])
    cache = ResultCache(capacity=1)
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
    for name in ("R", "S"):
        query = Query.make([name])
        fr = FDB(db).evaluate(query)
        cache.store(query, db, fr.tree, fr)
    assert cache.counters()["evictions"] == 1
    assert len(cache) == 1
    assert join_query(Query.make(["S"])).canonical_key() in cache
    assert join_query(Query.make(["R"])).canonical_key() not in cache
    cache.clear()
    assert len(cache) == 0
    assert cache.counters()["invalidations"] == 1


# -- plan-store regression ----------------------------------------------------


def test_plan_survives_absorbable_append_dies_on_schema_change(
    tmp_path,
):
    """The cross-process warm start (PR 3/5) must survive an
    absorbable append: a fresh session over the same store serves the
    stored plan via a delta hit.  A schema change rotates the store
    fingerprint, so the same lookup becomes a plain miss and the plan
    is recompiled."""
    db = _database(6)
    query = _pool(db, 6)[0]
    store_path = str(tmp_path / "plans")

    store = persist.PlanStore(store_path)
    with QuerySession(db, plan_store=store) as session:
        session.run(query)
    assert store.counters()["writes"] == 1

    # Absorbable append, then a brand-new session sharing the store.
    name = query.relations[0]
    db.extend_rows(
        name, [tuple(8 for _ in db[name].attributes)]
    )
    warm = persist.PlanStore(store_path)
    with QuerySession(db, plan_store=warm) as session:
        result = session.run(query)
        assert result.rows() == fdb_rows(db, query)[1]
    assert warm.counters()["hits"] == 1
    assert warm.counters()["delta_hits"] == 1
    assert warm.counters()["stale_evictions"] == 0

    # Schema change: the fingerprint rotates, the old entry no longer
    # matches, and the query compiles (and is stored) afresh.
    db.add_rows("Z", ("z",), [(1,)])
    cold = persist.PlanStore(store_path)
    with QuerySession(db, plan_store=cold) as session:
        session.run(query)
    assert cold.counters()["hits"] == 0
    assert cold.counters()["misses"] >= 1
    assert cold.counters()["writes"] == 1


def test_delta_merged_arena_result_runs_fused_plans():
    """A delta-maintained arena result (a :func:`repro.ops.union` of
    the original result and its catch-up terms) must feed straight
    into the fused compiled-plan path: restructuring selections over
    it run arena-native, adapter-free, and exact."""
    from itertools import combinations

    from repro.core.factorised import ADAPTER

    db = _database(11)
    with QuerySession(
        db, encoding="arena", check_invariants=True
    ) as session:
        pool = _pool(db, 11)
        for query in pool:
            session.run(query)
        target = pool[0]
        name = target.relations[0]
        relation = db[name]
        db.extend_rows(
            name, [tuple(9 for _ in relation.attributes)]
        )
        result = session.run(target)
        assert result.cached, "append-then-requery must serve warm"
        counters = session.cache_counters()["results"]
        assert counters["delta_merges"] >= 1
        fr = result.factorised
        assert fr is not None and fr.encoding == "arena"

    engine = FDB(db, encoding="arena")
    order = tuple(sorted(fr.tree.attributes()))
    base_rows = set(fr.rows(order))
    fused = 0
    for a, b in combinations(order, 2):
        followup = Query.make([], equalities=[(a, b)])
        plan = engine.plan_for(fr.tree, [(a, b)])
        if not plan.steps:
            continue
        before = ADAPTER.snapshot()["to_object_calls"]
        out, plan = engine.evaluate_on(fr, followup)
        after = ADAPTER.snapshot()["to_object_calls"]
        assert after == before, (
            f"{after - before} adapter round trips during {plan}"
        )
        assert out.encoding == "arena"
        ia, ib = order.index(a), order.index(b)
        expected = sorted(
            {row for row in base_rows if row[ia] == row[ib]}
        )
        assert sorted(set(out.rows(order))) == expected, (
            f"fused plan {plan} over delta-merged result"
        )
        fused += 1
        if fused >= 4:
            break
    assert fused >= 1, "no restructuring plan exercised"
