"""Unit tests for the factorisation builder and tuple enumeration."""

import random

import pytest

from repro.core.build import Factoriser, factorise
from repro.core.enumerate import iter_assignments, iter_rows
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree, FTreeError
from repro.core.size import representation_size, tuple_count
from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.relation import Relation
from tests.conftest import (
    assignments,
    flat_assignments,
    random_equalities_for,
    random_small_database,
)


def test_example3_single_relation_factorisation():
    """The paper's Example 3: R = {(1,1),(1,2),(2,2)} over a->b."""
    r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    rep = factorise([r], tree)
    fr = FactorisedRelation(tree, rep).validate()
    assert fr.count() == 3
    assert fr.size() == 5  # <a:1>x(<b:1> u <b:2>) u <a:2>x<b:2>
    assert fr.equals_flat(r)


def test_two_relation_join_matches_flat():
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)])
    db.add_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])
    tree = FTree.from_nested(
        [(("b", "c"), [("a", []), ("d", [])])],
        edges=[{"a", "b"}, {"c", "d"}],
    )
    fr = FactorisedRelation(tree, factorise(list(db), tree)).validate()
    flat = RelationalEngine(db).evaluate(
        Query.make(["R", "S"], [("b", "c")])
    )
    assert fr.equals_flat(flat)


def test_empty_join_returns_none():
    r = Relation.from_rows("R", ("a",), [(1,)])
    s = Relation.from_rows("S", ("b",), [(2,)])
    tree = FTree.from_nested(
        [(("a", "b"), [])], edges=[{"a"}, {"b"}]
    )
    assert factorise([r, s], tree) is None


def test_values_pruned_when_subtree_empty():
    # a=2 has no matching d; the a=2 branch must be pruned entirely.
    r = Relation.from_rows("R", ("a", "b"), [(1, 1), (2, 5)])
    s = Relation.from_rows("S", ("c", "d"), [(1, 9)])
    tree = FTree.from_nested(
        [("a", [(("b", "c"), [("d", [])])])],
        edges=[{"a", "b"}, {"c", "d"}],
    )
    fr = FactorisedRelation(tree, factorise([r, s], tree)).validate()
    assert assignments(fr) == {
        (("a", 1), ("b", 1), ("c", 1), ("d", 9))
    }


def test_intra_relation_class_equality_enforced():
    # Class {a, b} inside one relation: only rows with a == b survive.
    r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (3, 3)])
    tree = FTree.from_nested([(("a", "b"), [])], [{"a", "b"}])
    fr = FactorisedRelation(tree, factorise([r], tree)).validate()
    assert assignments(fr) == {
        (("a", 1), ("b", 1)),
        (("a", 3), ("b", 3)),
    }


def test_missing_relation_for_tree_attribute_rejected():
    r = Relation.from_rows("R", ("a",), [(1,)])
    tree = FTree.from_nested(
        [("a", []), ("zz", [])], edges=[{"a"}, {"zz"}]
    )
    with pytest.raises(FTreeError):
        Factoriser([r], tree)


def test_factoriser_reusable():
    r = Relation.from_rows("R", ("a", "b"), [(1, 2)])
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    fac = Factoriser([r], tree)
    assert fac.run() is not None
    assert fac.run() is not None  # second run works identically


def test_enumeration_order_is_sorted():
    r = Relation.from_rows(
        "R", ("a", "b"), [(2, 1), (1, 2), (1, 1), (2, 3)]
    )
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    fr = FactorisedRelation(tree, factorise([r], tree))
    rows = list(fr.rows(("a", "b")))
    assert rows == sorted(rows)


def test_iter_rows_projection_order():
    r = Relation.from_rows("R", ("a", "b"), [(1, 2)])
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    rep = factorise([r], tree)
    assert list(iter_rows(tree.roots, rep, ("b", "a"))) == [(2, 1)]


def test_iter_assignments_none_is_empty():
    tree = FTree.from_nested([("a", [])], [{"a"}])
    assert list(iter_assignments(tree.roots, None)) == []


def test_nullary_product_enumerates_one_tuple():
    assert list(iter_assignments((), __import__(
        "repro.core.frep", fromlist=["ProductRep"]
    ).ProductRep())) == [{}]


@pytest.mark.parametrize("seed", range(8))
def test_random_databases_factorise_correctly(seed):
    """Differential test: factorised join == flat join on random data."""
    rng = random.Random(seed)
    db = random_small_database(rng)
    equalities = random_equalities_for(db, rng, rng.randint(0, 2))
    query = Query.make(db.names, equalities=equalities)
    flat = RelationalEngine(db).evaluate(query)

    from repro.optimiser.ftree_optimiser import optimal_ftree

    tree, _ = optimal_ftree(db, query)
    fr = FactorisedRelation(tree, factorise(list(db), tree))
    fr.validate()
    assert flat_assignments(flat) == assignments(fr)
    assert fr.count() == len(flat)
