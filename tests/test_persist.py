"""Tests for the persistence subsystem (:mod:`repro.persist`).

Covers the three pillars of the layer -- codec round trips, the
disk-backed plan store, and session warm start -- plus the failure
modes persistence must never paper over: truncated and corrupt files,
format-version mismatches, foreign files, and stale plan-store
entries.  A corrupted file must raise :class:`PersistError` (never
yield wrong data); a stale store entry must be skipped and evicted.
"""

from __future__ import annotations

import os
import random
import struct

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.exec import ParallelExecutor
from repro.persist import (
    FORMAT_VERSION,
    MAGIC,
    MANIFEST_NAME,
    PersistError,
    PlanStore,
    inspect,
    load,
    save,
    schema_fingerprint,
)
from repro.persist.codec import read_blob, write_blob
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import (
    grocery_database,
    random_database,
    random_query,
    random_spj_queries,
)


def _assert_database_equal(left: Database, right: Database) -> None:
    assert left.schema() == right.schema()
    assert left.version == right.version
    for name in left.names:
        assert left[name].rows == right[name].rows, name


# -- codec round trips -------------------------------------------------------


def test_relation_round_trip(tmp_path):
    relation = Relation.from_rows(
        "R",
        ("a", "b", "c"),
        [
            (1, "x", 2.5),
            (-7, "", 0.0),
            (2**70, "unicode éü", -1),
            (0, "y", True),
            (3, None, False),
        ],
    )
    path = str(tmp_path / "r.fdbp")
    save(relation, path)
    loaded = load(path)
    assert isinstance(loaded, Relation)
    assert loaded.schema == relation.schema
    assert loaded.rows == relation.rows


def test_database_round_trip_preserves_version(tmp_path):
    db = grocery_database()
    db.extend_rows("Orders", [(999, 42)])  # bump the version
    path = str(tmp_path / "db.fdbp")
    save(db, path)
    loaded = load(path)
    assert isinstance(loaded, Database)
    _assert_database_equal(db, loaded)


@pytest.mark.parametrize("strategy", ["hash", "round_robin"])
def test_sharded_database_round_trip(tmp_path, strategy):
    db = ShardedDatabase.from_database(
        random_database(3, 7, 15, seed=31), shards=3, strategy=strategy
    )
    path = str(tmp_path / "sharded")
    save(db, path)
    assert os.path.exists(os.path.join(path, MANIFEST_NAME))
    assert len(os.listdir(path)) == 4  # manifest + 3 shard files
    loaded = load(path)
    assert isinstance(loaded, ShardedDatabase)
    assert loaded.strategy == strategy
    assert loaded.shard_count == db.shard_count
    _assert_database_equal(db, loaded)
    for index in range(db.shard_count):
        for name in db.names:
            assert (
                loaded.shard(index)[name].rows
                == db.shard(index)[name].rows
            )


def test_ftree_round_trip(tmp_path):
    db = grocery_database()
    query = parse_query(
        "SELECT * FROM Orders, Store WHERE o_item = s_item"
    )
    tree = FDB(db).optimal_tree(query)
    path = str(tmp_path / "tree.fdbp")
    save(tree, path)
    loaded = load(path)
    assert isinstance(loaded, FTree)
    assert loaded == tree  # canonical key equality: shape + edges


def test_ftree_round_trip_preserves_constant_nodes(tmp_path):
    tree = FTree.from_nested(
        [("a", [("b", [])])], [{"a", "b"}]
    )
    node = tree.node_of("b").as_constant()
    marked = tree.replace_node(frozenset({"b"}), [node])
    path = str(tmp_path / "tree.fdbp")
    save(marked, path)
    assert load(path) == marked


def test_fplan_round_trip(tmp_path):
    from repro.workloads import random_followup_equalities

    db = random_database(3, 6, 10, seed=7)
    fdb = FDB(db)
    fr = fdb.evaluate(random_query(db, 1, seed=8))
    eqs = random_followup_equalities(fr.tree, 2, seed=9)
    plan = fdb.plan_for(fr.tree, eqs)
    path = str(tmp_path / "plan.fdbp")
    save(plan, path)
    loaded = load(path)
    assert loaded.steps == plan.steps
    assert loaded.input_tree == plan.input_tree
    assert loaded.output_tree == plan.output_tree
    assert loaded.cost == plan.cost
    # The reloaded plan must still execute.
    assert loaded.execute(fr).count() == plan.execute(fr).count()


def test_factorised_relation_round_trip(tmp_path):
    db = grocery_database()
    fr = FDB(db).evaluate(
        parse_query("SELECT * FROM Orders, Store WHERE o_item = s_item")
    )
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    loaded = load(path)
    assert isinstance(loaded, FactorisedRelation)
    assert loaded.tree == fr.tree
    assert loaded.data == fr.data
    assert sorted(loaded.rows()) == sorted(fr.rows())


def test_empty_factorised_relation_round_trip(tmp_path):
    db = grocery_database()
    fr = FDB(db).evaluate(
        parse_query("SELECT * FROM Orders WHERE oid = 987654")
    )
    assert fr.is_empty()
    path = str(tmp_path / "empty.fdbp")
    save(fr, path)
    loaded = load(path)
    assert loaded.is_empty()
    assert loaded.tree == fr.tree


def test_round_trip_property_over_seeded_random_inputs(tmp_path):
    """save(x); load(x) == x over seeded random databases and the
    f-reps of random queries on them (the satellite's property test)."""
    for seed in range(6):
        rng = random.Random(seed)
        db = random_database(
            relations=rng.randint(2, 4),
            attributes=rng.randint(4, 9),
            tuples=rng.randint(3, 12),
            domain=rng.randint(3, 30),
            seed=seed,
        )
        db_path = str(tmp_path / f"db{seed}.fdbp")
        save(db, db_path)
        _assert_database_equal(db, load(db_path))

        sharded = ShardedDatabase.from_database(
            db,
            shards=rng.randint(2, 4),
            strategy=rng.choice(["hash", "round_robin"]),
        )
        sh_path = str(tmp_path / f"sdb{seed}")
        save(sharded, sh_path)
        _assert_database_equal(sharded, load(sh_path))

        for query in random_spj_queries(db, 3, seed=seed + 100):
            fr = FDB(db).evaluate(query)
            fr_path = str(tmp_path / f"fr{seed}.fdbp")
            save(fr, fr_path)
            loaded = load(fr_path)
            assert loaded.tree == fr.tree
            assert loaded.data == fr.data


def test_inspect_reads_header_without_decoding(tmp_path):
    db = grocery_database()
    path = str(tmp_path / "db.fdbp")
    save(db, path)
    info = inspect(path)
    assert info["kind"] == "database"
    assert info["db_version"] == db.version
    assert set(info["relations"]) == set(db.names)


# -- failure modes -----------------------------------------------------------


@pytest.fixture
def saved_db(tmp_path):
    db = grocery_database()
    path = str(tmp_path / "db.fdbp")
    save(db, path)
    return db, path


def test_truncated_file_raises(saved_db):
    _, path = saved_db
    with open(path, "rb") as handle:
        data = handle.read()
    for cut in (3, 9, len(data) // 2, len(data) - 1):
        with open(path, "wb") as handle:
            handle.write(data[:cut])
        with pytest.raises(PersistError, match="truncated|magic"):
            load(path)


def test_corrupt_payload_raises(saved_db):
    _, path = saved_db
    with open(path, "rb") as handle:
        data = handle.read()
    # Flip one byte near the end (inside the payload, after the CRC).
    corrupted = bytearray(data)
    corrupted[-5] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(corrupted))
    with pytest.raises(PersistError, match="checksum"):
        load(path)


def test_foreign_file_raises(tmp_path):
    path = str(tmp_path / "not_ours.fdbp")
    with open(path, "wb") as handle:
        handle.write(b"PK\x03\x04 definitely a zip file")
    with pytest.raises(PersistError, match="magic"):
        load(path)


def test_format_version_mismatch_raises(saved_db):
    _, path = saved_db
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    # The u16 format version sits right after the 4-byte magic.
    data[4:6] = struct.pack(">H", FORMAT_VERSION + 1)
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(PersistError, match="version"):
        load(path)


def test_missing_shard_file_raises(tmp_path):
    db = ShardedDatabase.from_database(
        random_database(2, 4, 8, seed=5), shards=2
    )
    path = str(tmp_path / "sharded")
    save(db, path)
    os.unlink(os.path.join(path, "shard-0001.fdbp"))
    with pytest.raises(PersistError, match="missing shard"):
        load(path)


def test_tampered_shard_file_raises(tmp_path):
    db = ShardedDatabase.from_database(
        random_database(2, 4, 8, seed=5), shards=2
    )
    path = str(tmp_path / "sharded")
    save(db, path)
    # Replace a shard file with a valid blob of the wrong content:
    # the manifest checksum must catch the swap.
    other = Database()
    other.add_rows("R0", db["R0"].attributes, [db["R0"].rows[0]])
    shard_path = os.path.join(path, "shard-0000.fdbp")
    from repro.persist.codec import _encode_database

    header, payload = _encode_database(other)
    with open(shard_path, "wb") as handle:
        write_blob(handle, "database", header, payload)
    with pytest.raises(PersistError, match="checksum|partition"):
        load(path)


def test_manifest_with_impossible_layout_raises_persist_error(
    tmp_path,
):
    """A manifest that frames correctly but names an unknown strategy
    (or impossible shard count) must surface as PersistError, not as a
    bare ShardingError escaping the persistence contract."""
    db = ShardedDatabase.from_database(
        random_database(2, 4, 8, seed=5), shards=2
    )
    path = str(tmp_path / "sharded")
    save(db, path)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path, "rb") as handle:
        kind, header, payload = read_blob(handle)
    header["strategy"] = "no-such-strategy"
    with open(manifest_path, "wb") as handle:
        write_blob(handle, kind, header, payload)
    with pytest.raises(PersistError, match="malformed sharded"):
        load(path)


def test_inspect_does_not_read_the_payload(tmp_path):
    db = grocery_database()
    path = str(tmp_path / "db.fdbp")
    save(db, path)
    # Truncate *inside* the payload: inspect must still succeed
    # (header-only read), while a full load must fail loudly.
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(size - 10)
    assert inspect(path)["kind"] == "database"
    with pytest.raises(PersistError, match="truncated"):
        load(path)


def test_unsupported_value_type_raises(tmp_path):
    relation = Relation.from_rows("R", ("a",), [((1, 2),)])
    with pytest.raises(PersistError, match="cannot persist value"):
        save(relation, str(tmp_path / "bad.fdbp"))


def test_unsupported_object_raises(tmp_path):
    with pytest.raises(PersistError, match="cannot persist objects"):
        save(object(), str(tmp_path / "bad.fdbp"))


def test_nonexistent_path_raises(tmp_path):
    with pytest.raises(PersistError, match="cannot read"):
        load(str(tmp_path / "missing.fdbp"))
    with pytest.raises(PersistError, match="cannot read"):
        inspect(str(tmp_path / "missing.fdbp"))


def test_sharded_resave_over_existing_directory(tmp_path):
    """Re-saving a mutated sharded database to the same directory must
    replace the old copy wholesale (no stale files, still loadable)."""
    db = ShardedDatabase.from_database(
        random_database(2, 4, 10, seed=61), shards=3
    )
    path = str(tmp_path / "sharded")
    save(db, path)
    db.extend_rows("R0", [tuple(500 + j for j in range(
        len(db["R0"].attributes)))])
    resaved = ShardedDatabase.from_database(db, shards=2)
    save(resaved, path)  # fewer shards: old shard-0002 must not linger
    assert sorted(os.listdir(path)) == [
        MANIFEST_NAME,
        "shard-0000.fdbp",
        "shard-0001.fdbp",
    ]
    loaded = load(path)
    assert loaded.shard_count == 2
    _assert_database_equal(resaved, loaded)


# -- plan store --------------------------------------------------------------


@pytest.fixture
def store_setup(tmp_path):
    db = grocery_database()
    query = parse_query(
        "SELECT * FROM Orders, Store WHERE o_item = s_item"
    )
    tree = FDB(db).optimal_tree(query)
    store = PlanStore(str(tmp_path / "plans"))
    return db, query, tree, store


def test_plan_store_put_get(store_setup):
    db, query, tree, store = store_setup
    assert store.get(query, db) is None
    store.put(query, db, tree)
    assert store.get(query, db) == tree
    assert len(store) == 1
    assert store.counters()["hits"] == 1


def test_plan_store_hits_canonical_reformulations(store_setup):
    db, query, tree, store = store_setup
    store.put(query, db, tree)
    reformulated = parse_query(
        "SELECT * FROM Store, Orders WHERE s_item = o_item"
    )
    assert store.get(reformulated, db) == tree


def test_plan_store_survives_process_boundaries(store_setup):
    """A fresh PlanStore instance over the same directory (the
    cross-session / cross-process case) serves the same plans."""
    db, query, tree, store = store_setup
    store.put(query, db, tree)
    fresh = PlanStore(store.path)
    assert fresh.get(query, db) == tree


def test_plan_store_absorbs_data_deltas_evicts_unexplained(
    store_setup,
):
    db, query, tree, store = store_setup
    store.put(query, db, tree)
    # A recorded append is a data-only delta: f-trees are schema-level
    # objects, so the stored plan survives and counts a delta hit.
    db.extend_rows("Orders", [(7777, 42)])  # version moves
    assert store.get(query, db) == tree
    assert store.delta_hits == 1
    assert store.stale_evictions == 0
    # An unexplainable gap (here: a version jump the delta log never
    # recorded, the pre-IVM wholesale case) still evicts.
    db._version += 1
    assert store.get(query, db) is None  # skipped, not wrong data
    assert store.stale_evictions == 1
    assert len(store) == 0  # the stale entry is gone from disk
    # Re-populating at the new version works.
    store.put(query, db, tree)
    assert store.get(query, db) == tree


def test_plan_store_distinguishes_schemas(tmp_path):
    db_a = grocery_database()
    db_b = random_database(2, 4, 5, seed=1)
    assert schema_fingerprint(db_a) != schema_fingerprint(db_b)
    store = PlanStore(str(tmp_path / "plans"))
    query = parse_query("SELECT * FROM Orders")
    tree = FDB(db_a).optimal_tree(query)
    store.put(query, db_a, tree)
    # Same store directory, different database: no cross-talk.
    other_query = parse_query("SELECT * FROM R0")
    assert store.get(other_query, db_b) is None
    assert store.get(query, db_a) == tree


def test_plan_store_corrupt_entry_raises(store_setup):
    db, query, tree, store = store_setup
    store.put(query, db, tree)
    entry = os.path.join(store.path, store.entries()[0])
    with open(entry, "rb") as handle:
        data = bytearray(handle.read())
    data[-3] ^= 0xFF
    with open(entry, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(PersistError, match="corrupt plan-store entry"):
        store.get(query, db)


def test_plan_store_clear(store_setup):
    db, query, tree, store = store_setup
    store.put(query, db, tree)
    assert store.clear() == 1
    assert len(store) == 0
    assert store.get(query, db) is None


# -- session warm start ------------------------------------------------------


def _workload(db, count=8, seed=17):
    return random_spj_queries(
        db, count, seed=seed, max_relations=3, max_equalities=2
    )


def test_session_write_through_and_warm_start(tmp_path):
    db = random_database(4, 8, 6, domain=5, seed=23)
    queries = _workload(db)
    store_dir = str(tmp_path / "plans")

    with QuerySession(db, plan_store=PlanStore(store_dir)) as cold:
        cold_rows = [r.rows() for r in cold.run_batch(queries)]
        assert cold.stats.plan_misses == len(
            {q.canonical_key() for q in queries}
        )
        assert cold.stats.store_hits == 0

    # A fresh session over a fresh store handle: every plan comes from
    # disk, the optimiser never runs.
    with QuerySession(db, plan_store=PlanStore(store_dir)) as warm:
        warm_rows = [r.rows() for r in warm.run_batch(queries)]
        assert warm_rows == cold_rows
        assert warm.stats.plan_misses == 0
        assert warm.stats.store_hits == len(
            {q.canonical_key() for q in queries}
        )


def test_session_store_promotes_into_lru(tmp_path):
    db = random_database(3, 6, 6, domain=5, seed=29)
    query = _workload(db, count=1)[0]
    store = PlanStore(str(tmp_path / "plans"))
    with QuerySession(db, plan_store=store) as seeder:
        seeder.run(query)
    with QuerySession(db, plan_store=store) as session:
        first = session.run(query)
        assert first.cached  # disk hit
        assert session.stats.store_hits == 1
        second = session.run(query)
        assert second.cached
        # The second hit came from the promoted LRU entry, not disk.
        assert session.stats.store_hits == 1
        assert session.stats.plan_hits == 2


def test_session_mutation_invalidates_store_entries(tmp_path):
    db = random_database(3, 6, 6, domain=5, seed=37)
    query = _workload(db, count=1, seed=41)[0]
    store = PlanStore(str(tmp_path / "plans"))
    with QuerySession(db, plan_store=store) as session:
        session.run(query)
        db.extend_rows(db.names[0], [db[db.names[0]].rows[0]])
        result = session.run(query)
        assert result.rows() is not None
    # The stale entry was evicted and replaced at the new version.
    fresh = PlanStore(store.path)
    with QuerySession(db, plan_store=fresh) as warm:
        warm.run(query)
        assert warm.stats.store_hits == 1


def test_parallel_executor_consults_plan_store(tmp_path):
    """Warm start applies to pooled execution too: the coordinator
    reads the store before submitting compile tasks to workers."""
    db = random_database(3, 6, 8, domain=5, seed=43)
    queries = _workload(db, count=6, seed=47)
    store_dir = str(tmp_path / "plans")
    with QuerySession(db, plan_store=PlanStore(store_dir)) as cold:
        expected = [r.rows() for r in cold.run_batch(queries)]
    with QuerySession(
        db,
        plan_store=PlanStore(store_dir),
        executor=ParallelExecutor(max_workers=2),
    ) as warm:
        got = [r.rows() for r in warm.run_batch(queries)]
        assert got == expected
        assert warm.stats.plan_misses == 0
        assert warm.stats.store_hits > 0


def test_saved_database_plus_plan_store_cross_process_shape(tmp_path):
    """The full warm-start loop: save the database, reload it (version
    preserved), and serve from the populated plan store -- the shape
    the CI smoke job runs across real processes."""
    db = random_database(3, 6, 8, domain=5, seed=53)
    queries = _workload(db, count=5, seed=59)
    db_path = str(tmp_path / "db.fdbp")
    store_dir = str(tmp_path / "plans")
    save(db, db_path)
    with QuerySession(db, plan_store=PlanStore(store_dir)) as cold:
        expected = [r.rows() for r in cold.run_batch(queries)]
    reloaded = load(db_path)
    with QuerySession(
        reloaded, plan_store=PlanStore(store_dir)
    ) as warm:
        got = [r.rows() for r in warm.run_batch(queries)]
        assert got == expected
        assert warm.stats.plan_misses == 0
        assert warm.stats.store_hits == len(
            {q.canonical_key() for q in queries}
        )


# -- plan store size bounds / GC ---------------------------------------------


def _distinct_queries(db, count, seed=31):
    """``count`` canonically distinct queries over ``db``."""
    out, seen = [], set()
    offset = 0
    while len(out) < count:
        for query in random_spj_queries(
            db, count, seed=seed + offset, max_relations=3,
            max_equalities=2,
        ):
            key = query.canonical_key()
            if key not in seen:
                seen.add(key)
                out.append(query)
                if len(out) == count:
                    break
        offset += 1
    return out


def _spread_mtimes(store):
    """Give the entries strictly increasing, well-separated mtimes so
    LRU ordering is deterministic on coarse-grained filesystems."""
    base = 1_000_000_000
    for i, name in enumerate(store.entries()):
        path = os.path.join(store.path, name)
        os.utime(path, (base + i, base + i))


def test_plan_store_max_entries_evicts_least_recently_used(tmp_path):
    db = random_database(4, 8, 6, domain=5, seed=41)
    queries = _distinct_queries(db, 4)
    fdb = FDB(db)
    store = PlanStore(str(tmp_path / "plans"), max_entries=3)
    for query in queries[:3]:
        store.put(query, db, fdb.optimal_tree(query))
    assert len(store) == 3
    _spread_mtimes(store)
    oldest = store.entries()[0]

    # A lookup refreshes recency: touch what would otherwise be evicted.
    victim_order = sorted(
        store.entries(),
        key=lambda n: os.stat(os.path.join(store.path, n)).st_mtime,
    )
    assert victim_order[0] == oldest
    for query in queries[:3]:
        if store._entry_path(
            query, schema_fingerprint(db)
        ).endswith(oldest):
            assert store.get(query, db) is not None  # promotes it
            break

    store.put(queries[3], db, fdb.optimal_tree(queries[3]))
    assert len(store) == 3  # bound held
    assert store.gc_evictions == 1
    assert oldest in store.entries()  # the touched entry survived


def test_plan_store_max_bytes_bound(tmp_path):
    db = random_database(4, 8, 6, domain=5, seed=43)
    queries = _distinct_queries(db, 3, seed=47)
    fdb = FDB(db)
    unbounded = PlanStore(str(tmp_path / "probe"))
    for query in queries:
        unbounded.put(query, db, fdb.optimal_tree(query))
    per_entry = unbounded.total_bytes() // len(unbounded)

    store = PlanStore(
        str(tmp_path / "plans"), max_bytes=2 * per_entry + per_entry // 2
    )
    for query in queries:
        store.put(query, db, fdb.optimal_tree(query))
        _spread_mtimes(store)
    assert store.total_bytes() <= store.max_bytes
    assert len(store) == 2
    assert store.gc_evictions == 1
    # Survivors still serve their plans.
    served = sum(
        1 for query in queries if store.get(query, db) is not None
    )
    assert served == 2


def test_plan_store_bound_validation(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        PlanStore(str(tmp_path / "a"), max_entries=0)
    with pytest.raises(ValueError, match="max_bytes"):
        PlanStore(str(tmp_path / "b"), max_bytes=-1)


def test_plan_store_gc_counter_in_counters(tmp_path):
    db = random_database(3, 6, 6, domain=5, seed=51)
    queries = _distinct_queries(db, 2, seed=53)
    fdb = FDB(db)
    store = PlanStore(str(tmp_path / "plans"), max_entries=1)
    store.put(queries[0], db, fdb.optimal_tree(queries[0]))
    _spread_mtimes(store)
    store.put(queries[1], db, fdb.optimal_tree(queries[1]))
    counters = store.counters()
    assert counters["gc_evictions"] == 1
    assert counters["size"] == 1


def test_bounded_store_under_a_session_keeps_serving(tmp_path):
    """A tight bound degrades hit rate, never correctness."""
    db = random_database(4, 8, 6, domain=5, seed=57)
    queries = _distinct_queries(db, 5, seed=61)
    store = PlanStore(str(tmp_path / "plans"), max_entries=2)
    with QuerySession(db, plan_store=store) as session:
        expected = [r.rows() for r in session.run_batch(queries)]
    assert len(store) <= 2
    with QuerySession(db, plan_store=PlanStore(store.path)) as warm:
        got = [r.rows() for r in warm.run_batch(queries)]
    assert got == expected


# -- arena blobs -------------------------------------------------------------


def _arena_join_result():
    db = Database()
    db.add_rows(
        "Orders", ("oid", "o_key"), [(i, i % 5) for i in range(40)]
    )
    db.add_rows(
        "Listings", ("l_key", "price"), [(i % 5, 100 + i) for i in range(40)]
    )
    query = parse_query(
        "SELECT * FROM Orders, Listings WHERE o_key = l_key"
    )
    return FDB(db, encoding="arena").evaluate(query)


def test_arena_relation_round_trip(tmp_path):
    fr = _arena_join_result()
    assert fr.encoding == "arena"
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    assert inspect(path)["kind"] == "arena"
    loaded = load(path)
    assert loaded.encoding == "arena"
    assert loaded.tree == fr.tree
    assert list(loaded.rows()) == list(fr.rows())
    assert loaded.count() == fr.count()
    loaded.validate()


def test_arena_blob_agrees_with_object_blob(tmp_path):
    """The same relation through both blob kinds decodes equal."""
    fr = _arena_join_result()
    arena_path = str(tmp_path / "arena.fdbp")
    object_path = str(tmp_path / "object.fdbp")
    save(fr, arena_path)
    save(fr.to_object(), object_path)
    assert inspect(object_path)["kind"] == "factorised"
    left, right = load(arena_path), load(object_path)
    assert list(left.rows()) == list(right.rows())
    assert left.data == right.data  # lazy conversion meets objects


def test_empty_arena_relation_round_trip(tmp_path):
    fr = _arena_join_result()
    empty = FactorisedRelation(fr.tree, arena=None)
    path = str(tmp_path / "empty.fdbp")
    save(empty, path)
    loaded = load(path)
    assert loaded.encoding == "arena"
    assert loaded.is_empty()
    assert loaded.tree == fr.tree


def test_corrupt_arena_payload_raises(tmp_path):
    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    data[-4] ^= 0xFF  # flip a byte inside a column
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(PersistError):
        load(path)


def test_tampered_arena_columns_fail_bounds_check(tmp_path):
    """Even with a recomputed checksum, out-of-range offsets must be
    rejected by the O(bytes) bounds validation."""
    import io
    import zlib

    from repro.persist import codec

    fr = _arena_join_result()
    kind, header, payload = codec.encode(fr)
    assert kind == "arena"
    # Corrupt the last column byte (a child_hi offset) and re-frame
    # with a fresh CRC so only the bounds check can catch it.
    bad = bytearray(payload)
    bad[-1] = 0x7F
    out = io.BytesIO()
    codec.write_blob(out, "arena", header, bytes(bad))
    out.seek(0)
    read_kind, read_header, read_payload = read_blob(out)
    assert zlib.crc32(read_payload) == zlib.crc32(bytes(bad))
    with pytest.raises(PersistError, match="invariants"):
        codec.decode(read_kind, read_header, read_payload)


# -- memory-mapped arena loads ----------------------------------------------


def test_mmap_arena_load_round_trips(tmp_path):
    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    mapped = load(path, mmap=True)
    assert mapped.encoding == "arena"
    assert mapped.tree == fr.tree
    assert list(mapped.rows()) == list(fr.rows())
    assert mapped.count() == fr.count()
    assert mapped.size() == fr.size()
    mapped.validate()


def test_mmap_arena_columns_survive_operators(tmp_path):
    """Mapped columns must behave exactly like owned ones through the
    arena fast paths: selection, projection, aggregation, and the
    compiled enumeration loop nests."""
    from repro import ops
    from repro.query.query import ConstantCondition

    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    mapped = load(path, mmap=True)
    attr = mapped.attributes[0]
    value = sorted(set(fr.rows((attr,))))[0][0]
    selected = ops.select_constant(
        mapped, ConstantCondition(attr, ">=", value)
    )
    selected.validate()
    assert sorted(set(selected.rows())) == sorted(
        set(
            ops.select_constant(
                fr, ConstantCondition(attr, ">=", value)
            ).rows()
        )
    )
    projected = ops.project(mapped, (attr,))
    projected.validate()
    assert sorted(set(projected.rows((attr,)))) == sorted(
        set(fr.rows((attr,)))
    )
    assert mapped.count_distinct(attr) == fr.count_distinct(attr)


def test_mmap_stdlib_fallback_path(tmp_path, monkeypatch):
    """Without numpy the mapped load copies into array('q') -- same
    answers, stdlib only."""
    from array import array

    from repro.persist import codec

    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    monkeypatch.setattr(codec, "_np", None)
    mapped = load(path, mmap=True)
    assert isinstance(mapped.arena.values[0], array)
    assert list(mapped.rows()) == list(fr.rows())


def test_mmap_non_arena_kinds_fall_back_to_checksummed_read(tmp_path):
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 2), (3, 4)])
    path = str(tmp_path / "db.fdbp")
    save(db, path)
    loaded = load(path, mmap=True)
    assert isinstance(loaded, Database)
    assert loaded.total_size == 2


def test_mmap_truncated_arena_file_raises(tmp_path):
    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[:-6])  # chop the final column short
    with pytest.raises(PersistError):
        load(path, mmap=True)


def test_mmap_trailing_bytes_raise(tmp_path):
    fr = _arena_join_result()
    path = str(tmp_path / "result.fdbp")
    save(fr, path)
    with open(path, "ab") as handle:
        handle.write(b"\x00\x00")
    with pytest.raises(PersistError, match="trailing"):
        load(path, mmap=True)


def test_mmap_tampered_columns_still_fail_bounds_check(tmp_path):
    """Skipping the CRC must not skip the structural bounds check."""
    import zlib

    from repro.persist import codec

    fr = _arena_join_result()
    kind, header, payload = codec.encode(fr)
    bad = bytearray(payload)
    bad[-1] = 0x7F
    path = str(tmp_path / "bad.fdbp")
    with open(path, "wb") as handle:
        write_blob(handle, "arena", header, bytes(bad))
    with pytest.raises(PersistError, match="invariants"):
        load(path, mmap=True)
