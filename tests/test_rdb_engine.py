"""Unit tests for the RDB flat query engine."""

import pytest

from repro.query.query import Query, QueryError
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from tests.conftest import flat_assignments


@pytest.fixture
def db():
    d = Database()
    d.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)])
    d.add_rows("S", ("c", "d"), [(1, 7), (2, 8), (2, 9)])
    d.add_rows("T", ("e",), [(7,), (9,)])
    return d


def test_single_relation_scan(db):
    out = RelationalEngine(db).evaluate(Query.make(["R"]))
    assert out == db["R"]


def test_two_way_join(db):
    q = Query.make(["R", "S"], equalities=[("b", "c")])
    out = RelationalEngine(db).evaluate(q)
    assert out.cardinality == 6


def test_three_way_join(db):
    q = Query.make(
        ["R", "S", "T"], equalities=[("b", "c"), ("d", "e")]
    )
    out = RelationalEngine(db).evaluate(q)
    # (b=1,c=1,d=7,e=7): a in {1,3}; (b=2,c=2,d=9,e=9): a in {1,2}
    assert out.cardinality == 4


def test_hash_join_method_equivalent(db):
    q = Query.make(
        ["R", "S", "T"], equalities=[("b", "c"), ("d", "e")]
    )
    a = RelationalEngine(db, join_method="sort-merge").evaluate(q)
    b = RelationalEngine(db, join_method="hash").evaluate(q)
    assert a == b


def test_constant_selection_pushed_down(db):
    q = Query.make(
        ["R", "S"],
        equalities=[("b", "c")],
        constants=[("a", "=", 1)],
    )
    out = RelationalEngine(db).evaluate(q)
    assert all(row[0] == 1 for row in out)
    assert out.cardinality == 3


def test_intra_relation_equality(db):
    q = Query.make(["R"], equalities=[("a", "b")])
    out = RelationalEngine(db).evaluate(q)
    assert set(out.rows) == {(1, 1), (2, 2)}


def test_projection_applied_last(db):
    q = Query.make(
        ["R", "S"], equalities=[("b", "c")], projection=["a", "d"]
    )
    out = RelationalEngine(db).evaluate(q)
    assert out.attributes == ("a", "d")
    assert out.cardinality == 6  # no duplicate (a, d) pairs here


def test_disconnected_query_is_product(db):
    q = Query.make(["R", "T"])
    out = RelationalEngine(db).evaluate(q)
    assert out.cardinality == len(db["R"]) * len(db["T"])


def test_self_join_via_renamed_copy(db):
    db.add_renamed("R", "R2", {"a": "a2", "b": "b2"})
    q = Query.make(["R", "R2"], equalities=[("b", "a2")])
    out = RelationalEngine(db).evaluate(q)
    expected = {
        (a, b, a2, b2)
        for (a, b) in db["R"].rows
        for (a2, b2) in db["R"].rows
        if b == a2
    }
    assert set(out.rows) == expected


def test_empty_query_rejected(db):
    with pytest.raises(QueryError):
        RelationalEngine(db).evaluate(Query.make([]))


def test_unknown_join_method_rejected(db):
    with pytest.raises(ValueError):
        RelationalEngine(db, join_method="nested-loop")


def test_result_data_elements_counts_values(db):
    q = Query.make(["R", "S"], equalities=[("b", "c")])
    engine = RelationalEngine(db)
    assert engine.result_data_elements(q) == 6 * 4


def test_budget_timeout_propagates():
    db = Database()
    n = 400
    db.add_rows("A", ("x", "y"), [(i, i % 2) for i in range(n)])
    db.add_rows("B", ("u", "v"), [(i % 2, i) for i in range(n)])
    engine = RelationalEngine(db, budget=Budget(max_rows=1000))
    with pytest.raises(BudgetExceeded):
        engine.evaluate(Query.make(["A", "B"], [("y", "u")]))


def test_greedy_order_prefers_selective_join(db):
    # The greedy planner must produce the correct result regardless of
    # relation order in the query.
    q1 = Query.make(
        ["T", "S", "R"], equalities=[("b", "c"), ("d", "e")]
    )
    q2 = Query.make(
        ["R", "S", "T"], equalities=[("b", "c"), ("d", "e")]
    )
    engine = RelationalEngine(db)
    assert flat_assignments(engine.evaluate(q1)) == flat_assignments(
        engine.evaluate(q2)
    )
