"""Unit tests for fractional and integral edge covers."""

from fractions import Fraction

import pytest

from repro.costs.edge_cover import (
    CoverError,
    fractional_edge_cover,
    integral_edge_cover,
)


def test_single_edge_covers_everything():
    assert fractional_edge_cover(
        [{"a"}, {"b"}], [{"a", "b"}]
    ) == Fraction(1)
    assert integral_edge_cover([{"a"}, {"b"}], [{"a", "b"}]) == 1


def test_disjoint_classes_need_two_edges():
    classes = [{"a"}, {"b"}]
    edges = [{"a"}, {"b"}]
    assert fractional_edge_cover(classes, edges) == Fraction(2)
    assert integral_edge_cover(classes, edges) == 2


def test_triangle_fractional_vs_integral_gap():
    """The classic AGM example: fractional 3/2, integral 2."""
    classes = [{"a"}, {"b"}, {"c"}]
    edges = [{"a", "b"}, {"b", "c"}, {"a", "c"}]
    assert fractional_edge_cover(classes, edges) == Fraction(3, 2)
    assert integral_edge_cover(classes, edges) == 2


def test_chain_cover():
    # path a-b-c with edges {a,b}, {b,c}: covered by both edges = 2?
    # No: {a,b} covers a and b, {b,c} covers c -> 2 edges, but
    # fractionally also 2? x1 + x2 with x1 >= 1 (a), x2 >= 1 (c) -> 2.
    classes = [{"a"}, {"b"}, {"c"}]
    edges = [{"a", "b"}, {"b", "c"}]
    assert fractional_edge_cover(classes, edges) == Fraction(2)


def test_empty_class_list_costs_zero():
    assert fractional_edge_cover([], [{"a"}]) == Fraction(0)
    assert integral_edge_cover([], [{"a"}]) == 0


def test_uncoverable_class_raises():
    with pytest.raises(CoverError):
        fractional_edge_cover([{"a"}, {"zz"}], [{"a"}])
    with pytest.raises(CoverError):
        integral_edge_cover([{"a"}, {"zz"}], [{"a"}])


def test_multi_attribute_classes_covered_by_intersection():
    # Class {a, b} is covered by any edge meeting a or b.
    classes = [{"a", "b"}, {"c"}]
    edges = [{"a", "c"}]
    assert fractional_edge_cover(classes, edges) == Fraction(1)


def test_star_query():
    # centre c joined with k satellites; each edge {c, s_i}.
    k = 4
    classes = [{"c"}] + [{f"s{i}"} for i in range(k)]
    edges = [{"c", f"s{i}"} for i in range(k)]
    assert fractional_edge_cover(classes, edges) == Fraction(k)


def test_k_cycle_fractional_cover_is_k_over_2():
    for k in (4, 5, 6):
        classes = [{f"v{i}"} for i in range(k)]
        edges = [{f"v{i}", f"v{(i + 1) % k}"} for i in range(k)]
        assert fractional_edge_cover(classes, edges) == Fraction(k, 2)


def test_result_is_exact_fraction():
    value = fractional_edge_cover(
        [{"a"}, {"b"}, {"c"}],
        [{"a", "b"}, {"b", "c"}, {"a", "c"}],
    )
    assert isinstance(value, Fraction)
    assert value.denominator == 2


def test_redundant_edges_do_not_hurt():
    classes = [{"a"}, {"b"}]
    edges = [{"a", "b"}, {"a"}, {"b"}, {"zzz"}]
    assert fractional_edge_cover(classes, edges) == Fraction(1)


def test_agreement_with_scipy_if_available():
    scipy = pytest.importorskip("scipy")
    from repro.costs.edge_cover import fractional_edge_cover_scipy

    cases = [
        ([{"a"}, {"b"}, {"c"}], [{"a", "b"}, {"b", "c"}, {"a", "c"}]),
        ([{"a"}, {"b"}], [{"a", "b"}]),
        (
            [{f"v{i}"} for i in range(5)],
            [{f"v{i}", f"v{(i + 1) % 5}"} for i in range(5)],
        ),
    ]
    for classes, edges in cases:
        exact = fractional_edge_cover(classes, edges)
        approx = fractional_edge_cover_scipy(classes, edges)
        assert abs(float(exact) - approx) < 1e-9
