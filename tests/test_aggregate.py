"""Unit tests for factorised aggregation."""

import random

import pytest

from repro.core.aggregate import (
    AggregateError,
    average,
    count,
    count_distinct,
    group_count,
    max_of,
    min_of,
    sum_of,
)
from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.query.query import Query
from repro.relational.relation import Relation
from repro.workloads import grocery_database, query_q1
from tests.conftest import random_small_database


@pytest.fixture
def fr():
    r = Relation.from_rows(
        "R", ("a", "b"), [(1, 10), (1, 20), (2, 20), (3, 5)]
    )
    tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    return FactorisedRelation(tree, factorise([r], tree))


def reference(fr):
    return list(fr)


def test_count_matches_enumeration(fr):
    assert count(fr.tree.roots, fr.data) == len(reference(fr))


def test_sum_matches_enumeration(fr):
    expected = sum(d["b"] for d in reference(fr))
    assert fr.sum("b") == expected
    expected_a = sum(d["a"] for d in reference(fr))
    assert fr.sum("a") == expected_a


def test_avg_matches_enumeration(fr):
    rows = reference(fr)
    assert fr.avg("b") == sum(d["b"] for d in rows) / len(rows)


def test_min_max(fr):
    assert fr.min("b") == 5
    assert fr.max("b") == 20
    assert fr.min("a") == 1
    assert fr.max("a") == 3


def test_count_distinct(fr):
    assert fr.count_distinct("a") == 3
    assert fr.count_distinct("b") == 3  # {10, 20, 5}


def test_group_count_root_attribute(fr):
    assert fr.group_count("a") == {1: 2, 2: 1, 3: 1}


def test_group_count_inner_attribute(fr):
    assert fr.group_count("b") == {10: 1, 20: 2, 5: 1}


def test_empty_relation_aggregates(fr):
    empty = FactorisedRelation(fr.tree, None)
    assert empty.sum("b") == 0.0
    assert empty.avg("b") is None
    assert empty.min("b") is None and empty.max("b") is None
    assert empty.count_distinct("b") == 0
    assert empty.group_count("b") == {}


def test_unknown_attribute_raises(fr):
    with pytest.raises(AggregateError):
        fr.sum("zz")
    with pytest.raises(AggregateError):
        fr.min("zz")
    with pytest.raises(AggregateError):
        fr.count_distinct("zz")


def test_aggregates_on_join_result():
    db = grocery_database()
    fr = FDB(db).evaluate(query_q1())
    rows = list(fr)
    assert fr.sum("oid") == sum(d["oid"] for d in rows)
    assert fr.min("oid") == min(d["oid"] for d in rows)
    assert fr.max("oid") == max(d["oid"] for d in rows)
    assert fr.count_distinct("dispatcher") == len(
        {d["dispatcher"] for d in rows}
    )
    groups = fr.group_count("dispatcher")
    for name in groups:
        assert groups[name] == sum(
            1 for d in rows if d["dispatcher"] == name
        )


@pytest.mark.parametrize("seed", range(5))
def test_aggregates_match_enumeration_on_random_data(seed):
    rng = random.Random(seed)
    db = random_small_database(rng)
    q = Query.make(db.names)
    fr = FDB(db).evaluate(q)
    rows = list(fr)
    attr = sorted(fr.attributes)[seed % len(fr.attributes)]
    assert fr.sum(attr) == pytest.approx(
        sum(d[attr] for d in rows)
    )
    assert fr.min(attr) == min(d[attr] for d in rows)
    assert fr.max(attr) == max(d[attr] for d in rows)
    assert fr.count_distinct(attr) == len({d[attr] for d in rows})
    groups = fr.group_count(attr)
    expected = {}
    for d in rows:
        expected[d[attr]] = expected.get(d[attr], 0) + 1
    assert groups == expected


def test_sum_is_linear_not_exponential():
    """Counting on a product of unions never enumerates tuples."""
    k = 12
    db_rows = [(i,) for i in range(10)]
    from repro.relational.database import Database

    db = Database()
    for i in range(k):
        db.add_rows(f"U{i}", (f"u{i}",), db_rows)
    fr = FDB(db).evaluate(Query.make(db.names))
    # 10^12 tuples; enumeration would be impossible.
    assert fr.count() == 10**k
    assert fr.sum("u0") == 45 * 10 ** (k - 1)
    assert fr.group_count("u3")[7] == 10 ** (k - 1)
