"""The network tier: protocol framing, server robustness, client,
remote execution.

The evaluation-correctness side (served results == every in-process
engine) lives in tests/test_differential.py per the PR-1 policy; this
file covers the protocol-level contracts: framing round trips,
truncated/corrupt/oversized frames, mid-query disconnects (must error
cleanly, never hang the server), pipelining, backpressure, STATS,
graceful drain, and RemoteExecutor degradation.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import persist
from repro.net import (
    NetError,
    ProtocolError,
    RemoteExecutor,
    RemoteSession,
    ServerThread,
    parse_address,
)
from repro.net import protocol
from repro.query.parser import parse_query
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import random_database, random_spj_queries


def _database(seed: int = 61):
    return random_database(
        relations=3, attributes=6, tuples=6, domain=4, seed=seed
    )


@pytest.fixture()
def served():
    """A live server over a small random database."""
    session = QuerySession(_database(), encoding="arena")
    with ServerThread(session) as server:
        yield server
    # Gauge hygiene: after the drain every admission and connection
    # must have retired -- exceptional paths included -- or the
    # pending/active gauges would drift and poison later snapshots.
    stats = server.server.stats
    assert stats.active_connections == 0
    assert stats.pending == 0


# -- protocol framing --------------------------------------------------------


def test_frame_round_trip():
    frame = protocol.encode_frame(
        "query", {"id": 7, "sql": "SELECT a00 FROM R0"}, b"\x01\x02"
    )
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    kind, header, payload = protocol.decode_body(frame[4:])
    assert kind == "query"
    assert header == {"id": 7, "sql": "SELECT a00 FROM R0"}
    assert payload == b"\x01\x02"


def test_decode_rejects_foreign_and_corrupt_bodies():
    good = protocol.encode_frame("stats", {"id": 1})[4:]
    with pytest.raises(ProtocolError, match="magic"):
        protocol.decode_body(b"XX" + good[2:])
    with pytest.raises(ProtocolError, match="protocol version"):
        protocol.decode_body(good[:2] + b"\x99" + good[3:])
    with pytest.raises(ProtocolError, match="kind"):
        protocol.decode_body(
            protocol.MAGIC + bytes([protocol.PROTOCOL_VERSION, 4])
            + b"bogu" + struct.pack(">I", 2) + b"{}"
        )
    with pytest.raises(ProtocolError, match="truncated"):
        protocol.decode_body(good[: len(good) - 3])
    with pytest.raises(ProtocolError):
        protocol.decode_body(b"")


def test_result_pack_unpack_round_trips_all_payload_kinds():
    db = _database()
    query = parse_query("SELECT a00 FROM R0")
    with QuerySession(db, encoding="arena") as session:
        for engine in ("fdb", "flat", "sqlite"):
            result = session.run(query, engine=engine)
            meta, payload = protocol.pack_result(result)
            rebuilt = protocol.unpack_result(query, meta, payload)
            assert rebuilt.engine == result.engine
            assert rebuilt.rows() == result.rows()
            assert rebuilt.count() == result.count()


def test_parse_address_forms():
    assert parse_address(("h", 9)) == ("h", 9)
    assert parse_address("h:9") == ("h", 9)
    assert parse_address("h") == ("h", protocol.DEFAULT_PORT)
    with pytest.raises(ValueError):
        parse_address("h:not-a-port")


# -- server robustness -------------------------------------------------------


def _raw_connect(address):
    sock = socket.create_connection(address, timeout=10)
    frame = protocol.recv_frame(sock)  # consume the hello
    assert frame is not None and frame[0] == "hello"
    return sock


def test_hello_describes_the_database(served):
    with RemoteSession(served.address) as client:
        info = client.server_info
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["encoding"] == "arena"
        assert info["sharded"] is False
        assert info["relations"] == ["R0", "R1", "R2"]


def test_oversized_frame_errors_cleanly(served):
    sock = _raw_connect(served.address)
    try:
        sock.sendall(struct.pack(">I", 2**31))  # declare a huge frame
        kind, header, _ = protocol.recv_frame(sock)
        assert kind == "error"
        assert "exceeds" in header["error"]
        assert protocol.recv_frame(sock) is None  # server closed it
    finally:
        sock.close()
    # ... and the server is still perfectly serviceable.
    with RemoteSession(served.address) as client:
        assert client.run("SELECT a00 FROM R0").count() >= 0


def test_corrupt_frame_errors_cleanly(served):
    sock = _raw_connect(served.address)
    try:
        sock.sendall(struct.pack(">I", 8) + b"garbage!")
        kind, header, _ = protocol.recv_frame(sock)
        assert kind == "error"
        assert header["type"] == "ProtocolError"
        assert protocol.recv_frame(sock) is None
    finally:
        sock.close()
    with RemoteSession(served.address) as client:
        assert client.run("SELECT a00 FROM R0").count() >= 0


def test_truncated_frame_then_disconnect_is_clean(served):
    sock = _raw_connect(served.address)
    frame = protocol.encode_frame(
        "query", {"id": 1, "sql": "SELECT a00 FROM R0"}
    )
    sock.sendall(frame[: len(frame) // 2])  # die mid-frame
    sock.close()
    with RemoteSession(served.address) as client:
        assert client.run("SELECT a00 FROM R0").count() >= 0


def test_disconnect_mid_query_never_hangs_the_server(served):
    # Fire a query and vanish before the response can be written.
    sock = _raw_connect(served.address)
    sock.sendall(
        protocol.encode_frame(
            "query",
            {"id": 1, "sql": "SELECT * FROM R0, R1, R2"},
        )
    )
    sock.close()
    # The server must survive losing the response sink and keep
    # serving other clients promptly.
    with RemoteSession(served.address) as client:
        assert client.run("SELECT a00 FROM R0").count() >= 0
        stats = client.stats()
        assert stats["server"]["queries"] >= 2


def test_unknown_engine_is_a_per_request_error(served):
    with RemoteSession(served.address) as client:
        with pytest.raises(NetError, match="unknown engine"):
            client.run("SELECT a00 FROM R0", engine="warp")
        # the connection survives the rejected request
        assert client.run("SELECT a00 FROM R0").count() >= 0


def test_malformed_sql_is_a_per_request_error(served):
    from repro.query.query import QueryError

    with RemoteSession(served.address) as client:
        # The client parses before sending: malformed SQL fails fast,
        # locally, without burning a round trip.
        with pytest.raises(QueryError):
            client.run("SELEC nonsense")
        assert client.run("SELECT a00 FROM R0").count() >= 0
    # A peer that skips the client library still gets a per-request
    # error frame, not a dropped connection.
    sock = _raw_connect(served.address)
    try:
        sock.sendall(
            protocol.encode_frame(
                "query", {"id": 5, "sql": "SELEC nonsense"}
            )
        )
        kind, header, _ = protocol.recv_frame(sock)
        assert kind == "error"
        assert header["id"] == 5
        assert header["type"] == "QueryError"
        # connection still usable afterwards
        sock.sendall(
            protocol.encode_frame(
                "query", {"id": 6, "sql": "SELECT a00 FROM R0"}
            )
        )
        kind, header, _ = protocol.recv_frame(sock)
        assert kind == "result"
        assert header["id"] == 6
    finally:
        sock.close()


def test_pipelining_under_tight_admission_bound():
    session = QuerySession(_database(62), encoding="arena")
    with ServerThread(session, max_pending=2) as server:
        with RemoteSession(server.address) as client:
            queries = random_spj_queries(
                session.database,
                6,
                seed=63,
                max_relations=2,
                max_equalities=2,
            )
            # 18 requests in flight against a bound of 2: admission
            # backpressure must delay, never deadlock or drop.
            futures = [
                client.submit(q) for q in queries * 3
            ]
            results = [f.result(30) for f in futures]
            assert len(results) == 18
            stats = client.stats()
            assert stats["server"]["peak_pending"] <= 2
            assert stats["server"]["queries"] == 18
            assert stats["submitter"]["waves"] >= 1


def test_stats_document_shape(served):
    with RemoteSession(served.address) as client:
        client.run("SELECT a00 FROM R0")
        stats = client.stats()
        assert {"server", "session", "caches", "submitter"} <= set(stats)
        assert stats["server"]["connections"] >= 1
        assert stats["server"]["max_pending"] > 0
        assert stats["session"]["queries"] >= 1
        assert "plans" in stats["caches"]
        # The stats frame is the unified registry snapshot: the
        # instruments and the adapter tallies ride along.
        assert "metrics" in stats
        assert stats["metrics"]["query_seconds"]["count"] >= 1
        assert "adapter" in stats["caches"]


def test_metrics_frame_returns_snapshot_and_prometheus_text(served):
    with RemoteSession(served.address) as client:
        client.run("SELECT a00 FROM R0")
        snapshot = client.metrics()
        assert snapshot["metrics"]["query_seconds"]["count"] >= 1
        assert snapshot["session"]["queries"] >= 1
        text = client.metrics_text()
        assert "# TYPE repro_query_seconds histogram" in text
        assert "repro_server_requests" in text
        assert "repro_session_queries" in text


def test_prometheus_http_endpoint_scrapes():
    session = QuerySession(_database(91), encoding="arena")
    with ServerThread(session, metrics_port=0) as server:
        with RemoteSession(server.address) as client:
            client.run("SELECT a00 FROM R0")
        host, port = server.server.metrics_address
        import urllib.request

        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert "repro_query_seconds_bucket" in body
        assert "repro_server_requests" in body
        assert "repro_caches_adapter_to_arena_calls" in body
        # Anything else is a 404, and the server survives it.
        import urllib.error

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://{host}:{port}/nope", timeout=10
            )


def test_graceful_drain_completes_inflight_work():
    session = QuerySession(_database(64), encoding="arena")
    server = ServerThread(session)
    client = RemoteSession(server.address)
    futures = [
        client.submit("SELECT a00 FROM R0") for _ in range(5)
    ]
    server.stop()  # drain: admitted requests still get answers
    results = []
    for future in futures:
        try:
            results.append(future.result(30))
        except NetError:
            pass  # raced the drain before admission: rejected cleanly
    for result in results:
        assert result.count() >= 0
    # after drain the port no longer accepts connections
    with pytest.raises((NetError, OSError)):
        RemoteSession(server.address, connect_timeout=2)
    client.close()


def test_client_close_fails_pending_futures(served):
    client = RemoteSession(served.address)
    future = client.submit("SELECT * FROM R0, R1, R2")
    client.close()
    with pytest.raises(NetError):
        future.result(10)


class _Unclosable:
    """A socket wrapper whose shutdown/close are no-ops, so the reader
    thread stays blocked in recv and close() hits its join timeout."""

    def __init__(self, sock):
        self._sock = sock

    def shutdown(self, *args):
        pass

    def close(self):
        pass

    def __getattr__(self, name):
        return getattr(self._sock, name)


def test_close_with_stuck_reader_warns_and_fails_pending(served):
    from concurrent.futures import Future

    client = RemoteSession(served.address, reader_join_timeout=0.2)
    assert client.run("SELECT a00 FROM R0").count() >= 0
    real_sock = client._sock
    client._sock = _Unclosable(real_sock)
    stranded: Future = Future()
    with client._state_lock:
        client._pending[99999] = (stranded, ())
    try:
        with pytest.warns(RuntimeWarning, match="did not exit"):
            client.close()
        # The session says what happened instead of hanging or
        # silently leaking: defunct flag up, pending futures failed.
        assert client.defunct
        with pytest.raises(NetError, match="stuck reader"):
            stranded.result(0)
    finally:
        # Release the (daemon) reader thread: shutdown interrupts the
        # blocked recv; close alone would not.
        try:
            real_sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        real_sock.close()
    client._reader.join(timeout=10)
    assert not client._reader.is_alive()


def test_clean_close_is_not_defunct(served):
    client = RemoteSession(served.address)
    client.close()
    assert client.closed and not client.defunct


# -- RemoteExecutor ----------------------------------------------------------


def test_remote_executor_requires_workers():
    with pytest.raises(ValueError):
        RemoteExecutor([])


def test_remote_executor_degrades_to_local_when_workers_die(tmp_path):
    db = _database(65)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    worker_session = QuerySession(persist.load(path), encoding="arena")
    queries = random_spj_queries(
        db, 4, seed=66, max_relations=2, max_equalities=2
    )
    with QuerySession(sharded) as plain:
        expected = [plain.run(q).rows() for q in queries]
    server = ServerThread(worker_session)
    executor = RemoteExecutor([server.address], timeout=30)
    coordinator = QuerySession(sharded, executor=executor)
    try:
        first = coordinator.run_batch(queries[:2])
        assert [r.rows() for r in first] == expected[:2]
        assert executor.remote_tasks > 0
        assert executor.live_workers == 1
        server.stop()  # the whole fleet dies
        second = coordinator.run_batch(queries[2:])
        assert [r.rows() for r in second] == expected[2:]
        assert executor.live_workers == 0
        assert executor.local_fallbacks > 0
        assert "0 live" in executor.describe()
    finally:
        coordinator.close()


def test_remote_executor_skips_version_mismatched_workers(tmp_path):
    db = _database(67)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    stale = persist.load(path)
    stale.extend_rows("R0", [(99, 99)])  # bump the worker's version
    with ServerThread(QuerySession(stale)) as server:
        executor = RemoteExecutor([server.address], timeout=30)
        with QuerySession(sharded, executor=executor) as coordinator:
            query = random_spj_queries(
                db, 1, seed=68, max_relations=2, max_equalities=1
            )[0]
            with QuerySession(sharded) as plain:
                expected = plain.run(query).rows()
            assert coordinator.run(query).rows() == expected
            # the mismatched worker was never used remotely
            assert executor.remote_tasks == 0
            assert executor.local_fallbacks > 0


def test_version_mismatch_is_reprobed_when_the_coordinator_catches_up(
    tmp_path,
):
    """A mismatch is transient, not terminal: once the coordinator's
    version matches the worker's again, the next batch must go remote
    (the executor re-probes the hello instead of keeping the worker
    pinned dead forever)."""
    db = _database(70)
    sharded = ShardedDatabase.from_database(db, shards=2)
    path = str(tmp_path / "sharded")
    persist.save(sharded, path)
    ahead = persist.load(path)
    ahead.extend_rows("R0", [(99, 99)])  # worker runs one ahead
    with ServerThread(QuerySession(ahead, encoding="arena")) as server:
        executor = RemoteExecutor([server.address], timeout=30)
        with QuerySession(sharded, executor=executor) as coordinator:
            queries = random_spj_queries(
                db, 4, seed=72, max_relations=2, max_equalities=1
            )
            coordinator.run_batch(queries[:2])
            assert executor.remote_tasks == 0  # mismatched: skipped
            assert executor.local_fallbacks > 0
            # The coordinator applies the same mutation; versions now
            # agree.  Fresh queries, so the delta-maintained result
            # cache cannot satisfy the batch without fan-out.
            sharded.extend_rows("R0", [(99, 99)])
            results = coordinator.run_batch(queries[2:])
            assert executor.remote_tasks > 0
            assert executor.live_workers == 1
            with QuerySession(ahead) as plain:
                expected = [plain.run(q).rows() for q in queries[2:]]
            assert [r.rows() for r in results] == expected


def test_cli_batch_connect(served, capsys):
    from repro.cli import main

    host, port = served.address
    rc = main(
        [
            "batch",
            "--connect",
            f"{host}:{port}",
            "--sql",
            "SELECT a00 FROM R0",
            "SELECT a00 FROM R0",
            "-v",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "remote" in out
    assert "batch-deduplicated" in out
    assert "server:" in out


def test_oversized_response_degrades_to_per_request_error():
    """A response bigger than max_frame must become an error frame,
    never a connection-killing oversized frame."""
    session = QuerySession(_database(69), encoding="arena")
    with ServerThread(session, max_frame=512) as server:
        with RemoteSession(server.address, max_frame=512) as client:
            # The cartesian product result blob exceeds 512 bytes ...
            with pytest.raises(NetError, match="exceeds"):
                client.run("SELECT * FROM R0, R1, R2")
            # ... but the connection survives, and small results pass.
            assert client.run("SELECT a00 FROM R0") is not None


def test_run_timeout_raises_neterror_and_releases_the_slot(served):
    # Delay the response through a proxy rather than racing a zero
    # timeout: on localhost the server can answer inside any window,
    # so timeout=0.0 flakes when the reader wins the race.
    from fault_injection import ChaosProxy

    proxy = ChaosProxy(served.address)
    try:
        client = RemoteSession(proxy.address, timeout=0.2)
        proxy.delay = 2.0
        with pytest.raises(NetError, match="within"):
            client.run("SELECT a00 FROM R0")
        with client._state_lock:
            assert not client._pending  # timed-out entry was released
        proxy.delay = 0.0
        client.timeout = 30.0
        assert client.run("SELECT a00 FROM R0").count() >= 0
        client.close()
    finally:
        proxy.close()
