"""Unit tests for push-up and normalisation (Section 3.1)."""

import pytest

from repro.core.build import factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.ops import (
    normalise,
    normalise_tree,
    push_up,
    push_up_tree,
    pushable_nodes,
    OperatorError,
)
from repro.relational.relation import Relation
from tests.conftest import assignments


def denormalised_fr():
    """R(a,b) x S(c): c artificially nested under b."""
    r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    s = Relation.from_rows("S", ("c",), [(5,), (6,)])
    tree = FTree.from_nested(
        [("a", [("b", [("c", [])])])],
        edges=[{"a", "b"}, {"c"}],
    )
    data = factorise([r, s], tree)
    return FactorisedRelation(tree, data)


def test_pushable_nodes_detects_independent_subtree():
    fr = denormalised_fr()
    labels = [sorted(n.label) for n in pushable_nodes(fr.tree)]
    assert labels == [["c"]]


def test_push_up_tree_shape():
    fr = denormalised_fr()
    out = push_up_tree(fr.tree, "c")
    # c becomes a sibling of b (child of a).
    assert out.parent_of(out.node_of("c")).label == frozenset({"a"})


def test_push_up_data_preserves_relation_and_shrinks_size():
    fr = denormalised_fr()
    before = assignments(fr)
    size_before = fr.size()
    out = push_up(fr, "c").validate()
    assert assignments(out) == before
    assert out.size() < size_before  # c-union factored out once per a


def test_push_up_illegal_on_root():
    fr = denormalised_fr()
    with pytest.raises(OperatorError):
        push_up(fr, "a")


def test_push_up_illegal_when_dependent():
    fr = denormalised_fr()
    with pytest.raises(OperatorError):
        push_up(fr, "b")  # b depends on a through edge {a, b}


def test_normalise_reaches_fixpoint():
    fr = denormalised_fr()
    out = normalise(fr).validate()
    assert out.tree.is_normalised()
    assert assignments(out) == assignments(fr)
    # Normalising again changes nothing.
    again = normalise(out)
    assert again.tree.key() == out.tree.key()
    assert again.data == out.data


def test_normalise_tree_trace_replayable():
    fr = denormalised_fr()
    tree, trace = normalise_tree(fr.tree)
    assert tree.is_normalised()
    assert len(trace) >= 1
    replayed = fr.tree
    for attr in trace:
        replayed = push_up_tree(replayed, attr)
    assert replayed.key() == tree.key()


def test_example7_two_step_normalisation():
    """Example 7: E floats above {D,D'}, then {D,D'} floats above A."""
    edges = [
        {"A", "B"},
        {"B2", "C"},
        {"C2", "D"},
        {"D2", "E"},
    ]
    tree = FTree.from_nested(
        [
            (
                ("B", "B2"),
                [
                    (
                        "A",
                        [
                            (
                                ("D", "D2"),
                                [(("C", "C2"), []), ("E", [])],
                            )
                        ],
                    )
                ],
            )
        ],
        edges=edges,
    )
    # Wait -- in the paper E hangs under {D,D'}; C,C' under {D,D'}?
    # Fig: B,B' -> A -> D,D' -> (C,C' and E).  Build exactly that:
    tree = FTree.from_nested(
        [
            (
                ("B", "B2"),
                [
                    (
                        "A",
                        [
                            (
                                ("D", "D2"),
                                [
                                    (("C", "C2"), []),
                                    ("E", []),
                                ],
                            )
                        ],
                    )
                ],
            )
        ],
        edges=edges,
    )
    normalised, _ = normalise_tree(tree)
    assert normalised.is_normalised()
    # Final shape: B,B' with children A and D,D'; D,D' has C,C' and E.
    root = normalised.roots[0]
    assert root.label == frozenset({"B", "B2"})
    child_labels = {frozenset(c.label) for c in root.children}
    assert frozenset({"A"}) in child_labels
    assert frozenset({"D", "D2"}) in child_labels
    dd = normalised.node_of("D")
    dd_children = {frozenset(c.label) for c in dd.children}
    assert dd_children == {
        frozenset({"C", "C2"}),
        frozenset({"E"}),
    }


def test_push_up_on_empty_relation():
    fr = denormalised_fr()
    empty = FactorisedRelation(fr.tree, None)
    out = push_up(empty, "c")
    assert out.is_empty()
    assert out.tree.key() == push_up_tree(fr.tree, "c").key()
