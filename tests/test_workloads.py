"""Unit tests for the Section 5 workload generators."""

import pytest

from repro.query.equivalence import UnionFind
from repro.workloads import (
    attribute_name,
    combinatorial_database,
    grocery_database,
    query_q1,
    random_database,
    random_equalities,
    random_followup_equalities,
    random_query,
    split_attributes,
    tree_t1,
    zipf_values,
)


def test_attribute_names_are_stable():
    assert attribute_name(0) == "a00"
    assert attribute_name(12) == "a12"


def test_split_attributes_uniform():
    parts = split_attributes(10, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    flat = [a for part in parts for a in part]
    assert flat == [attribute_name(i) for i in range(10)]


def test_split_attributes_rejects_impossible():
    with pytest.raises(ValueError):
        split_attributes(2, 3)


def test_random_database_shape():
    db = random_database(4, 10, 25, domain=7, seed=1)
    assert len(db) == 4
    assert len(db.attributes()) == 10
    for relation in db:
        assert relation.cardinality <= 25  # dedup may shrink
        for row in relation:
            assert all(1 <= v <= 7 for v in row)


def test_random_database_reproducible():
    a = random_database(3, 9, 20, seed=42)
    b = random_database(3, 9, 20, seed=42)
    for name in a.names:
        assert list(a[name]) == list(b[name])


def test_random_database_distributions_differ():
    uniform = random_database(1, 2, 500, seed=7, distribution="uniform")
    zipf = random_database(1, 2, 500, seed=7, distribution="zipf")
    assert list(uniform["R0"]) != list(zipf["R0"])


def test_zipf_is_skewed():
    import random as stdlib_random

    values = zipf_values(stdlib_random.Random(0), 5000, 100)
    ones = values.count(1)
    hundreds = values.count(100)
    assert ones > 20 * max(hundreds, 1)


def test_random_equalities_nonredundant():
    db = random_database(3, 9, 10, seed=2)
    eqs = random_equalities(db, 5, seed=3)
    assert len(eqs) == 5
    uf = UnionFind(db.attributes())
    for a, b in eqs:
        assert uf.union(a, b)  # each merge must be fresh


def test_random_equalities_limit():
    db = random_database(2, 4, 5, seed=1)
    with pytest.raises(ValueError):
        random_equalities(db, 4, seed=1)  # at most A-1 = 3


def test_random_query_covers_all_relations():
    db = random_database(3, 9, 10, seed=5)
    q = random_query(db, 2, seed=6)
    assert set(q.relations) == set(db.names)
    assert len(q.equalities) == 2


def test_combinatorial_database_matches_paper_spec():
    db = combinatorial_database(seed=9)
    sizes = sorted(r.cardinality for r in db)
    arities = sorted(r.schema.arity for r in db)
    assert arities == [2, 2, 3, 3]
    # 64 and 512 rows before dedup; dedup may shrink slightly.
    assert sizes[0] <= 64 and sizes[-1] <= 512
    assert len(db.attributes()) == 10
    for relation in db:
        for row in relation:
            assert all(1 <= v <= 20 for v in row)


def test_random_followup_equalities_merge_distinct_classes():
    tree = tree_t1()
    eqs = random_followup_equalities(tree, 2, seed=4)
    assert len(eqs) == 2
    for a, b in eqs:
        assert tree.node_of(a).label != tree.node_of(b).label


def test_random_followup_equalities_limit():
    tree = tree_t1()  # 4 nodes -> at most 3 merges
    with pytest.raises(ValueError):
        random_followup_equalities(tree, 4, seed=0)


def test_grocery_matches_figure1():
    db = grocery_database()
    assert db["Orders"].cardinality == 5
    assert db["Store"].cardinality == 6
    assert db["Disp"].cardinality == 4
    assert db["Produce"].cardinality == 4
    assert db["Serve"].cardinality == 5
    q = query_q1()
    q.validate_against(db.schema())
