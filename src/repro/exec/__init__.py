"""The execution layer: strategies for running compiled queries.

Sits between the storage layer (:mod:`repro.storage`) and the serving
layer (:mod:`repro.service`): sessions compile and cache plans, then
hand the actual evaluation to an :class:`Executor` -- serial
in-process, or parallel over a worker pool with per-shard fan-out.
"""

from repro.exec.executor import (
    POOL_KINDS,
    Executor,
    ParallelExecutor,
    SerialExecutor,
)

__all__ = [
    "POOL_KINDS",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
]
