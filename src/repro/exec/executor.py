"""Executors: the strategy objects that run compiled queries.

The serving layer (:mod:`repro.service`) owns *what* to run -- plan
caching, deduplication, fallback routing -- and delegates *how* to run
it to an :class:`Executor`:

- :class:`SerialExecutor` evaluates one query at a time in the calling
  process (the semantics this repository always had);
- :class:`ParallelExecutor` fans work out over a process pool (thread
  pool where processes are unavailable): cache-missed queries are
  *compiled* in parallel (Figure 9: the optimiser dominates per-query
  cost, so parallelising it is what moves throughput), then executed
  in parallel -- per query on a flat database, per (query, shard) on a
  :class:`~repro.storage.ShardedDatabase`, whose partial factorised
  results are unioned via :mod:`repro.ops.union` before projection.

Executors never construct result objects themselves; they hand
factorised results back through the session's wrapper hooks, keeping
the layering storage -> execution -> serving acyclic.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import worker
from repro.obs import trace as obs_trace
from repro.query.query import Query
from repro.storage.sharded import ShardedDatabase

#: Accepted ``pool`` arguments for :class:`ParallelExecutor`.
POOL_KINDS = ("auto", "process", "thread")


class Executor:
    """How a session evaluates its (already deduplicated) queries.

    The ``session`` argument of :meth:`execute` is a
    :class:`~repro.service.session.QuerySession`; executors use its
    documented executor hooks (``lookup_plan`` / ``store_plan`` /
    ``_execute_serial`` / ``_wrap_fdb_result`` / ``_fallback_result``
    / ``_serve_cached`` / ``_cache_result``) and never touch engines
    directly.
    """

    name = "base"

    def execute(self, session, queries: Sequence[Query], engine: str):
        """Evaluate ``queries`` (unique within the call), returning
        results in order."""
        raise NotImplementedError

    def invalidate(self) -> None:
        """The session's database version moved; drop derived state."""

    def close(self) -> None:
        """Release pools and other resources (idempotent)."""

    def describe(self) -> str:
        return self.name


class SerialExecutor(Executor):
    """One query at a time, in-process -- the reference semantics."""

    name = "serial"

    def execute(self, session, queries: Sequence[Query], engine: str):
        return [
            session._execute_serial(query, engine) for query in queries
        ]


class ParallelExecutor(Executor):
    """Fan queries (and shards) out over a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.
    pool:
        ``"process"`` (real parallelism; the database snapshot is
        shipped to each worker once per version), ``"thread"``
        (correctness-only fallback, GIL-bound), or ``"auto"`` (probe
        for process support, fall back to threads).

    The pool is built lazily against a ``(database, version)`` token
    and discarded whenever the version moves, so workers never serve
    stale snapshots.  ``flat`` and ``sqlite`` engine requests are not
    parallelised -- they run through the session's serial path.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        pool: str = "auto",
    ) -> None:
        if pool not in POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {pool!r}; pick one of {POOL_KINDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(os.cpu_count() or 2, 8)
        self.requested_pool = pool
        #: Resolved pool kind ("process"/"thread"), set on first use.
        self.pool_kind: Optional[str] = None
        self._pool = None
        self._token: Optional[Tuple[int, int]] = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self, session) -> None:
        token = (id(session.database), session.database.version)
        if self._pool is not None and self._token == token:
            return
        self.close()
        if self.requested_pool in ("auto", "process"):
            pool = None
            try:
                pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=worker.init_worker,
                    initargs=(
                        session.database,
                        session.plan_search,
                        session.cost_model,
                        session.check_invariants,
                        session.encoding,
                    ),
                )
                pool.submit(worker.ping).result(timeout=60)
                self._pool, self.pool_kind = pool, "process"
            except Exception:
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                if self.requested_pool == "process":
                    raise
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers
                )
                self.pool_kind = "thread"
        else:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            self.pool_kind = "thread"
        self._token = token

    def invalidate(self) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._token = None

    def describe(self) -> str:
        kind = self.pool_kind or self.requested_pool
        return f"parallel ({kind} pool, {self.max_workers} workers)"

    # -- task submission (process pools use the shipped snapshot) ----------

    def _submit_compile(self, session, query: Query) -> Future:
        if self.pool_kind == "process":
            return self._pool.submit(worker.compile_task, query)
        return self._pool.submit(
            partial(
                worker.compile_direct,
                session.database,
                session.plan_search,
                session.cost_model,
                session.check_invariants,
                query,
                statistics=session._fdb._stats,
            )
        )

    def _submit_full(self, session, query: Query, tree) -> Future:
        # Workers return the *unprojected* join result; the
        # coordinator caches it for delta maintenance, then projects.
        # The active trace context (a plain dict) rides along so
        # worker-side spans come back correlated.
        ctx = obs_trace.context()
        if self.pool_kind == "process":
            return self._pool.submit(worker.join_task, query, tree, ctx)
        return self._pool.submit(
            partial(
                worker.traced_call,
                ctx,
                worker.evaluate_join,
                session.database,
                session.check_invariants,
                query,
                tree,
                session.encoding,
            )
        )

    def _submit_shard(
        self, session, query: Query, tree, index: int, fanout: str
    ) -> Future:
        ctx = obs_trace.context()
        if self.pool_kind == "process":
            return self._pool.submit(
                worker.shard_task, query, tree, index, fanout, ctx
            )
        return self._pool.submit(
            partial(
                worker.traced_call,
                ctx,
                worker.evaluate_shard,
                session.database,
                session.check_invariants,
                query,
                tree,
                index,
                fanout,
                session.encoding,
            )
        )

    # -- execution ---------------------------------------------------------

    def execute(self, session, queries: Sequence[Query], engine: str):
        if not queries:
            return []
        if engine in ("flat", "sqlite"):
            # Nothing to parallelise: these engines exist as cross
            # checks, not throughput paths.
            return [
                session._execute_serial(query, engine)
                for query in queries
            ]
        self._ensure_pool(session)

        # Wave 1: compile every cache miss concurrently.  Validation
        # stays in the coordinator so schema errors raise in the
        # caller, not inside a worker.
        plans: Dict[int, Tuple[object, bool]] = {}
        pending: List[Tuple[int, Future]] = []
        for i, query in enumerate(queries):
            plan = session.lookup_plan(query)
            if plan is not None:
                plans[i] = (plan, True)
            else:
                query.validate_against(session.database.schema())
                pending.append((i, self._submit_compile(session, query)))
        if pending:
            with obs_trace.span("compile-wave", misses=len(pending)):
                for i, future in pending:
                    plans[i] = (
                        session.store_plan(queries[i], future.result()),
                        False,
                    )

        # Wave 2: fan execution out -- per query, or per (query, shard)
        # on a sharded store.  Explosion fallbacks run serially in the
        # coordinator (they are flat-engine work by definition).
        database = session.database
        sharded = (
            isinstance(database, ShardedDatabase)
            and database.shard_count > 1
        )
        jobs: List[Tuple[str, object]] = []
        for i, query in enumerate(queries):
            plan, hit = plans[i]
            if engine == "auto" and session._would_explode(plan):
                jobs.append(("fallback", None))
                continue
            # Delta-maintained result cache: a warm (or caught-up)
            # entry skips evaluation entirely -- nothing to fan out.
            serve_start = time.perf_counter()
            served = session._serve_cached(query)
            if served is not None:
                jobs.append(
                    ("served", (served, time.perf_counter() - serve_start))
                )
            elif sharded:
                fanout = database.fanout_relation(query.relations)
                jobs.append(
                    (
                        "shards",
                        [
                            self._submit_shard(
                                session, query, plan.tree, s, fanout
                            )
                            for s in range(database.shard_count)
                        ],
                    )
                )
            else:
                jobs.append(
                    ("full", self._submit_full(session, query, plan.tree))
                )

        # Gather.  Reported ``elapsed`` is evaluation time only --
        # worker-side for full tasks, critical path (slowest shard)
        # plus recombination for sharded ones; queueing behind other
        # queries and the shared compile wave are excluded, keeping
        # per-query numbers comparable with the serial executor's.
        results = []
        for i, query in enumerate(queries):
            plan, hit = plans[i]
            kind, payload = jobs[i]
            if kind == "fallback":
                results.append(
                    session._fallback_result(
                        query, time.perf_counter(), cached=hit
                    )
                )
                continue
            if kind == "served":
                fr, elapsed = payload
                results.append(
                    session._wrap_fdb_result(
                        query, fr, cached=True, elapsed=elapsed
                    )
                )
                continue
            trace = obs_trace.current()
            if kind == "full":
                elapsed, fr, records = payload.result()
                if trace is not None and records:
                    trace.extend(records, prefix="worker:")
                finish_start = time.perf_counter()
                session._cache_result(query, plan.tree, fr)
                fr = worker.project_result(
                    fr, query, session.check_invariants
                )
                elapsed += time.perf_counter() - finish_start
            else:
                parts = [future.result() for future in payload]
                if trace is not None:
                    for _, _, records in parts:
                        if records:
                            trace.extend(records, prefix="worker:")
                combine_start = time.perf_counter()
                fr = worker.combine_shards(
                    [part for _, part, _ in parts],
                    query,
                    session.check_invariants,
                    project=False,
                )
                session._cache_result(query, plan.tree, fr)
                fr = worker.project_result(
                    fr, query, session.check_invariants
                )
                elapsed = max(seconds for seconds, _, _ in parts) + (
                    time.perf_counter() - combine_start
                )
            results.append(
                session._wrap_fdb_result(
                    query, fr, cached=hit, elapsed=elapsed
                )
            )
        return results
