"""Pool-worker entry points for the parallel executor.

A :class:`~repro.exec.executor.ParallelExecutor` ships the database to
each worker process **once** (via the pool initializer) and afterwards
sends only small task tuples -- (query, f-tree, shard index) -- so the
per-task pickling cost stays independent of the data size.  The
``*_task`` functions below read that per-process state; the
``*_direct`` functions take the database explicitly and back both the
thread-pool fallback (same process, no globals needed) and unit tests.

Workers are stateless beyond the database snapshot: a mutation bumps
``Database.version`` in the coordinator, which discards the pool and
spawns a fresh one against the new snapshot (see
``ParallelExecutor._ensure_pool``).
"""

from __future__ import annotations

import time
import weakref
from typing import Dict, List, Optional, Tuple

from repro import ops
from repro.obs import trace as obs_trace
from repro.core.arena import ValuePool
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.query.query import Query
from repro.storage.sharded import ShardedDatabase

#: Per-process state, populated by :func:`init_worker`.
_STATE: Dict[str, object] = {}

#: Per-process shared value pools, one per database snapshot: every
#: arena built against the same snapshot (all shards, all queries)
#: interns into one pool, so per-shard results recombine by id in
#: ``ops.union`` without re-interning.  Weakly keyed so a discarded
#: snapshot releases its pool; keyed by version so a mutated database
#: gets a fresh pool instead of accreting dead values.
_POOLS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_pool_for(database) -> ValuePool:
    """The process-wide shared intern pool for ``database``."""
    version = getattr(database, "version", None)
    cached = _POOLS.get(database)
    if cached is not None and cached[0] == version:
        return cached[1]
    pool = ValuePool()
    try:
        _POOLS[database] = (version, pool)
    except TypeError:  # not weak-referenceable: fall back, uncached
        pass
    return pool


def init_worker(
    database,
    plan_search: str,
    cost_model: str,
    check_invariants: bool,
    encoding: str = "object",
) -> None:
    """Pool initializer: build one engine per worker process."""
    _STATE["database"] = database
    _STATE["check_invariants"] = check_invariants
    _STATE["encoding"] = encoding
    _STATE["engine"] = FDB(
        database,
        plan_search=plan_search,
        cost_model=cost_model,
        check_invariants=check_invariants,
        encoding=encoding,
    )


def ping() -> bool:
    """Pool liveness probe (process pools may be unavailable in
    restricted sandboxes; the executor probes before committing)."""
    return True


def timed_call(fn, *args) -> Tuple[float, object]:
    """Run ``fn`` and return (worker-side seconds, result).

    Per-query timings under a pool cannot be read off the coordinator
    clock (every future's completion time includes unrelated queueing),
    so evaluation tasks time themselves.
    """
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def traced_call(
    ctx: Optional[dict], fn, *args
) -> Tuple[float, object, List[dict]]:
    """:func:`timed_call` under a fresh worker-side trace.

    Contextvars do not cross the pool boundary, so the coordinator
    ships ``trace.context()`` (a plain dict) and the worker seeds a
    local :class:`~repro.obs.trace.Trace` from it.  The returned span
    records are plain dicts -- picklable -- for the coordinator to
    :meth:`~repro.obs.trace.Trace.extend` back into its own trace.
    ``ctx=None`` still traces (records are cheap and the caller may
    drop them); the shared trace id is simply absent.
    """
    trace = obs_trace.Trace(trace_id=(ctx or {}).get("id"))
    with obs_trace.activate(trace):
        start = time.perf_counter()
        result = fn(*args)
        seconds = time.perf_counter() - start
    return seconds, result, trace.records


def compile_task(query: Query) -> FTree:
    return _STATE["engine"].optimal_tree(query)


def execute_task(
    query: Query, tree: FTree
) -> Tuple[float, FactorisedRelation]:
    return timed_call(
        evaluate_full,
        _STATE["database"],
        bool(_STATE["check_invariants"]),
        query,
        tree,
        str(_STATE.get("encoding", "object")),
    )


def join_task(
    query: Query, tree: FTree, ctx: Optional[dict] = None
) -> Tuple[float, FactorisedRelation, List[dict]]:
    """Like :func:`execute_task` but **without** the projection, so the
    coordinator can cache the join result for delta maintenance
    (:mod:`repro.ivm`) before projecting.  ``ctx`` carries the
    coordinator's trace context; worker-side spans come back as the
    third tuple element."""
    return traced_call(
        ctx,
        evaluate_join,
        _STATE["database"],
        bool(_STATE["check_invariants"]),
        query,
        tree,
        str(_STATE.get("encoding", "object")),
    )


def shard_task(
    query: Query, tree: FTree, index: int, fanout: str,
    ctx: Optional[dict] = None,
) -> Tuple[float, FactorisedRelation, List[dict]]:
    return traced_call(
        ctx,
        evaluate_shard,
        _STATE["database"],
        bool(_STATE["check_invariants"]),
        query,
        tree,
        index,
        fanout,
        str(_STATE.get("encoding", "object")),
    )


# -- direct variants (thread fallback, tests) ------------------------------


def compile_direct(
    database,
    plan_search: str,
    cost_model: str,
    check_invariants: bool,
    query: Query,
    statistics=None,
) -> FTree:
    engine = FDB(
        database,
        plan_search=plan_search,
        cost_model=cost_model,
        check_invariants=check_invariants,
        statistics=statistics if cost_model == "estimates" else None,
    )
    return engine.optimal_tree(query)


def evaluate_join(
    database,
    check_invariants: bool,
    query: Query,
    tree: FTree,
    encoding: str = "object",
) -> FactorisedRelation:
    """Evaluate one query over the full database **without** the
    projection: factorised join over the precompiled tree, constants
    inside.  The unprojected form is what the coordinator's result
    cache keeps for delta maintenance."""
    engine = FDB(
        database,
        check_invariants=check_invariants,
        encoding=encoding,
        shared_pool=(
            shared_pool_for(database) if encoding == "arena" else None
        ),
    )
    with obs_trace.span("factorise"):
        return engine.factorise_query(query, tree=tree)


def project_result(
    fr: FactorisedRelation, query: Query, check_invariants: bool
) -> FactorisedRelation:
    """Apply ``query``'s projection to a join result (no-op without
    one)."""
    if query.projection is not None:
        with obs_trace.span("project"):
            fr = ops.project(fr, query.projection)
        if check_invariants:
            fr.validate()
    return fr


def evaluate_full(
    database,
    check_invariants: bool,
    query: Query,
    tree: FTree,
    encoding: str = "object",
) -> FactorisedRelation:
    """Evaluate one query over the full database: factorised join over
    the precompiled tree, constants inside, projection applied."""
    fr = evaluate_join(database, check_invariants, query, tree, encoding)
    return project_result(fr, query, check_invariants)


def evaluate_shard(
    database: ShardedDatabase,
    check_invariants: bool,
    query: Query,
    tree: FTree,
    index: int,
    fanout: str,
    encoding: str = "object",
) -> FactorisedRelation:
    """Evaluate one query over one shard view, **without** projection.

    Projection must wait until the per-shard results are unioned (see
    :mod:`repro.ops.union`); the coordinator applies it once.
    """
    view = database.shard_view(index, fanout)
    engine = FDB(
        view,
        check_invariants=check_invariants,
        encoding=encoding,
        # Key the pool on the sharded parent: every shard of a
        # snapshot interns into the same pool, which is what makes the
        # coordinator-side union recombine ids verbatim.
        shared_pool=(
            shared_pool_for(database) if encoding == "arena" else None
        ),
    )
    with obs_trace.span("shard", shard=index):
        return engine.factorise_query(query, tree=tree)


def combine_shards(
    parts, query: Query, check_invariants: bool, project: bool = True
) -> FactorisedRelation:
    """Union per-shard factorised results and apply the projection.

    ``parts`` must hold one result per shard (an empty shard yields a
    ``data=None`` relation, never a missing entry) -- an empty list
    here would silently masquerade as an empty *result*, so it is an
    error instead.  ``project=False`` stops after the union, for
    coordinators that cache the unprojected join result
    (:mod:`repro.ivm`) before projecting.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("combine_shards needs at least one shard result")
    with obs_trace.span("union", parts=len(parts)):
        fr = ops.union_all(parts)
    if check_invariants:
        fr.validate()
    if not project:
        return fr
    return project_result(fr, query, check_invariants)
