"""FDB: a query engine for factorised relational databases.

A faithful reproduction of *Bakibayev, Olteanu, Zavodny: "FDB: A Query
Engine for Factorised Relational Databases", VLDB 2012*
(arXiv:1203.2672).

Quickstart
----------
>>> from repro import FDB, Database, parse_query
>>> db = Database()
>>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
>>> _ = db.add_rows("S", ("c", "d"), [(1, 5), (2, 5), (2, 6)])
>>> fdb = FDB(db)
>>> result = fdb.evaluate(parse_query("SELECT * FROM R, S WHERE b = c"))
>>> result.count()
5

Layers (bottom-up): :mod:`repro.relational` (the flat RDB substrate),
:mod:`repro.query` (SPJ query model), :mod:`repro.core` (f-trees and
f-representations), :mod:`repro.ops` (f-plan operators),
:mod:`repro.costs` (edge covers and ``s(T)``), :mod:`repro.optimiser`
(f-tree and f-plan optimisers), :mod:`repro.engine` (the FDB facade),
:mod:`repro.storage` (sharded physical organisation),
:mod:`repro.exec` (serial and pool-parallel executors),
:mod:`repro.service` (plan-cached query sessions for repeated
traffic), :mod:`repro.persist` (durable databases, serialised
factorised results and the cross-process plan store),
:mod:`repro.net` (the TCP serving tier: wire protocol, asyncio
server, client library, multi-host shard execution),
:mod:`repro.workloads` (Section 5 data generators).
"""

from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FNode, FTree
from repro.engine import FDB
from repro.exec import Executor, ParallelExecutor, SerialExecutor
from repro.persist import PersistError, PlanStore
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.relation import Relation
from repro.relational.sqlite_engine import SQLiteEngine
from repro.service.session import QuerySession, SessionResult, SessionStats
from repro.storage import ShardedDatabase

__version__ = "1.3.0"

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Database",
    "Executor",
    "FactorisedRelation",
    "FDB",
    "FNode",
    "FTree",
    "ParallelExecutor",
    "parse_query",
    "PersistError",
    "PlanStore",
    "Query",
    "QuerySession",
    "Relation",
    "RelationalEngine",
    "SerialExecutor",
    "SessionResult",
    "SessionStats",
    "ShardedDatabase",
    "SQLiteEngine",
    "__version__",
]
