"""The persistence layer: durable databases and cross-session plans.

Sits *beside* the storage layer rather than inside it: everything the
engine computes in memory -- flat and sharded databases, f-trees,
f-plans, and factorised query results themselves -- can be written to
disk in a versioned, checksummed binary format (:mod:`~repro.persist.
codec`) and read back byte-exactly in another process.  On top of the
codec, :class:`PlanStore` keeps compiled plans on disk keyed by
canonical query, schema fingerprint and database version, turning the
serving layer's in-memory plan cache into the hot tier of a two-tier,
cross-process cache (``QuerySession(plan_store=...)``).
"""

from repro.persist.codec import (
    FORMAT_VERSION,
    KINDS,
    MAGIC,
    MANIFEST_NAME,
    PersistError,
    inspect,
    load,
    load_shard_manifest,
    save,
)
from repro.persist.store import PlanStore, schema_fingerprint

__all__ = [
    "FORMAT_VERSION",
    "KINDS",
    "MAGIC",
    "MANIFEST_NAME",
    "PersistError",
    "PlanStore",
    "inspect",
    "load",
    "load_shard_manifest",
    "save",
    "schema_fingerprint",
]
