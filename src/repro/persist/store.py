"""A disk-backed, key-addressed store of compiled plans.

PR 1/2 established (with the paper's Figure 9) that the optimiser
dominates per-query cost and amortised it *within* a process via the
session plan cache.  :class:`PlanStore` extends the amortisation
across sessions and processes: compiled f-trees are written to a
directory keyed on

- :meth:`repro.query.query.Query.canonical_key` -- so reformulated
  repeats share an entry,
- the database *schema fingerprint* -- so a store directory can serve
  several databases without cross-talk, and
- :attr:`repro.relational.database.Database.version` -- so plans
  compiled against mutated data are recognised as stale.

The first two are baked into the entry's file name (a SHA-256 digest);
the version travels in the entry header, so a lookup that finds an
entry for the right query and schema but the wrong version *evicts*
the file (stale plans are garbage, not history) and reports a miss.

The store is a lower cache tier, not a session cache replacement:
:class:`repro.service.session.QuerySession` keeps its in-memory LRU
:class:`~repro.service.cache.PlanCache` as the hot tier and treats the
store as write-through backing (see ``QuerySession.lookup_plan`` /
``store_plan``).

Concurrent use is safe in the usual cache sense: writes go through a
unique temporary file plus an atomic rename, readers see either the
whole entry or none, and a lost race merely costs a recompile.

The store can be *bounded* (``max_entries`` / ``max_bytes``): every
insert runs a garbage collection that evicts least-recently-used
entries (recency = file mtime; hits touch the file) until the bounds
hold again, so a long-lived store under an unbounded query stream
stays a cache instead of growing into an archive.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.core.ftree import FTree
from repro.persist import codec
from repro.persist.codec import PersistError
from repro.query.query import Query
from repro.relational.database import Database

#: File extension of store entries.
ENTRY_SUFFIX = ".plan.fdbp"


def schema_fingerprint(database: Database) -> str:
    """A stable digest of the database *schema* (names + attributes).

    Deliberately excludes the data: a plan store keyed on content
    would never hit after any mutation, while the schema plus the
    version check below gives exactly the staleness semantics the
    in-memory caches already use.
    """
    schema = sorted(
        (name, tuple(attrs)) for name, attrs in database.schema().items()
    )
    digest = hashlib.sha256(repr(schema).encode("utf-8"))
    return digest.hexdigest()


def _key_digest(query: Query, fingerprint: str) -> str:
    payload = repr((query.canonical_key(), fingerprint))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanStore:
    """Compiled plans on disk, shared across sessions and processes.

    Parameters
    ----------
    path:
        Directory holding the entries (created if missing).
    max_entries / max_bytes:
        Optional size bounds.  When an insert pushes the store past
        either bound, least-recently-used entries (by file mtime;
        lookups refresh it) are deleted until both hold.  ``None``
        (the default) keeps the store unbounded.

    >>> import tempfile
    >>> from repro.relational.database import Database
    >>> from repro.query.query import Query
    >>> from repro.core.ftree import FTree
    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 2)])
    >>> tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    >>> store = PlanStore(tempfile.mkdtemp())
    >>> q = Query.make(["R"])
    >>> store.get(q, db) is None
    True
    >>> store.put(q, db, tree)
    >>> store.get(q, db) == tree
    True
    """

    def __init__(
        self,
        path: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be positive or None, got {max_bytes}"
            )
        self.path = path
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        os.makedirs(path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.delta_hits = 0
        self.stale_evictions = 0
        self.gc_evictions = 0

    # -- addressing --------------------------------------------------------

    def _entry_path(self, query: Query, fingerprint: str) -> str:
        return os.path.join(
            self.path, _key_digest(query, fingerprint) + ENTRY_SUFFIX
        )

    # -- the store API -----------------------------------------------------

    def get(self, query: Query, database: Database) -> Optional[FTree]:
        """The stored plan for ``query`` over ``database``, or ``None``.

        A stored entry whose ``db_version`` lags the live database is
        served anyway when the gap is explained by recorded data-only
        deltas (``delta_hits``; plans are schema-level objects, see
        the inline note) and *stale* otherwise: deleted, and the
        lookup misses.  A corrupt entry raises :class:`PersistError`
        -- the store never silently returns a plan it cannot verify.
        """
        fingerprint = schema_fingerprint(database)
        path = self._entry_path(query, fingerprint)
        try:
            with open(path, "rb") as handle:
                kind, header, payload = codec.read_blob(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except PersistError as exc:
            raise PersistError(
                f"corrupt plan-store entry {os.path.basename(path)!r}: "
                f"{exc}"
            ) from exc
        if kind != "plan-entry":
            raise PersistError(
                f"plan-store entry {os.path.basename(path)!r} holds "
                f"{kind!r}, not a plan"
            )
        if header.get("fingerprint") != fingerprint:
            # Digest collision across schemas: treat as a miss.
            self.misses += 1
            return None
        entry_version = header.get("db_version")
        if entry_version != database.version:
            # Delta-aware staleness: an f-tree depends on the schema
            # and query structure, not on the rows, so a version gap
            # explained by recorded *data-only* deltas keeps the plan
            # valid (schema changes rotate the fingerprint and land on
            # a different file name).  Only an unexplainable gap --
            # truncated log, foreign timeline -- evicts.
            explainable = isinstance(
                entry_version, int
            ) and database.changes_since(entry_version) is not None
            if not explainable:
                self._evict(path)
                self.stale_evictions += 1
                self.misses += 1
                return None
            self.delta_hits += 1
        tree = codec.decode("ftree", {}, payload)
        self.hits += 1
        self._touch(path)
        return tree  # type: ignore[return-value]

    def put(
        self, query: Query, database: Database, tree: FTree
    ) -> None:
        """Store ``tree`` as the compiled plan of ``query``."""
        fingerprint = schema_fingerprint(database)
        header: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "db_version": database.version,
            "query": str(query),
        }
        payload = codec._encode_ftree(tree)
        out = io.BytesIO()
        codec.write_blob(out, "plan-entry", header, payload)
        fd, tmp = tempfile.mkstemp(
            dir=self.path, suffix=ENTRY_SUFFIX + ".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(out.getvalue())
            os.replace(tmp, self._entry_path(query, fingerprint))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.writes += 1
        self.collect()

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh an entry's recency (LRU clock = file mtime)."""
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - entry raced away
            pass

    # -- garbage collection ------------------------------------------------

    def _stat_entries(self) -> List[tuple]:
        """(mtime, name, bytes) per entry, least recently used first."""
        out = []
        for name in self.entries():
            try:
                stat = os.stat(os.path.join(self.path, name))
            except OSError:  # racing eviction by another process
                continue
            out.append((stat.st_mtime, name, stat.st_size))
        out.sort()
        return out

    def total_bytes(self) -> int:
        """Bytes currently held by the store's entries."""
        return sum(size for _, _, size in self._stat_entries())

    def collect(self) -> int:
        """Enforce the size bounds; returns how many entries were
        evicted.  Runs automatically after every :meth:`put`."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        entries = self._stat_entries()
        total = sum(size for _, _, size in entries)
        removed = 0
        while entries and (
            (
                self.max_entries is not None
                and len(entries) > self.max_entries
            )
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _, name, size = entries.pop(0)
            self._evict(os.path.join(self.path, name))
            total -= size
            removed += 1
        self.gc_evictions += removed
        return removed

    # -- introspection -----------------------------------------------------

    def entries(self) -> List[str]:
        """File names of the current entries (sorted)."""
        return sorted(
            name
            for name in os.listdir(self.path)
            if name.endswith(ENTRY_SUFFIX)
        )

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for name in self.entries():
            self._evict(os.path.join(self.path, name))
            removed += 1
        return removed

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "delta_hits": self.delta_hits,
            "stale_evictions": self.stale_evictions,
            "gc_evictions": self.gc_evictions,
            "size": len(self),
        }

    def describe(self) -> str:
        return f"plan store at {self.path} ({len(self)} entries)"
