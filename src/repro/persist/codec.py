"""The versioned binary on-disk format (the EMBANKS direction).

Every persisted object is one *blob*::

    +--------+---------+------+----------------+---------------------+
    | magic  | version | kind | header (JSON)  | payload (binary)    |
    | 4 B    | u16     | str8 | u32 len + data | u32 crc32 + u64 len |
    |        |         |      |                | + data              |
    +--------+---------+------+----------------+---------------------+

- ``magic`` is the four bytes ``FDBP`` -- anything else is not ours;
- ``version`` is :data:`FORMAT_VERSION`; readers reject other values
  (format evolution means bumping it and keeping a decoder per
  version, not silently re-interpreting bytes);
- ``kind`` (u8 length + ASCII) names the payload type -- one of
  :data:`KINDS` -- so a file is self-describing and ``load`` can
  dispatch without a filename convention;
- the *header* is a small JSON object with the schema-level facts
  (attribute names, relation names, database version, shard layout),
  readable without touching the payload;
- the *payload* carries the data itself in the compact value encoding
  below, guarded by a CRC32 and an explicit length, so truncation and
  bit-rot are detected before anything is decoded.

Values (the singletons of the paper's representations) are encoded
with one tag byte each: ``None``, booleans, integers (zig-zag LEB128
varints, arbitrary precision via a big-int escape), floats (IEEE-754
doubles) and UTF-8 strings.  That covers everything the engine's
relations can hold; exotic types raise :class:`PersistError` at save
time rather than round-tripping approximately.

A factorised representation is *already* the compressed form of its
relation, so the payload of a ``factorised`` blob is simply the
structured representation walked depth-first -- no further compression
pass is applied (see ``benchmarks/bench_persist.py`` for the size
comparison against the flat CSV equivalent).

An *arena*-encoded representation (:mod:`repro.core.arena`) gets its
own blob kind: the interned value pool is tag-encoded once, and the
per-node integer columns are written as raw little-endian int64 byte
runs.  Loading is therefore ~O(bytes) -- ``array.frombytes`` plus a
bounds check -- instead of an object-graph rebuild, which is the point
of persisting query results in the hot encoding.
"""

from __future__ import annotations

import io
import json
import mmap as mmap_module
import os
import shutil
import struct
import sys
import tempfile
import zlib
from array import array
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

try:  # optional: zero-copy mmap column views (stdlib path copies)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

from repro.core import arena as arena_mod
from repro.core.arena import ArenaRep
from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.optimiser.fplan import FPlan, Step
from repro.query.hypergraph import Hypergraph
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.storage.sharded import ShardedDatabase

MAGIC = b"FDBP"
FORMAT_VERSION = 1

#: Payload kinds a blob can carry.
KINDS = (
    "relation",
    "database",
    "ftree",
    "fplan",
    "factorised",
    "arena",
    "plan-entry",
    "shard-manifest",
)

#: File names inside a sharded-database directory.
MANIFEST_NAME = "manifest.fdbp"
SHARD_PATTERN = "shard-{index:04d}.fdbp"


class PersistError(ValueError):
    """Raised for unreadable, corrupt or incompatible persisted data."""


# -- value encoding ----------------------------------------------------------

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BIGINT = 6

#: Integers beyond this magnitude take the decimal big-int escape
#: (LEB128 of arbitrary precision works too, but a bound keeps the
#: varint loop trivially terminating on adversarial input).
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _write_varint(out: BinaryIO, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(src: BinaryIO) -> int:
    result = 0
    shift = 0
    while True:
        raw = src.read(1)
        if not raw:
            raise PersistError("truncated varint in payload")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 70:
            raise PersistError("varint overflow in payload")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def write_value(out: BinaryIO, value: object) -> None:
    """Encode one singleton value with its tag byte."""
    if value is None:
        out.write(bytes((_TAG_NONE,)))
    elif value is True:
        out.write(bytes((_TAG_TRUE,)))
    elif value is False:
        out.write(bytes((_TAG_FALSE,)))
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.write(bytes((_TAG_INT,)))
            _write_varint(out, _zigzag(value) & (2**64 - 1))
        else:
            digits = str(value).encode("ascii")
            out.write(bytes((_TAG_BIGINT,)))
            _write_varint(out, len(digits))
            out.write(digits)
    elif isinstance(value, float):
        out.write(bytes((_TAG_FLOAT,)))
        out.write(struct.pack(">d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(bytes((_TAG_STR,)))
        _write_varint(out, len(data))
        out.write(data)
    else:
        raise PersistError(
            f"cannot persist value of type {type(value).__name__}: "
            f"{value!r}"
        )


def read_value(src: BinaryIO) -> object:
    """Decode one tagged value."""
    raw = src.read(1)
    if not raw:
        raise PersistError("truncated value in payload")
    tag = raw[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return _unzigzag(_read_varint(src))
    if tag == _TAG_FLOAT:
        data = src.read(8)
        if len(data) != 8:
            raise PersistError("truncated float in payload")
        return struct.unpack(">d", data)[0]
    if tag == _TAG_STR:
        length = _read_varint(src)
        data = src.read(length)
        if len(data) != length:
            raise PersistError("truncated string in payload")
        return data.decode("utf-8")
    if tag == _TAG_BIGINT:
        length = _read_varint(src)
        data = src.read(length)
        if len(data) != length:
            raise PersistError("truncated big integer in payload")
        try:
            return int(data.decode("ascii"))
        except ValueError as exc:
            raise PersistError(f"malformed big integer {data!r}") from exc
    raise PersistError(f"unknown value tag {tag}")


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    _write_varint(out, len(data))
    out.write(data)


def _read_str(src: BinaryIO) -> str:
    length = _read_varint(src)
    data = src.read(length)
    if len(data) != length:
        raise PersistError("truncated string in payload")
    return data.decode("utf-8")


# -- blob container ----------------------------------------------------------


def write_blob(
    handle: BinaryIO, kind: str, header: Dict[str, Any], payload: bytes
) -> None:
    """Write one framed blob: magic, version, kind, header, payload."""
    if kind not in KINDS:
        raise PersistError(f"unknown blob kind {kind!r}")
    kind_bytes = kind.encode("ascii")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    handle.write(MAGIC)
    handle.write(struct.pack(">H", FORMAT_VERSION))
    handle.write(struct.pack(">B", len(kind_bytes)))
    handle.write(kind_bytes)
    handle.write(struct.pack(">I", len(header_bytes)))
    handle.write(header_bytes)
    handle.write(struct.pack(">I", zlib.crc32(payload)))
    handle.write(struct.pack(">Q", len(payload)))
    handle.write(payload)


def _exactly(handle: BinaryIO, n: int, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise PersistError(f"truncated file: short {what}")
    return data


def read_header(handle: BinaryIO) -> Tuple[str, Dict[str, Any]]:
    """Read magic, version, kind and header -- the payload untouched.

    This is the cheap half of :func:`read_blob`: inspecting a
    multi-gigabyte database file costs a few hundred bytes of I/O, not
    a full read-and-checksum pass.
    """
    magic = handle.read(4)
    if magic != MAGIC:
        raise PersistError(
            f"not an FDBP file (magic {magic!r}, expected {MAGIC!r})"
        )
    (version,) = struct.unpack(">H", _exactly(handle, 2, "format version"))
    if version != FORMAT_VERSION:
        raise PersistError(
            f"unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    (kind_len,) = struct.unpack(">B", _exactly(handle, 1, "kind length"))
    try:
        kind = _exactly(handle, kind_len, "kind").decode("ascii")
    except UnicodeDecodeError as exc:
        raise PersistError("malformed blob kind") from exc
    if kind not in KINDS:
        raise PersistError(f"unknown blob kind {kind!r}")
    (header_len,) = struct.unpack(">I", _exactly(handle, 4, "header length"))
    try:
        header = json.loads(
            _exactly(handle, header_len, "header").decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistError("malformed blob header") from exc
    if not isinstance(header, dict):
        raise PersistError("blob header must be a JSON object")
    return kind, header


def read_blob(handle: BinaryIO) -> Tuple[str, Dict[str, Any], bytes]:
    """Read and verify one framed blob; returns (kind, header, payload).

    Raises :class:`PersistError` for foreign files, unsupported format
    versions, malformed headers, truncation and checksum mismatches --
    a blob either decodes exactly or not at all.
    """
    kind, header = read_header(handle)
    (crc,) = struct.unpack(">I", _exactly(handle, 4, "payload checksum"))
    (length,) = struct.unpack(">Q", _exactly(handle, 8, "payload length"))
    payload = _exactly(handle, length, "payload")
    if zlib.crc32(payload) != crc:
        raise PersistError(
            "payload checksum mismatch: file is corrupt"
        )
    return kind, header, payload


# -- relations ---------------------------------------------------------------


def _encode_rows(out: BinaryIO, relation: Relation) -> None:
    """Row-count varint followed by every row's tagged values -- the
    one row codec shared by the relation and database blob kinds."""
    _write_varint(out, len(relation.rows))
    for row in relation.rows:
        for value in row:
            write_value(out, value)


def _decode_rows(src: BinaryIO, arity: int) -> List[Tuple[object, ...]]:
    count = _read_varint(src)
    return [
        tuple(read_value(src) for _ in range(arity))
        for _ in range(count)
    ]


def _encode_relation(relation: Relation) -> bytes:
    out = io.BytesIO()
    _encode_rows(out, relation)
    return out.getvalue()


def _relation_header(relation: Relation) -> Dict[str, Any]:
    return {
        "name": relation.name,
        "attributes": list(relation.attributes),
        "rows": len(relation),
    }


def _decode_relation(header: Dict[str, Any], payload: bytes) -> Relation:
    try:
        name = header["name"]
        attributes = tuple(header["attributes"])
        count = header["rows"]
    except (KeyError, TypeError) as exc:
        raise PersistError(f"malformed relation header: {header!r}") from exc
    src = io.BytesIO(payload)
    rows = _decode_rows(src, len(attributes))
    if len(rows) != count:
        raise PersistError(
            f"relation {name!r}: header says {count} rows, "
            f"payload says {len(rows)}"
        )
    if src.read(1):
        raise PersistError(f"relation {name!r}: trailing bytes in payload")
    # Rows were saved in the Relation's sorted order; re-sorting via
    # from_rows also re-checks the invariant cheaply.
    return Relation.from_rows(name, attributes, rows)


# -- databases ---------------------------------------------------------------


def _encode_database(db: Database) -> Tuple[Dict[str, Any], bytes]:
    out = io.BytesIO()
    relations = list(db)
    _write_varint(out, len(relations))
    for relation in relations:
        _write_str(out, relation.name)
        _write_varint(out, len(relation.attributes))
        for attr in relation.attributes:
            _write_str(out, attr)
        _encode_rows(out, relation)
    header = {
        "relations": {
            relation.name: list(relation.attributes)
            for relation in relations
        },
        "order": [relation.name for relation in relations],
        "db_version": db.version,
        "total_rows": db.total_size,
    }
    return header, out.getvalue()


def _decode_database(header: Dict[str, Any], payload: bytes) -> Database:
    src = io.BytesIO(payload)
    count = _read_varint(src)
    db = Database()
    for _ in range(count):
        name = _read_str(src)
        arity = _read_varint(src)
        attributes = tuple(_read_str(src) for _ in range(arity))
        db.add(
            Relation.from_rows(name, attributes, _decode_rows(src, arity))
        )
    if src.read(1):
        raise PersistError("database payload has trailing bytes")
    expected = header.get("total_rows")
    if expected is not None and db.total_size != expected:
        raise PersistError(
            f"database rows do not match header: "
            f"{db.total_size} != {expected}"
        )
    version = header.get("db_version")
    if isinstance(version, int):
        # Restore the mutation counter so version-keyed derived state
        # (plan stores, statistics) stays valid across save/load.
        db._version = version
    return db


# -- f-trees -----------------------------------------------------------------


def _encode_node(out: BinaryIO, node: FNode) -> None:
    _write_varint(out, len(node.label))
    for attr in sorted(node.label):
        _write_str(out, attr)
    out.write(bytes((1 if node.constant else 0,)))
    _write_varint(out, len(node.children))
    for child in node.children:
        _encode_node(out, child)


def _decode_node(src: BinaryIO) -> FNode:
    width = _read_varint(src)
    if width == 0:
        raise PersistError("f-tree node with empty label")
    label = {_read_str(src) for _ in range(width)}
    raw = src.read(1)
    if not raw:
        raise PersistError("truncated f-tree node")
    constant = bool(raw[0])
    children = [_decode_node(src) for _ in range(_read_varint(src))]
    return FNode(label, children, constant)


def _encode_ftree(tree: FTree) -> bytes:
    out = io.BytesIO()
    _write_varint(out, len(tree.roots))
    for root in tree.roots:
        _encode_node(out, root)
    edges = sorted(tuple(sorted(edge)) for edge in tree.edges)
    _write_varint(out, len(edges))
    for edge in edges:
        _write_varint(out, len(edge))
        for attr in edge:
            _write_str(out, attr)
    return out.getvalue()


def _ftree_header(tree: FTree) -> Dict[str, Any]:
    return {
        "attributes": sorted(tree.attributes()),
        "edges": len(tree.edges.edges),
    }


def _decode_ftree_from(src: BinaryIO) -> FTree:
    roots = [_decode_node(src) for _ in range(_read_varint(src))]
    edges = []
    for _ in range(_read_varint(src)):
        width = _read_varint(src)
        edges.append({_read_str(src) for _ in range(width)})
    return FTree(roots, Hypergraph(edges))


def _decode_ftree(payload: bytes) -> FTree:
    src = io.BytesIO(payload)
    tree = _decode_ftree_from(src)
    if src.read(1):
        raise PersistError("f-tree payload has trailing bytes")
    return tree


# -- f-plans -----------------------------------------------------------------


def _encode_fplan(plan: FPlan) -> Tuple[Dict[str, Any], bytes]:
    out = io.BytesIO()
    tree_bytes = _encode_ftree(plan.input_tree)
    _write_varint(out, len(tree_bytes))
    out.write(tree_bytes)
    _write_varint(out, len(plan.steps))
    for step in plan.steps:
        _write_str(out, step.kind)
        _write_varint(out, len(step.args))
        for arg in step.args:
            _write_str(out, arg)
    header = {
        "steps": [step.kind for step in plan.steps],
        "attributes": sorted(plan.input_tree.attributes()),
    }
    return header, out.getvalue()


def _decode_fplan(payload: bytes) -> FPlan:
    src = io.BytesIO(payload)
    tree_len = _read_varint(src)
    tree_bytes = src.read(tree_len)
    if len(tree_bytes) != tree_len:
        raise PersistError("truncated f-plan input tree")
    tree = _decode_ftree(tree_bytes)
    steps = []
    for _ in range(_read_varint(src)):
        kind = _read_str(src)
        argc = _read_varint(src)
        steps.append(Step(kind, tuple(_read_str(src) for _ in range(argc))))
    if src.read(1):
        raise PersistError("f-plan payload has trailing bytes")
    try:
        # FPlan re-applies every step to rebuild the intermediate
        # trees, so an inconsistent step sequence fails here, loudly.
        return FPlan(tree, steps)
    except ValueError as exc:
        raise PersistError(f"invalid persisted f-plan: {exc}") from exc


# -- factorised relations ----------------------------------------------------


def _encode_union(out: BinaryIO, union: UnionRep) -> None:
    _write_varint(out, len(union.entries))
    for value, child in union.entries:
        write_value(out, value)
        _encode_product(out, child)


def _encode_product(out: BinaryIO, product: ProductRep) -> None:
    _write_varint(out, len(product.factors))
    for union in product.factors:
        _encode_union(out, union)


def _decode_union(src: BinaryIO) -> UnionRep:
    count = _read_varint(src)
    entries = []
    for _ in range(count):
        value = read_value(src)
        entries.append((value, _decode_product(src)))
    return UnionRep(entries)


def _decode_product(src: BinaryIO) -> ProductRep:
    return ProductRep(
        [_decode_union(src) for _ in range(_read_varint(src))]
    )


def _encode_factorised(
    fr: FactorisedRelation,
) -> Tuple[Dict[str, Any], bytes]:
    out = io.BytesIO()
    tree_bytes = _encode_ftree(fr.tree)
    _write_varint(out, len(tree_bytes))
    out.write(tree_bytes)
    if fr.data is None:
        out.write(bytes((0,)))
    else:
        out.write(bytes((1,)))
        _encode_product(out, fr.data)
    header = {
        "attributes": list(fr.attributes),
        "empty": fr.data is None,
        "singletons": fr.size(),
    }
    return header, out.getvalue()


def _decode_factorised(payload: bytes) -> FactorisedRelation:
    src = io.BytesIO(payload)
    tree_len = _read_varint(src)
    tree_bytes = src.read(tree_len)
    if len(tree_bytes) != tree_len:
        raise PersistError("truncated factorised-relation tree")
    tree = _decode_ftree(tree_bytes)
    flag = src.read(1)
    if not flag:
        raise PersistError("truncated factorised-relation payload")
    data: Optional[ProductRep]
    data = None if flag[0] == 0 else _decode_product(src)
    if src.read(1):
        raise PersistError("factorised payload has trailing bytes")
    fr = FactorisedRelation(tree, data)
    try:
        fr.validate()
    except ValueError as exc:
        raise PersistError(
            f"persisted factorisation violates its invariants: {exc}"
        ) from exc
    return fr


# -- arena-encoded factorised relations --------------------------------------
#
# Columns are array('q') (exactly 8-byte signed on every CPython
# platform); the file format fixes little-endian so blobs are portable
# across hosts.

_BIG_ENDIAN = sys.byteorder == "big"


def _write_i64_column(out: BinaryIO, column: array) -> None:
    _write_varint(out, len(column))
    if _BIG_ENDIAN:  # pragma: no cover - little-endian dev machines
        column = array("q", column)
        column.byteswap()
    out.write(column.tobytes())


def _read_i64_column(src: BinaryIO) -> array:
    count = _read_varint(src)
    data = src.read(8 * count)
    if len(data) != 8 * count:
        raise PersistError("truncated arena column")
    column = array("q")
    column.frombytes(data)
    if _BIG_ENDIAN:  # pragma: no cover
        column.byteswap()
    return column


class _BufferReader:
    """A minimal binary reader over a memoryview (e.g. an mmap).

    ``read`` copies (for the small varint/value pieces the tagged
    decoders consume); ``view`` hands out zero-copy slices for the
    bulk integer columns.
    """

    __slots__ = ("_view", "_pos")

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self._pos = 0

    def read(self, n: int = -1) -> bytes:
        if n < 0:
            n = len(self._view) - self._pos
        data = bytes(self._view[self._pos : self._pos + n])
        self._pos += len(data)
        return data

    def view(self, n: int) -> memoryview:
        if self._pos + n > len(self._view):
            raise PersistError("truncated arena column")
        out = self._view[self._pos : self._pos + n]
        self._pos += n
        return out


def _read_i64_column_mapped(src: _BufferReader):
    """A column straight off a mapped buffer.

    With numpy the result is a zero-copy ``int64`` *view* into the
    mapping -- bytes are only paged in when a kernel touches them; the
    stdlib fallback copies into an ``array('q')`` (still one pass, no
    object decode).
    """
    count = _read_varint(src)
    raw = src.view(8 * count)
    if _np is not None and not _BIG_ENDIAN:
        return _np.frombuffer(raw, dtype="<i8")
    column = array("q")
    column.frombytes(raw)
    if _BIG_ENDIAN:  # pragma: no cover
        column.byteswap()
    return column


def _encode_arena(fr: FactorisedRelation) -> Tuple[Dict[str, Any], bytes]:
    out = io.BytesIO()
    tree_bytes = _encode_ftree(fr.tree)
    _write_varint(out, len(tree_bytes))
    out.write(tree_bytes)
    rep = fr.arena
    if rep is None:
        out.write(bytes((0,)))
        payload = out.getvalue()
        return (
            {
                "attributes": list(fr.attributes),
                "empty": True,
                "singletons": 0,
                "encoding": "arena",
            },
            payload,
        )
    out.write(bytes((1,)))
    _write_varint(out, len(rep.pool))
    for value in rep.pool:
        write_value(out, value)
    skel = rep.skel
    _write_varint(out, len(skel))
    for i in range(len(skel)):
        _write_i64_column(out, rep.values[i])
        for j in range(len(skel.children[i])):
            _write_i64_column(out, rep.child_lo[i][j])
            _write_i64_column(out, rep.child_hi[i][j])
    header = {
        "attributes": list(fr.attributes),
        "empty": False,
        "singletons": rep.singleton_count(),
        "encoding": "arena",
    }
    return header, out.getvalue()


def _decode_arena(payload: bytes) -> FactorisedRelation:
    return _decode_arena_from(io.BytesIO(payload), _read_i64_column)


def _decode_arena_mapped(view: memoryview) -> FactorisedRelation:
    return _decode_arena_from(_BufferReader(view), _read_i64_column_mapped)


def _decode_arena_from(src, read_column) -> FactorisedRelation:
    tree_len = _read_varint(src)
    tree_bytes = src.read(tree_len)
    if len(tree_bytes) != tree_len:
        raise PersistError("truncated arena-relation tree")
    tree = _decode_ftree(tree_bytes)
    flag = src.read(1)
    if not flag:
        raise PersistError("truncated arena payload")
    if flag[0] == 0:
        if src.read(1):
            raise PersistError("arena payload has trailing bytes")
        return FactorisedRelation(tree, arena=None)
    pool = [read_value(src) for _ in range(_read_varint(src))]
    skel = arena_mod._skeleton_of(tree)
    node_count = _read_varint(src)
    if node_count != len(skel):
        raise PersistError(
            f"arena payload has {node_count} node columns for a "
            f"{len(skel)}-node f-tree"
        )
    values: List[array] = []
    child_lo: List[List[array]] = []
    child_hi: List[List[array]] = []
    for i in range(node_count):
        values.append(read_column(src))
        los: List[array] = []
        his: List[array] = []
        for _ in skel.children[i]:
            los.append(read_column(src))
            his.append(read_column(src))
        child_lo.append(los)
        child_hi.append(his)
    if src.read(1):
        raise PersistError("arena payload has trailing bytes")
    rep = ArenaRep(skel, values, child_lo, child_hi, pool)
    # Flat integer bounds scans only (vectorised under numpy): loading
    # stays ~O(bytes).  Value-order validation is available explicitly
    # via FactorisedRelation.validate().
    try:
        arena_mod.validate_arena_bounds(tree, rep)
    except ValueError as exc:
        raise PersistError(
            f"persisted arena violates its invariants: {exc}"
        ) from exc
    return FactorisedRelation(tree, arena=rep)


# -- pooled arena payloads (the wire's shared value pool) --------------------
#
# A connection that streams many arena-encoded results (per-shard
# parts, batch answers, repeated queries) re-ships the same interned
# values over and over in every ``arena`` blob.  The *pooled* payload
# form below amortises that: both ends keep one value pool per
# connection, each payload carries only the values first seen on this
# connection (a contiguous *delta* of pool ids), and the integer
# columns reference the connection pool by id.  Decoded arenas all
# share the receiver's pool object, so client-side recombination
# (``ops.union`` over shard parts) merges columns by id without
# re-interning -- the wire analogue of the worker-process shared pool.
#
# The payload is self-checking (trailing CRC32) but *stateful*: it can
# only be decoded by the peer pool that has seen every earlier delta
# on the same connection, in order.  It is therefore a wire-only form,
# never written to disk, and both sides fall back to plain ``arena``
# blobs when either end does not opt in.


def _write_i64_any(out: BinaryIO, column) -> None:
    """Write an int64 column that may be array('q'), ndarray or any
    int iterable (remapped columns)."""
    if _np is not None and isinstance(column, _np.ndarray):
        _write_varint(out, len(column))
        out.write(column.astype("<i8", copy=False).tobytes())
        return
    if not isinstance(column, array):
        column = array("q", column)
    _write_i64_column(out, column)


class ArenaPoolEncoder:
    """Sender side of one connection's shared wire pool.

    ``encode`` re-interns the result's private pool into the
    connection pool, remaps the value columns, and emits only the
    newly-appended pool values.  The watermark of shipped values moves
    in two phases -- ``encode`` marks it pending, ``commit`` publishes
    it once the frame carrying the payload actually reached the socket
    -- so a payload dropped before sending (oversized frame, encode
    error) is simply re-shipped by the next delta instead of leaving
    the peer with a hole in its pool.  Callers must serialise
    encode+send per connection (the server holds its per-connection
    write lock across both).
    """

    __slots__ = ("pool", "shipped", "_pending")

    def __init__(self) -> None:
        self.pool = arena_mod.ValuePool()
        self.shipped = 0
        self._pending: Optional[int] = None

    def commit(self) -> None:
        """Publish the watermark cut by the last ``encode``."""
        if self._pending is not None:
            self.shipped = self._pending
            self._pending = None

    def rollback(self) -> None:
        """Forget an un-sent delta (it will be re-shipped next time)."""
        self._pending = None

    def encode(self, fr: FactorisedRelation) -> bytes:
        out = io.BytesIO()
        tree_bytes = _encode_ftree(fr.tree)
        _write_varint(out, len(tree_bytes))
        out.write(tree_bytes)
        rep = fr.arena
        if rep is None:
            out.write(bytes((0,)))
        else:
            out.write(bytes((1,)))
            src_pool = rep.pool
            if src_pool is self.pool:
                vmap = None
            else:
                vmap = [self.pool.intern(value) for value in src_pool]
            base = (
                self.shipped if self._pending is None else self._pending
            )
            delta = self.pool.values_since(base)
            _write_varint(out, base)
            _write_varint(out, len(delta))
            for value in delta:
                write_value(out, value)
            self._pending = base + len(delta)
            if vmap is None:
                remap = lambda column: column  # noqa: E731
            elif _np is not None:
                vmap_arr = _np.asarray(vmap, dtype=_np.int64)
                remap = lambda column: vmap_arr[  # noqa: E731
                    arena_mod._as_np(column)
                ]
            else:
                remap = lambda column: array(  # noqa: E731
                    "q", (vmap[vid] for vid in column)
                )
            skel = rep.skel
            _write_varint(out, len(skel))
            for i in range(len(skel)):
                _write_i64_any(out, remap(rep.values[i]))
                for j in range(len(skel.children[i])):
                    _write_i64_any(out, rep.child_lo[i][j])
                    _write_i64_any(out, rep.child_hi[i][j])
        body = out.getvalue()
        return body + struct.pack(">I", zlib.crc32(body))


class ArenaPoolDecoder:
    """Receiver side of one connection's shared wire pool.

    Payloads must be decoded in the order they were encoded: each one
    states the pool size it expects (``base``) and appends its delta.
    Every decoded arena references the *same* growing value list, so
    results from one connection recombine by id.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[object] = []

    def decode(self, payload: bytes) -> FactorisedRelation:
        if len(payload) < 4:
            raise PersistError("truncated pooled arena payload")
        body = payload[:-4]
        (crc,) = struct.unpack(">I", payload[-4:])
        if zlib.crc32(body) != crc:
            raise PersistError("pooled arena payload failed its checksum")
        src = io.BytesIO(body)
        tree_len = _read_varint(src)
        tree_bytes = src.read(tree_len)
        if len(tree_bytes) != tree_len:
            raise PersistError("truncated pooled arena tree")
        tree = _decode_ftree(tree_bytes)
        flag = src.read(1)
        if not flag:
            raise PersistError("truncated pooled arena payload")
        if flag[0] == 0:
            if src.read(1):
                raise PersistError("pooled arena payload has trailing bytes")
            return FactorisedRelation(tree, arena=None)
        base = _read_varint(src)
        if base != len(self.values):
            raise PersistError(
                f"pooled arena delta expects {base} already-shipped "
                f"values but this connection holds {len(self.values)} "
                f"(out-of-order or cross-connection payload)"
            )
        self.values.extend(
            read_value(src) for _ in range(_read_varint(src))
        )
        skel = arena_mod._skeleton_of(tree)
        node_count = _read_varint(src)
        if node_count != len(skel):
            raise PersistError(
                f"pooled arena payload has {node_count} node columns "
                f"for a {len(skel)}-node f-tree"
            )
        values: List[array] = []
        child_lo: List[List[array]] = []
        child_hi: List[List[array]] = []
        for i in range(node_count):
            values.append(_read_i64_column(src))
            los: List[array] = []
            his: List[array] = []
            for _ in skel.children[i]:
                los.append(_read_i64_column(src))
                his.append(_read_i64_column(src))
            child_lo.append(los)
            child_hi.append(his)
        if src.read(1):
            raise PersistError("pooled arena payload has trailing bytes")
        limit = len(self.values)
        for column in values:
            if not len(column):
                continue
            if _np is not None:
                arr = _np.frombuffer(column, dtype=_np.int64)
                bad = int(arr.max()) >= limit or int(arr.min()) < 0
            else:  # pragma: no cover - numpy-free fallback
                bad = max(column) >= limit or min(column) < 0
            if bad:
                raise PersistError(
                    "pooled arena value id outside the connection pool"
                )
        rep = ArenaRep(skel, values, child_lo, child_hi, self.values)
        try:
            arena_mod.validate_arena_bounds(tree, rep)
        except ValueError as exc:
            raise PersistError(
                f"pooled arena violates its invariants: {exc}"
            ) from exc
        return FactorisedRelation(tree, arena=rep)


# -- sharded databases (per-shard files + manifest) --------------------------


def _save_sharded(db: ShardedDatabase, path: str) -> None:
    # Build the whole directory aside, then swap it in, so a crash
    # mid-save never tears an existing good copy (the directory-level
    # analogue of the flat path's temp-file + atomic rename).
    staging = path + f".tmp-{os.getpid()}"
    if os.path.isdir(staging):
        shutil.rmtree(staging)
    os.makedirs(staging)
    try:
        shard_files = []
        for index in range(db.shard_count):
            name = SHARD_PATTERN.format(index=index)
            header, payload = _encode_database(db.shard(index))
            with open(os.path.join(staging, name), "wb") as handle:
                write_blob(handle, "database", header, payload)
            shard_files.append(
                {"file": name, "crc": zlib.crc32(payload)}
            )
        manifest = {
            "shards": db.shard_count,
            "strategy": db.strategy,
            "db_version": db.version,
            "relations": {
                relation.name: list(relation.attributes)
                for relation in db
            },
            "order": [relation.name for relation in db],
            "total_rows": db.total_size,
            "shard_files": shard_files,
        }
        with open(
            os.path.join(staging, MANIFEST_NAME), "wb"
        ) as handle:
            write_blob(handle, "shard-manifest", manifest, b"")
        if os.path.isdir(path):
            # Directories cannot be renamed over each other: retire
            # the old copy first.  Worst case after a crash here is
            # the previous save surviving under the .old name.
            retired = path + f".old-{os.getpid()}"
            os.rename(path, retired)
            os.rename(staging, path)
            shutil.rmtree(retired)
        else:
            os.rename(staging, path)
    except BaseException:
        if os.path.isdir(staging):
            shutil.rmtree(staging)
        raise


def load_shard_manifest(path: str) -> Dict[str, Any]:
    """The manifest dict of a sharded-database directory.

    Cheap (no shard file is opened): cluster tooling derives shard
    counts and per-shard file names from it without loading data.
    Errors name the manifest, so a truncated or garbled
    ``manifest.fdbp`` is diagnosable from the message alone.
    """
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise PersistError(
            f"{path!r} is not a sharded database: no {MANIFEST_NAME}"
        )
    try:
        with open(manifest_path, "rb") as handle:
            kind, manifest, _ = read_blob(handle)
    except PersistError as exc:
        raise PersistError(
            f"unreadable manifest {MANIFEST_NAME!r} in {path!r}: {exc}"
        ) from exc
    if kind != "shard-manifest":
        raise PersistError(
            f"expected a shard-manifest blob, found {kind!r}"
        )
    return manifest


def _load_sharded(path: str) -> ShardedDatabase:
    manifest = load_shard_manifest(path)
    try:
        shards = int(manifest["shards"])
        strategy = manifest["strategy"]
        order = list(manifest["order"])
        shard_files = manifest["shard_files"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed manifest: {manifest!r}") from exc
    if len(shard_files) != shards:
        raise PersistError(
            f"manifest names {len(shard_files)} shard files "
            f"for {shards} shards"
        )
    parts: List[Database] = []
    for entry in shard_files:
        shard_path = os.path.join(path, entry["file"])
        if not os.path.exists(shard_path):
            raise PersistError(f"missing shard file {entry['file']!r}")
        try:
            with open(shard_path, "rb") as handle:
                kind, header, payload = read_blob(handle)
        except PersistError as exc:
            raise PersistError(
                f"unreadable shard file {entry['file']!r}: {exc}"
            ) from exc
        if kind != "database":
            raise PersistError(
                f"shard file {entry['file']!r} holds {kind!r}, "
                f"not a database"
            )
        if zlib.crc32(payload) != entry.get("crc"):
            raise PersistError(
                f"shard file {entry['file']!r} does not match the "
                f"manifest checksum"
            )
        parts.append(_decode_database(header, payload))
    # Merge the partitions back into whole relations, in the saved
    # catalogue order, then re-shard: partitioning is deterministic
    # (content-addressed hash / sorted-order round-robin), so the
    # rebuilt partitions must equal the loaded ones -- checked below.
    merged: Dict[str, Relation] = {}
    try:
        for name in order:
            rows: List[Tuple[object, ...]] = []
            attributes: Optional[Tuple[str, ...]] = None
            for part in parts:
                if name in part:
                    attributes = part[name].attributes
                    rows.extend(part[name].rows)
            if attributes is None:
                raise PersistError(
                    f"relation {name!r} appears in no shard file"
                )
            merged[name] = Relation.from_rows(name, attributes, rows)
        db = ShardedDatabase(
            shards=shards,
            strategy=strategy,
            relations=[merged[name] for name in order],
        )
    except PersistError:
        raise
    except ValueError as exc:
        # ShardingError / SchemaError from a manifest that framed
        # correctly but describes an impossible database.
        raise PersistError(f"malformed sharded database: {exc}") from exc
    for index, part in enumerate(parts):
        for name in order:
            rebuilt = db.shard(index)[name]
            if name not in part or rebuilt.rows != part[name].rows:
                raise PersistError(
                    f"shard {index} partition of {name!r} does not "
                    f"reproduce the saved partition (corrupt shard "
                    f"file or strategy drift)"
                )
    version = manifest.get("db_version")
    if isinstance(version, int):
        db._version = version
    expected = manifest.get("total_rows")
    if expected is not None and db.total_size != expected:
        raise PersistError(
            f"sharded database rows do not match manifest: "
            f"{db.total_size} != {expected}"
        )
    return db


# -- public single-object API ------------------------------------------------


def encode(obj: object) -> Tuple[str, Dict[str, Any], bytes]:
    """Encode a supported object to (kind, header, payload)."""
    if isinstance(obj, ShardedDatabase):
        raise PersistError(
            "a ShardedDatabase persists as a directory; use save(obj, "
            "path) with a directory path"
        )
    if isinstance(obj, Relation):
        return "relation", _relation_header(obj), _encode_relation(obj)
    if isinstance(obj, Database):
        header, payload = _encode_database(obj)
        return "database", header, payload
    if isinstance(obj, FTree):
        return "ftree", _ftree_header(obj), _encode_ftree(obj)
    if isinstance(obj, FPlan):
        header, payload = _encode_fplan(obj)
        return "fplan", header, payload
    if isinstance(obj, FactorisedRelation):
        # The blob kind follows the relation's primary encoding, so
        # arena-evaluated results reload straight into their columns.
        if obj.encoding == "arena":
            header, payload = _encode_arena(obj)
            return "arena", header, payload
        header, payload = _encode_factorised(obj)
        return "factorised", header, payload
    raise PersistError(
        f"cannot persist objects of type {type(obj).__name__}"
    )


def decode(kind: str, header: Dict[str, Any], payload: bytes) -> object:
    """Decode a blob back to its object (inverse of :func:`encode`)."""
    try:
        if kind == "relation":
            return _decode_relation(header, payload)
        if kind == "database":
            return _decode_database(header, payload)
        if kind == "ftree":
            return _decode_ftree(payload)
        if kind == "fplan":
            return _decode_fplan(payload)
        if kind == "factorised":
            return _decode_factorised(payload)
        if kind == "arena":
            return _decode_arena(payload)
    except PersistError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise PersistError(f"malformed {kind} blob: {exc}") from exc
    raise PersistError(f"cannot decode blobs of kind {kind!r}")


def save(obj: object, path: str) -> None:
    """Persist ``obj`` to ``path``.

    A :class:`~repro.storage.sharded.ShardedDatabase` becomes a
    *directory* (per-shard database files plus a manifest); everything
    else becomes a single blob file.  Writes go through a temporary
    file and an atomic rename, so readers never observe half a blob.
    """
    if isinstance(obj, ShardedDatabase):
        _save_sharded(obj, path)
        return
    kind, header, payload = encode(obj)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".fdbp.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write_blob(handle, kind, header, payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load(path: str, mmap: bool = False) -> object:
    """Load whatever :func:`save` put at ``path``.

    Dispatches on the blob's self-described kind (directories load as
    sharded databases); raises :class:`PersistError` for anything
    unreadable, truncated, corrupt or version-incompatible.

    ``mmap=True`` memory-maps ``arena`` blobs instead of reading them:
    the integer columns become zero-copy views into the mapping (numpy
    ``int64`` views when numpy is available, ``array('q')`` copies
    otherwise), so opening a large persisted result costs ~O(page
    faults) of the bytes actually touched rather than a full read.
    Trade-off: the payload CRC is **not** verified up front (that
    would page the whole file in); the structural bounds check still
    runs, and framing/truncation errors are detected as usual.  Kinds
    other than ``arena`` -- including sharded-database directories,
    whose row payloads must be decoded value by value regardless --
    fall back to the ordinary checksummed read.
    """
    if os.path.isdir(path):
        return _load_sharded(path)
    if mmap:
        return _load_mapped(path)
    try:
        with open(path, "rb") as handle:
            kind, header, payload = read_blob(handle)
    except OSError as exc:
        raise PersistError(f"cannot read {path!r}: {exc}") from exc
    return decode(kind, header, payload)


def _load_mapped(path: str) -> object:
    """The ``mmap=True`` path of :func:`load` (files only)."""
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise PersistError(f"cannot read {path!r}: {exc}") from exc
    with handle:
        kind, header = read_header(handle)
        if kind != "arena":
            handle.seek(0)
            kind, header, payload = read_blob(handle)
            return decode(kind, header, payload)
        _exactly(handle, 4, "payload checksum")  # deliberately unused
        (length,) = struct.unpack(">Q", _exactly(handle, 8, "payload length"))
        offset = handle.tell()
        try:
            mapping = mmap_module.mmap(
                handle.fileno(), 0, access=mmap_module.ACCESS_READ
            )
        except (OSError, ValueError) as exc:
            raise PersistError(f"cannot mmap {path!r}: {exc}") from exc
    if offset + length > len(mapping):
        raise PersistError("truncated file: short payload")
    if offset + length < len(mapping):
        raise PersistError("arena file has trailing bytes")
    view = memoryview(mapping)[offset:]
    # The mapping stays alive exactly as long as the column views do
    # (each numpy view references the memoryview, which references the
    # mmap object); nothing to close explicitly.
    try:
        return _decode_arena_mapped(view)
    except PersistError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise PersistError(f"malformed arena blob: {exc}") from exc


def inspect(path: str) -> Dict[str, Any]:
    """The kind and header of a persisted file.

    Reads only the preamble (:func:`read_header`): the payload is
    neither read nor checksummed, so inspecting an arbitrarily large
    file costs a few hundred bytes of I/O.
    """
    target = (
        os.path.join(path, MANIFEST_NAME)
        if os.path.isdir(path)
        else path
    )
    try:
        with open(target, "rb") as handle:
            kind, header = read_header(handle)
    except OSError as exc:
        raise PersistError(f"cannot read {path!r}: {exc}") from exc
    return {"kind": kind, **header}
