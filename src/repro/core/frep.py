"""Structured f-representations aligned to an f-tree.

Definition 2 of the paper fixes the shape of an f-representation over
an f-tree ``T``: over a forest it is a product with one factor per
tree; over a tree rooted at a node it is a union over distinct values,
each value paired with an f-representation over the children forest.

We exploit that rigidity and store f-representations structurally:

- :class:`ProductRep` -- a product whose ``factors`` list is
  positionally aligned with the (canonically ordered) trees of the
  forest it represents;
- :class:`UnionRep` -- a union stored as ``(value, ProductRep)``
  entries, sorted strictly increasing in the value (the paper's order
  constraint, which the swap/merge algorithms rely on).

The *empty* relation has no structured form: by convention the wrapper
:class:`repro.core.factorised.FactorisedRelation` stores ``None`` for
it, and inside a non-empty representation no union is ever empty (the
operators prune eagerly).  The nullary tuple is ``ProductRep([])``.

A generic expression AST mirroring Definition 1 verbatim lives in
:mod:`repro.core.expr`; conversions between the two forms are there.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional, Tuple

Value = object


def _entry_value(entry: Tuple[Value, "ProductRep"]) -> Value:
    """Sort key for bisecting ``UnionRep.entries`` by value."""
    return entry[0]


class FRepError(ValueError):
    """Raised when a structured representation violates its invariants."""


class ProductRep:
    """A product of unions, one per tree of the forest it represents."""

    __slots__ = ("factors",)

    def __init__(self, factors: Iterable["UnionRep"] = ()) -> None:
        self.factors: List[UnionRep] = list(factors)

    def __repr__(self) -> str:
        return f"ProductRep({self.factors!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ProductRep) and self.factors == other.factors
        )

    def copy(self) -> "ProductRep":
        """Deep copy (operators rebuild rather than mutate, but tests
        and the engine facade occasionally need an isolated instance)."""
        return ProductRep([factor.copy() for factor in self.factors])


class UnionRep:
    """A union over distinct values of one f-tree node.

    Each entry pairs a value with the :class:`ProductRep` over the
    node's children forest.  Entries are sorted strictly increasing by
    value.
    """

    __slots__ = ("entries",)

    def __init__(
        self, entries: Iterable[Tuple[Value, ProductRep]] = ()
    ) -> None:
        self.entries: List[Tuple[Value, ProductRep]] = list(entries)

    def __repr__(self) -> str:
        values = [value for value, _ in self.entries]
        return f"UnionRep({values!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionRep) and self.entries == other.entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    def values(self) -> List[Value]:
        return [value for value, _ in self.entries]

    def find(self, value: Value) -> Optional[ProductRep]:
        """Binary search for ``value``; ``None`` if absent.

        Bisects ``entries`` in place (O(log n) comparisons) instead of
        materialising the full value list per lookup.
        """
        idx = bisect_left(self.entries, value, key=_entry_value)
        if idx < len(self.entries) and self.entries[idx][0] == value:
            return self.entries[idx][1]
        return None

    def copy(self) -> "UnionRep":
        return UnionRep(
            (value, child.copy()) for value, child in self.entries
        )


def singleton_union(value: Value) -> UnionRep:
    """A union holding one leaf value (children forest empty)."""
    return UnionRep([(value, ProductRep())])


def check_sorted(union: UnionRep) -> None:
    """Assert the strict value-order invariant of one union."""
    values = union.values()
    for previous, current in zip(values, values[1:]):
        if not previous < current:  # also catches duplicates
            raise FRepError(
                f"union values not strictly increasing: "
                f"{previous!r} !< {current!r}"
            )


def iter_unions(product: ProductRep) -> Iterator[UnionRep]:
    """All unions in a representation, pre-order."""
    stack: List[ProductRep] = [product]
    while stack:
        current = stack.pop()
        for union in current.factors:
            yield union
            for _, child in union.entries:
                stack.append(child)


def merge_sorted_values(
    left: List[Value], right: List[Value]
) -> List[Value]:
    """Sorted intersection of two sorted distinct value lists."""
    out: List[Value] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] < right[j]:
            i += 1
        elif right[j] < left[i]:
            j += 1
        else:
            out.append(left[i])
            i += 1
            j += 1
    return out
