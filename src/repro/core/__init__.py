"""Core factorised-database layer: f-trees and f-representations.

This subpackage is the paper's primary contribution surface:

- :mod:`repro.core.ftree` -- factorisation trees with the dependency
  hypergraph, path constraint and normalisation predicate (Section 2);
- :mod:`repro.core.frep` -- structured f-representations (products of
  value-sorted unions aligned to an f-tree);
- :mod:`repro.core.arena` -- the flat, columnar arena encoding of the
  same representations (interned values + offset-range columns);
- :mod:`repro.core.expr` -- the Definition-1 expression AST;
- :mod:`repro.core.build` -- factorising flat data over an f-tree;
- :mod:`repro.core.enumerate` -- constant-delay tuple enumeration;
- :mod:`repro.core.size` -- the singleton-count size measure;
- :mod:`repro.core.factorised` -- the user-facing bundle of both;
- :mod:`repro.core.aggregate` -- SQL aggregates without enumeration;
- :mod:`repro.core.serialize` -- JSON round-trip of factorised data.
"""

from repro.core import aggregate, serialize
from repro.core.arena import ArenaRep, from_product, to_product
from repro.core.build import ArenaFactoriser, Factoriser, factorise
from repro.core.enumerate import iter_assignments, iter_rows
from repro.core.expr import expression_of
from repro.core.factorised import FactorisedRelation
from repro.core.frep import FRepError, ProductRep, UnionRep
from repro.core.ftree import FNode, FTree, FTreeError
from repro.core.size import representation_size, tuple_count
from repro.core.validate import validate, validate_relation, validate_tree

__all__ = [
    "aggregate",
    "ArenaFactoriser",
    "ArenaRep",
    "expression_of",
    "from_product",
    "serialize",
    "factorise",
    "FactorisedRelation",
    "Factoriser",
    "to_product",
    "FNode",
    "FRepError",
    "FTree",
    "FTreeError",
    "iter_assignments",
    "iter_rows",
    "ProductRep",
    "representation_size",
    "tuple_count",
    "UnionRep",
    "validate",
    "validate_relation",
    "validate_tree",
]
