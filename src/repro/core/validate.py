"""Structural validation of f-representations against their f-trees.

The operators of Section 3 promise to preserve three constraints:

1. alignment: a :class:`ProductRep` has exactly one factor per tree of
   the forest it represents, recursively;
2. the order constraint: union values are strictly increasing;
3. non-emptiness: no union inside a (non-empty) representation is
   empty -- emptiness is pruned eagerly and surfaces only as the
   ``None`` representation of the empty relation.

``validate`` walks a representation and raises :class:`FRepError` on
the first violation; the test-suite and the engine's debug mode call it
after every operator.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.ftree import FNode, FTree
from repro.core.frep import FRepError, ProductRep, check_sorted


def validate(
    nodes: Sequence[FNode], product: Optional[ProductRep]
) -> None:
    """Check alignment, order and non-emptiness; raise on violation."""
    if product is None:
        return
    if len(product.factors) != len(nodes):
        raise FRepError(
            f"product arity {len(product.factors)} does not match "
            f"forest arity {len(nodes)}"
        )
    for node, union in zip(nodes, product.factors):
        if not union.entries:
            raise FRepError(
                f"empty union at node {sorted(node.label)} inside a "
                f"non-empty representation"
            )
        check_sorted(union)
        if node.constant and len(union.entries) != 1:
            raise FRepError(
                f"constant node {sorted(node.label)} holds "
                f"{len(union.entries)} values"
            )
        for _, child in union.entries:
            validate(node.children, child)


def validate_tree(tree: FTree) -> None:
    """Check the f-tree side: path constraint must hold."""
    if not tree.satisfies_path_constraint():
        raise FRepError(
            f"f-tree violates the path constraint: {tree.pretty_inline()}"
        )


def validate_relation(
    tree: FTree, product: Optional[ProductRep]
) -> None:
    """Full check of a factorised relation (tree + data)."""
    validate_tree(tree)
    validate(tree.roots, product)
