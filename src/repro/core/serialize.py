"""Serialisation of factorised relations (the "compiled database" use).

Section 1 motivates *compiled databases*: static data factorised once
and shipped in factorised form.  This module provides a stable text
format for that, round-tripping a :class:`FactorisedRelation` --
f-tree, dependency edges and data -- through a single JSON document.

Format (version 1)::

    {
      "format": "fdb-factorised",
      "version": 1,
      "edges": [["a", "b"], ...],
      "tree": {"label": ["a"], "constant": false, "children": [...]},
      "data": [  # one entry per root, aligned; null for empty relation
        [[value, [ ...child products... ]], ...]   # a union
      ]
    }

Unions serialise as ``[[value, product], ...]`` and products as lists
of unions, mirroring the structured representation exactly.  Values
must be JSON-representable (the engine uses ints and strings).
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from repro.core.factorised import FactorisedRelation
from repro.core.frep import FRepError, ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.query.hypergraph import Hypergraph

FORMAT_NAME = "fdb-factorised"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised for malformed serialised representations."""


# -- encoding -----------------------------------------------------------------


def _encode_node(node: FNode) -> Dict[str, Any]:
    return {
        "label": sorted(node.label),
        "constant": node.constant,
        "children": [_encode_node(c) for c in node.children],
    }


def _encode_union(union: UnionRep) -> List[Any]:
    return [
        [value, _encode_product(child)]
        for value, child in union.entries
    ]


def _encode_product(product: ProductRep) -> List[Any]:
    return [_encode_union(u) for u in product.factors]


def to_document(fr: FactorisedRelation) -> Dict[str, Any]:
    """Encode a factorised relation as a JSON-ready document."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "edges": [sorted(edge) for edge in fr.tree.edges],
        "tree": [_encode_node(root) for root in fr.tree.roots],
        "data": (
            None if fr.data is None else _encode_product(fr.data)
        ),
    }


def dumps(fr: FactorisedRelation, indent: Optional[int] = None) -> str:
    """Serialise to a JSON string."""
    return json.dumps(to_document(fr), indent=indent, sort_keys=True)


def dump(fr: FactorisedRelation, handle: IO[str]) -> None:
    """Serialise to an open text file."""
    json.dump(to_document(fr), handle, sort_keys=True)


def save(fr: FactorisedRelation, path: str) -> None:
    """Serialise to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        dump(fr, handle)


# -- decoding -----------------------------------------------------------------


def _decode_node(doc: Any) -> FNode:
    try:
        label = doc["label"]
        constant = bool(doc.get("constant", False))
        children = doc.get("children", [])
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed tree node: {doc!r}") from exc
    return FNode(
        set(label), [_decode_node(c) for c in children], constant
    )


def _decode_union(doc: Any) -> UnionRep:
    if not isinstance(doc, list):
        raise SerializationError(f"malformed union: {doc!r}")
    entries = []
    for item in doc:
        if not isinstance(item, list) or len(item) != 2:
            raise SerializationError(f"malformed entry: {item!r}")
        value, child = item
        entries.append((value, _decode_product(child)))
    return UnionRep(entries)


def _decode_product(doc: Any) -> ProductRep:
    if not isinstance(doc, list):
        raise SerializationError(f"malformed product: {doc!r}")
    return ProductRep([_decode_union(u) for u in doc])


def from_document(doc: Dict[str, Any]) -> FactorisedRelation:
    """Decode a document produced by :func:`to_document`.

    The result is validated (alignment, value order, non-emptiness,
    path constraint) before being returned.
    """
    if doc.get("format") != FORMAT_NAME:
        raise SerializationError(
            f"not a {FORMAT_NAME} document: {doc.get('format')!r}"
        )
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported version {doc.get('version')!r}"
        )
    edges = Hypergraph(set(edge) for edge in doc.get("edges", []))
    roots = [_decode_node(node) for node in doc.get("tree", [])]
    tree = FTree(roots, edges)
    raw = doc.get("data")
    data = None if raw is None else _decode_product(raw)
    fr = FactorisedRelation(tree, data)
    try:
        fr.validate()
    except FRepError as exc:
        raise SerializationError(str(exc)) from exc
    return fr


def loads(text: str) -> FactorisedRelation:
    """Deserialise from a JSON string."""
    return from_document(json.loads(text))


def load(handle: IO[str]) -> FactorisedRelation:
    """Deserialise from an open text file."""
    return from_document(json.load(handle))


def load_path(path: str) -> FactorisedRelation:
    """Deserialise from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)
