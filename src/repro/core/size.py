"""Size and cardinality measures of structured f-representations.

``representation_size`` is the paper's ``|E|``: the number of
singletons (each node entry contributes one singleton per attribute in
the node's label).  ``tuple_count`` evaluates how many flat tuples the
representation denotes -- computed by sum/product recursion without
enumerating them, which is what makes factorised counting cheap.

Both measures accept either physical encoding: the object
``ProductRep`` trees are walked recursively, while an
:class:`~repro.core.arena.ArenaRep` dispatches to the columnar kernels
(``|E|`` becomes O(#nodes) column-length arithmetic; counting becomes
per-column segment sums).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core import arena as _arena
from repro.core.arena import ArenaRep
from repro.core.ftree import FNode
from repro.core.frep import ProductRep, UnionRep

Rep = Union[ProductRep, ArenaRep]


def representation_size(
    nodes: Sequence[FNode], product: Optional[Rep]
) -> int:
    """Number of singletons in the representation (``None`` = empty)."""
    if product is None:
        return 0
    if isinstance(product, ArenaRep):
        return _arena.representation_size(product)
    total = 0
    for node, union in zip(nodes, product.factors):
        total += _union_size(node, union)
    return total


def _union_size(node: FNode, union: UnionRep) -> int:
    total = 0
    width = len(node.label)
    for _, child in union.entries:
        total += width
        total += representation_size(node.children, child)
    return total


def tuple_count(
    nodes: Sequence[FNode], product: Optional[Rep]
) -> int:
    """Number of distinct tuples represented (0 for empty)."""
    if product is None:
        return 0
    if isinstance(product, ArenaRep):
        return _arena.tuple_count(product)
    total = 1
    for node, union in zip(nodes, product.factors):
        total *= _union_count(node, union)
        if total == 0:
            return 0
    return total


def _union_count(node: FNode, union: UnionRep) -> int:
    total = 0
    for _, child in union.entries:
        total += tuple_count(node.children, child)
    return total


def data_elements(
    nodes: Sequence[FNode], product: Optional[Rep]
) -> int:
    """Flat-result size in data elements: #tuples x #attributes.

    This is the unit Figures 7 and 8 use for the relational engines;
    comparing it against :func:`representation_size` reproduces the
    paper's "result size [# of data elements]" axes.
    """
    arity = sum(len(node.subtree_attributes()) for node in nodes)
    return tuple_count(nodes, product) * arity
