"""Factorisation trees (f-trees), Definition 2 of the paper.

An f-tree over a schema is an unordered rooted forest whose nodes are
labelled by disjoint, non-empty attribute sets (the attribute
equivalence classes of a query) such that every attribute labels
exactly one node.  The f-tree prescribes the nesting structure of an
f-representation: root values are factored out first, branching into
subtrees denotes a product of independent sub-representations.

Alongside the shape, an :class:`FTree` carries the *dependency
hypergraph*: one hyperedge per input relation (plus phantom edges
introduced by projection, and minus attributes bound to constants).
The hypergraph drives the two structural notions of the paper:

- the **path constraint** (Proposition 1): for every edge, the nodes it
  touches must lie on one root-to-leaf path;
- **dependence** between nodes, which gates the push-up/swap operators
  and defines normalisation (Definition 3).

F-trees are immutable and canonically ordered (children sorted by
label), so they can be hashed and used as vertices of the optimiser's
search graph (Section 4.2).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.query.hypergraph import Hypergraph

Label = FrozenSet[str]


class FTreeError(ValueError):
    """Raised for malformed f-trees or illegal node references."""


def label_key(label: AbstractSet[str]) -> Tuple[str, ...]:
    """Canonical sort key of a node label."""
    return tuple(sorted(label))


class FNode:
    """An immutable f-tree node: a label plus ordered children.

    ``constant`` marks nodes bound to a single value by an equality
    selection with a constant (Section 3.3): such nodes are ignored by
    the cost parameter ``s(T)`` and are independent of everything
    (their attributes are removed from the dependency edges).
    """

    __slots__ = ("label", "children", "constant", "_key")

    def __init__(
        self,
        label: AbstractSet[str],
        children: Sequence["FNode"] = (),
        constant: bool = False,
    ) -> None:
        if not label:
            raise FTreeError("node label must be non-empty")
        self.label: Label = frozenset(label)
        self.children: Tuple[FNode, ...] = tuple(
            sorted(children, key=lambda n: label_key(n.label))
        )
        self.constant = constant
        self._key: Optional[tuple] = None

    def key(self) -> tuple:
        """Canonical hashable key of the subtree."""
        if self._key is None:
            self._key = (
                label_key(self.label),
                self.constant,
                tuple(child.key() for child in self.children),
            )
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FNode) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        mark = "=const" if self.constant else ""
        return f"FNode({{{','.join(sorted(self.label))}}}{mark})"

    def subtree_attributes(self) -> FrozenSet[str]:
        """All attributes in this node's subtree (including itself)."""
        out: Set[str] = set(self.label)
        for child in self.children:
            out |= child.subtree_attributes()
        return frozenset(out)

    def iter_nodes(self) -> Iterator["FNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def with_children(self, children: Sequence["FNode"]) -> "FNode":
        return FNode(self.label, children, self.constant)

    def with_label(self, label: AbstractSet[str]) -> "FNode":
        return FNode(label, self.children, self.constant)

    def as_constant(self) -> "FNode":
        return FNode(self.label, self.children, True)


class FTree:
    """An immutable forest of :class:`FNode` plus dependency edges."""

    __slots__ = ("roots", "edges", "_by_attr", "_parents", "_key")

    def __init__(
        self,
        roots: Sequence[FNode],
        edges: Hypergraph,
    ) -> None:
        self.roots: Tuple[FNode, ...] = tuple(
            sorted(roots, key=lambda n: label_key(n.label))
        )
        self.edges = edges
        self._by_attr: Optional[Dict[str, FNode]] = None
        self._parents: Optional[Dict[Label, Optional[FNode]]] = None
        self._key: Optional[tuple] = None
        seen: Set[str] = set()
        for node in self.iter_nodes():
            overlap = seen & node.label
            if overlap:
                raise FTreeError(
                    f"attributes {sorted(overlap)} label more than one node"
                )
            seen |= node.label

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def from_nested(
        spec: Sequence[object], edges: Iterable[AbstractSet[str]] = ()
    ) -> "FTree":
        """Build from a nested spec, mainly for tests and examples.

        Each tree is ``(label, [children...])`` where ``label`` is an
        attribute name, an iterable of names, or a set; e.g.::

            FTree.from_nested(
                [("item", [("oid", []), ("loc", [("disp", [])])])],
                edges=[{"oid", "item"}, {"loc", "item"}, {"disp", "loc"}],
            )
        """

        def build(node_spec: object) -> FNode:
            label, children = node_spec  # type: ignore[misc]
            if isinstance(label, str):
                label_set: AbstractSet[str] = {label}
            else:
                label_set = set(label)
            return FNode(label_set, [build(c) for c in children])

        return FTree([build(s) for s in spec], Hypergraph(edges))

    # -- basic access -------------------------------------------------------

    def iter_nodes(self) -> Iterator[FNode]:
        for root in self.roots:
            yield from root.iter_nodes()

    def attributes(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for node in self.iter_nodes():
            out |= node.label
        return frozenset(out)

    def labels(self) -> List[Label]:
        return [node.label for node in self.iter_nodes()]

    def class_partition(self) -> FrozenSet[Label]:
        """The node labels as a canonical partition of the attributes."""
        return frozenset(node.label for node in self.iter_nodes())

    def _index(self) -> None:
        if self._by_attr is not None:
            return
        by_attr: Dict[str, FNode] = {}
        parents: Dict[Label, Optional[FNode]] = {}

        def walk(node: FNode, parent: Optional[FNode]) -> None:
            parents[node.label] = parent
            for attr in node.label:
                by_attr[attr] = node
            for child in node.children:
                walk(child, node)

        for root in self.roots:
            walk(root, None)
        self._by_attr = by_attr
        self._parents = parents

    def node_of(self, attribute: str) -> FNode:
        """The unique node whose label contains ``attribute``."""
        self._index()
        assert self._by_attr is not None
        try:
            return self._by_attr[attribute]
        except KeyError:
            raise FTreeError(
                f"attribute {attribute!r} not in this f-tree"
            ) from None

    def parent_of(self, node: FNode) -> Optional[FNode]:
        """Parent node, or ``None`` for roots."""
        self._index()
        assert self._parents is not None
        try:
            return self._parents[node.label]
        except KeyError:
            raise FTreeError(f"node {node!r} not in this f-tree") from None

    def ancestors(self, node: FNode) -> List[FNode]:
        """Ancestors of ``node``, root first (excluding the node)."""
        chain: List[FNode] = []
        parent = self.parent_of(node)
        while parent is not None:
            chain.append(parent)
            parent = self.parent_of(parent)
        chain.reverse()
        return chain

    def is_ancestor(self, upper: FNode, lower: FNode) -> bool:
        return any(a.label == upper.label for a in self.ancestors(lower))

    def root_to_leaf_paths(self) -> List[List[FNode]]:
        """All root-to-leaf node paths (each a list, root first)."""
        paths: List[List[FNode]] = []

        def walk(node: FNode, prefix: List[FNode]) -> None:
            current = prefix + [node]
            if not node.children:
                paths.append(current)
            for child in node.children:
                walk(child, current)

        for root in self.roots:
            walk(root, [])
        return paths

    # -- dependence and the path constraint ---------------------------------

    def depends(
        self, left: AbstractSet[str], right: AbstractSet[str]
    ) -> bool:
        """True iff one dependency edge touches both attribute sets."""
        return self.edges.touches(left, right)

    def node_depends_on_subtree(self, node: FNode, subtree: FNode) -> bool:
        """Dependence between ``node``'s label and ``subtree``'s attributes.

        This is the gate of the push-up operator: a child ``B`` of ``A``
        may be pushed up iff ``A`` is *not* dependent on ``B`` or its
        descendants (Section 3.1).
        """
        return self.depends(node.label, subtree.subtree_attributes())

    def satisfies_path_constraint(self) -> bool:
        """Proposition 1: every edge's nodes lie on one path."""
        self._index()
        ancestors_of: Dict[Label, List[Label]] = {}
        for node in self.iter_nodes():
            ancestors_of[node.label] = [
                a.label for a in self.ancestors(node)
            ]
        for edge in self.edges:
            touched = [
                node.label
                for node in self.iter_nodes()
                if edge & node.label
            ]
            if len(touched) <= 1:
                continue
            deepest = max(touched, key=lambda lab: len(ancestors_of[lab]))
            chain = set(ancestors_of[deepest])
            chain.add(deepest)
            if not all(lab in chain for lab in touched):
                return False
        return True

    def pushable(self, node: FNode) -> bool:
        """Can ``node`` (a non-root) be pushed above its parent?"""
        parent = self.parent_of(node)
        if parent is None:
            return False
        return not self.node_depends_on_subtree(parent, node)

    def is_normalised(self) -> bool:
        """Definition 3: no node can be pushed up."""
        return not any(
            self.pushable(node)
            for node in self.iter_nodes()
            if self.parent_of(node) is not None
        )

    # -- identity ------------------------------------------------------------

    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                tuple(root.key() for root in self.roots),
                tuple(sorted(tuple(sorted(e)) for e in self.edges)),
            )
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FTree) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"FTree({self.pretty_inline()})"

    # -- display -------------------------------------------------------------

    def pretty_inline(self) -> str:
        """One-line rendering: ``{a}({b}, {c}({d}))``."""

        def render(node: FNode) -> str:
            label = "{" + ",".join(sorted(node.label)) + "}"
            if node.constant:
                label += "=c"
            if not node.children:
                return label
            inner = ", ".join(render(c) for c in node.children)
            return f"{label}({inner})"

        return " | ".join(render(root) for root in self.roots)

    def pretty(self) -> str:
        """Multi-line ASCII rendering of the forest."""
        lines: List[str] = []

        def render(node: FNode, indent: str) -> None:
            label = ",".join(sorted(node.label))
            if node.constant:
                label += " (const)"
            lines.append(f"{indent}{label}")
            for child in node.children:
                render(child, indent + "  ")

        for root in self.roots:
            render(root, "")
        return "\n".join(lines)

    # -- structural editing (used by the operators) --------------------------

    def with_roots(self, roots: Sequence[FNode]) -> "FTree":
        return FTree(roots, self.edges)

    def with_edges(self, edges: Hypergraph) -> "FTree":
        return FTree(self.roots, edges)

    def replace_node(
        self, target: Label, replacements: Sequence[FNode]
    ) -> "FTree":
        """Replace the node labelled ``target`` by ``replacements``.

        The replacements are spliced into the position of the target in
        its parent's child list (or the root forest); an empty sequence
        removes the node (its subtree goes with it).
        """
        found = [False]

        def rebuild(node: FNode) -> List[FNode]:
            if node.label == target:
                found[0] = True
                return list(replacements)
            new_children: List[FNode] = []
            for child in node.children:
                new_children.extend(rebuild(child))
            return [node.with_children(new_children)]

        new_roots: List[FNode] = []
        for root in self.roots:
            new_roots.extend(rebuild(root))
        if not found[0]:
            raise FTreeError(f"no node labelled {sorted(target)}")
        return FTree(new_roots, self.edges)
