"""Aggregates computed directly on f-representations.

The paper's Section 2 notes that factorised representations are
"compilations of query results that allow for efficient subsequent
processing"; counting is the canonical example (and the follow-up work
on FDB -- F and LMFAO -- is built around factorised aggregation).  The
functions here evaluate the standard SQL aggregates over a factorised
relation *without enumerating tuples*:

- ``COUNT(*)`` is a sum-product over the representation (linear time
  in ``|E|`` instead of the possibly exponential tuple count);
- ``SUM(A)`` pairs each subexpression with (count, sum) and combines
  them through unions (add) and products (cross-multiply);
- ``MIN(A)``/``MAX(A)`` propagate bounds; the unions' value order
  makes the root-level extremes available in constant time when ``A``
  labels a root;
- ``COUNT(DISTINCT A)`` and ``GROUP BY`` on a *root* attribute fall
  out of the union structure.

All functions take the usual (nodes, product) pair; the
:class:`~repro.core.factorised.FactorisedRelation` facade exposes them
as the ``sum``/``avg``/``min``/``max``/``count_distinct``/
``group_count`` methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core import arena as _arena
from repro.core.arena import ArenaRep
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode
from repro.core.size import tuple_count

Rep = Union[ProductRep, ArenaRep]


class AggregateError(ValueError):
    """Raised for aggregates over unknown attributes."""


#: (tuple count, sum of the target attribute over all tuples)
_CountSum = Tuple[int, float]


def count(nodes: Sequence[FNode], product: Optional[Rep]) -> int:
    """``COUNT(*)`` -- alias of :func:`repro.core.size.tuple_count`."""
    return tuple_count(nodes, product)


def _count_sum_forest(
    nodes: Sequence[FNode],
    product: ProductRep,
    attribute: str,
) -> _CountSum:
    total_count = 1
    total_sum = 0.0
    for node, union in zip(nodes, product.factors):
        part_count, part_sum = _count_sum_union(node, union, attribute)
        # Product rule: counts multiply; sums cross-multiply with the
        # counts of the other factors.
        total_sum = total_sum * part_count + part_sum * total_count
        total_count *= part_count
        if total_count == 0:
            return 0, 0.0
    return total_count, total_sum


def _count_sum_union(
    node: FNode, union: UnionRep, attribute: str
) -> _CountSum:
    total_count = 0
    total_sum = 0.0
    here = attribute in node.label
    for value, child in union.entries:
        child_count, child_sum = _count_sum_forest(
            node.children, child, attribute
        )
        total_count += child_count
        total_sum += child_sum
        if here:
            total_sum += float(value) * child_count  # type: ignore[arg-type]
    return total_count, total_sum


def sum_of(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attribute: str,
) -> float:
    """``SUM(attribute)`` over all represented tuples."""
    if product is None:
        return 0.0
    if isinstance(product, ArenaRep):
        return _arena.sum_of(product, attribute)
    if not any(attribute in n.subtree_attributes() for n in nodes):
        raise AggregateError(f"unknown attribute {attribute!r}")
    return _count_sum_forest(nodes, product, attribute)[1]


def average(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attribute: str,
) -> Optional[float]:
    """``AVG(attribute)``; ``None`` on the empty relation."""
    if product is None:
        return None
    if isinstance(product, ArenaRep):
        return _arena.average(product, attribute)
    total_count, total_sum = _count_sum_forest(
        nodes, product, attribute
    )
    if not any(attribute in n.subtree_attributes() for n in nodes):
        raise AggregateError(f"unknown attribute {attribute!r}")
    return total_sum / total_count if total_count else None


def _extreme(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attribute: str,
    minimum: bool,
):
    if product is None:
        return None
    if isinstance(product, ArenaRep):
        return _arena.extreme(product, attribute, minimum)
    found: List[object] = []

    def walk(ns: Sequence[FNode], prod: ProductRep) -> None:
        for node, union in zip(ns, prod.factors):
            if attribute in node.label:
                # Unions are value-sorted: first/last entry suffices
                # *for this occurrence*.
                entry = union.entries[0 if minimum else -1]
                found.append(entry[0])
                continue  # deeper occurrences are under other values
            if any(
                attribute in c.subtree_attributes()
                for c in node.children
            ):
                for _, child in union.entries:
                    walk(node.children, child)

    walk(nodes, product)
    if not found:
        raise AggregateError(f"unknown attribute {attribute!r}")
    return min(found) if minimum else max(found)


def min_of(nodes, product, attribute: str):
    """``MIN(attribute)``; ``None`` on the empty relation."""
    return _extreme(nodes, product, attribute, minimum=True)


def max_of(nodes, product, attribute: str):
    """``MAX(attribute)``; ``None`` on the empty relation."""
    return _extreme(nodes, product, attribute, minimum=False)


def count_distinct(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attribute: str,
) -> int:
    """``COUNT(DISTINCT attribute)``."""
    if product is None:
        return 0
    if isinstance(product, ArenaRep):
        return _arena.count_distinct(product, attribute)
    values: set = set()

    def walk(ns: Sequence[FNode], prod: ProductRep) -> None:
        for node, union in zip(ns, prod.factors):
            if attribute in node.label:
                # Only values whose subtree is non-empty exist -- the
                # invariant guarantees that, so collect them all.
                values.update(v for v, _ in union.entries)
                continue
            if any(
                attribute in c.subtree_attributes()
                for c in node.children
            ):
                for _, child in union.entries:
                    walk(node.children, child)

    walk(nodes, product)
    if not values and not any(
        attribute in n.subtree_attributes() for n in nodes
    ):
        raise AggregateError(f"unknown attribute {attribute!r}")
    return len(values)


def group_count(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attribute: str,
) -> Dict[object, int]:
    """``SELECT attribute, COUNT(*) GROUP BY attribute``.

    Cheapest when ``attribute`` labels a root (one pass over the root
    union); otherwise falls back to combining per-occurrence counts
    weighted by the surrounding context, still without enumeration.
    """
    if product is None:
        return {}
    if isinstance(product, ArenaRep):
        return _arena.group_count(product, attribute)
    out: Dict[object, int] = {}

    def walk(
        ns: Sequence[FNode], prod: ProductRep, multiplier: int
    ) -> None:
        # Count of tuples contributed by the *other* factors at this
        # level, per chosen entry of the factor containing `attribute`.
        target_idx = None
        for i, node in enumerate(ns):
            if attribute in node.subtree_attributes():
                target_idx = i
                break
        if target_idx is None:
            return
        others = 1
        for i, (node, union) in enumerate(zip(ns, prod.factors)):
            if i != target_idx:
                others *= _union_count(node, union)
        node = ns[target_idx]
        union = prod.factors[target_idx]
        if attribute in node.label:
            for value, child in union.entries:
                below = tuple_count(node.children, child)
                out[value] = out.get(value, 0) + (
                    multiplier * others * below
                )
        else:
            for _, child in union.entries:
                walk(node.children, child, multiplier * others)

    walk(nodes, product, 1)
    return out


def _union_count(node: FNode, union: UnionRep) -> int:
    return sum(
        tuple_count(node.children, child) for _, child in union.entries
    )


