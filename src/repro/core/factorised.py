"""The user-facing factorised relation: an f-tree plus its data.

A :class:`FactorisedRelation` bundles an :class:`~repro.core.ftree.
FTree` with a representation over it (``None`` encodes the empty
relation) and offers the logical-layer view of Section 1: the relation
*is* a relation -- it can be enumerated, counted, compared and exported
flat -- while the physical layer stays factorised.

Two physical encodings back the same logical relation:

- the **object** encoding (:class:`~repro.core.frep.ProductRep` /
  ``UnionRep`` trees) -- what the f-plan operators rewrite;
- the **arena** encoding (:class:`~repro.core.arena.ArenaRep`) -- flat
  interned-value and offset-range columns for the hot paths (build,
  count, size, enumeration, aggregates, near-verbatim serialisation).

Construct with ``data=`` for the object encoding or ``arena=`` for the
arena; :attr:`encoding` names the primary one.  Conversion is lazy in
both directions: reading :attr:`data` on an arena-backed relation
materialises (and caches) the object form, so every existing operator
keeps working unchanged -- this is the transparent arena->object
adapter the f-plan operators (swap, merge, absorb, normalise) rely on
-- and reading :attr:`arena` on an object-backed relation builds the
columns.  All logical-view methods run on the primary encoding.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core import arena as arena_mod
from repro.core.arena import ArenaRep
from repro.core.enumerate import Assignment, iter_assignments, iter_rows
from repro.core.expr import Expression, Empty, expression_of
from repro.core.frep import ProductRep
from repro.core.ftree import FTree
from repro.core.size import data_elements, representation_size, tuple_count
from repro.core.validate import validate_relation
from repro.relational.relation import Relation

#: The physical encodings a relation can be backed by.
ENCODINGS = ("object", "arena")


class _Unset:
    """Sentinel for a not-yet-materialised encoding (pickle-stable)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"

    def __reduce__(self):
        return (_unset, ())


def _unset() -> "_Unset":
    return _UNSET


_UNSET = _Unset()


class AdapterCounters:
    """Process-wide tallies of arena<->object adapter conversions.

    The whole point of the arena-native pipeline is that these stay at
    zero on the hot path; they are surfaced in session/server STATS and
    gated by ``benchmarks/bench_plan_pipeline.py`` so an operator that
    silently falls back to the object encoding shows up as a counted
    (and benchmark-failing) regression rather than a quiet slowdown.
    """

    __slots__ = (
        "_lock",
        "to_object_calls",
        "to_arena_calls",
        "bytes_to_object",
        "bytes_to_arena",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        self.to_object_calls = 0
        self.to_arena_calls = 0
        self.bytes_to_object = 0
        self.bytes_to_arena = 0

    def note_to_object(self, nbytes: int) -> None:
        with self._lock:
            self.to_object_calls += 1
            self.bytes_to_object += nbytes

    def note_to_arena(self, nbytes: int) -> None:
        with self._lock:
            self.to_arena_calls += 1
            self.bytes_to_arena += nbytes

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "to_object_calls": self.to_object_calls,
                "to_arena_calls": self.to_arena_calls,
                "bytes_to_object": self.bytes_to_object,
                "bytes_to_arena": self.bytes_to_arena,
            }

    @property
    def round_trips(self) -> int:
        """Conversions out of the arena encoding (the costly direction)."""
        return self.to_object_calls


#: Module-level adapter instrumentation (one per process/worker).
ADAPTER = AdapterCounters()


class FactorisedRelation:
    """A relation stored factorised over an f-tree.

    >>> from repro.core.build import factorise
    >>> from repro.core.ftree import FTree
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    >>> tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    >>> fr = FactorisedRelation(tree, factorise([r], tree))
    >>> fr.count()
    3
    >>> fr.size()  # 2 a-singletons + 3 b-singletons
    5
    >>> fa = fr.to_arena()
    >>> (fa.encoding, fa.count(), fa.size())
    ('arena', 3, 5)
    """

    __slots__ = ("tree", "_object", "_arena", "_primary")

    def __init__(
        self,
        tree: FTree,
        data: Union[Optional[ProductRep], "_Unset"] = _UNSET,
        *,
        arena: Union[Optional[ArenaRep], "_Unset"] = _UNSET,
    ) -> None:
        if data is _UNSET and arena is _UNSET:
            raise ValueError(
                "FactorisedRelation needs data= (object encoding) "
                "or arena= (arena encoding)"
            )
        self.tree = tree
        self._object = data
        self._arena = arena
        self._primary = "object" if data is not _UNSET else "arena"

    # -- encodings -----------------------------------------------------------

    @property
    def encoding(self) -> str:
        """The primary physical encoding ("object" or "arena")."""
        return self._primary

    @property
    def data(self) -> Optional[ProductRep]:
        """The object encoding (materialised from the arena on demand)."""
        if self._object is _UNSET:
            rep = self._arena
            ADAPTER.note_to_object(0 if rep is None else rep.nbytes())
            self._object = arena_mod.to_product(rep)
        return self._object  # type: ignore[return-value]

    @property
    def arena(self) -> Optional[ArenaRep]:
        """The arena encoding (materialised from the objects on demand)."""
        if self._arena is _UNSET:
            self._arena = arena_mod.from_product(self.tree, self._object)
            rep = self._arena
            ADAPTER.note_to_arena(0 if rep is None else rep.nbytes())
        return self._arena  # type: ignore[return-value]

    def to_arena(self) -> "FactorisedRelation":
        """This relation with the arena as primary encoding."""
        if self._primary == "arena":
            return self
        return FactorisedRelation(self.tree, arena=self.arena)

    def to_object(self) -> "FactorisedRelation":
        """This relation with the objects as primary encoding."""
        if self._primary == "object":
            return self
        return FactorisedRelation(self.tree, self.data)

    def _active(self):
        """The primary representation (what the logical view runs on)."""
        return self._arena if self._primary == "arena" else self._object

    # -- relational view -----------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes in canonical (sorted) order."""
        return tuple(sorted(self.tree.attributes()))

    def is_empty(self) -> bool:
        return self._active() is None

    def size(self) -> int:
        """Representation size ``|E|``: the number of singletons."""
        return representation_size(self.tree.roots, self._active())

    def count(self) -> int:
        """Number of represented tuples, without enumeration."""
        return tuple_count(self.tree.roots, self._active())

    def flat_data_elements(self) -> int:
        """Size of the *flat* equivalent in data elements."""
        return data_elements(self.tree.roots, self._active())

    def __iter__(self) -> Iterator[Assignment]:
        return iter_assignments(self.tree.roots, self._active())

    def rows(
        self, attributes: Optional[Sequence[str]] = None
    ) -> Iterator[tuple]:
        """Iterate tuples projected onto ``attributes`` (default all)."""
        order = self.attributes if attributes is None else tuple(attributes)
        return iter_rows(self.tree.roots, self._active(), order)

    def to_relation(self, name: str = "flat") -> Relation:
        """Materialise the flat relation (use with care on big data)."""
        return Relation.from_rows(name, self.attributes, self.rows())

    def to_expression(self) -> Expression:
        """The Definition-1 expression AST of this representation."""
        if self.data is None:
            return Empty(self.tree.attributes())
        return expression_of(self.tree, self.data)

    # -- aggregates (computed without enumeration) -----------------------------

    def sum(self, attribute: str) -> float:
        """``SUM(attribute)`` over all represented tuples."""
        from repro.core import aggregate

        return aggregate.sum_of(self.tree.roots, self._active(), attribute)

    def avg(self, attribute: str) -> Optional[float]:
        """``AVG(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.average(
            self.tree.roots, self._active(), attribute
        )

    def min(self, attribute: str):
        """``MIN(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.min_of(self.tree.roots, self._active(), attribute)

    def max(self, attribute: str):
        """``MAX(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.max_of(self.tree.roots, self._active(), attribute)

    def count_distinct(self, attribute: str) -> int:
        """``COUNT(DISTINCT attribute)``."""
        from repro.core import aggregate

        return aggregate.count_distinct(
            self.tree.roots, self._active(), attribute
        )

    def group_count(self, attribute: str):
        """``GROUP BY attribute`` with ``COUNT(*)`` per group."""
        from repro.core import aggregate

        return aggregate.group_count(
            self.tree.roots, self._active(), attribute
        )

    # -- comparisons and checks ----------------------------------------------

    def same_relation(self, other: "FactorisedRelation") -> bool:
        """Do both factorisations represent the same relation?"""
        if set(self.attributes) != set(other.attributes):
            return False
        mine = set(self.rows())
        theirs = set(other.rows(self.attributes))
        return mine == theirs

    def equals_flat(self, relation: Relation) -> bool:
        """Does this factorisation represent exactly ``relation``?"""
        if set(self.attributes) != set(relation.attributes):
            return False
        order = self.attributes
        perm = [relation.schema.index_of(a) for a in order]
        flat = {tuple(row[i] for i in perm) for row in relation}
        return set(self.rows(order)) == flat

    def validate(self) -> "FactorisedRelation":
        """Check all structural invariants; returns self for chaining.

        An arena primary is checked twice: the cheap arena-level bounds
        and order checks, then the full object-level validation on the
        (lazily converted) object form -- correctness never forks
        between the encodings.
        """
        if self._arena is not _UNSET:
            arena_mod.validate_arena(self.tree, self._arena)
        validate_relation(self.tree, self.data)
        return self

    # -- display ---------------------------------------------------------------

    def pretty(self, unicode_glyphs: bool = True) -> str:
        """Render as a Definition-1 expression string."""
        return self.to_expression().to_text(unicode_glyphs)

    def __repr__(self) -> str:
        return (
            f"FactorisedRelation(attrs={list(self.attributes)}, "
            f"size={self.size()}, tuples={self.count()}, "
            f"encoding={self.encoding})"
        )

    def copy(self) -> "FactorisedRelation":
        if self._primary == "arena":
            rep = self._arena
            return FactorisedRelation(
                self.tree, arena=None if rep is None else rep.copy()
            )
        data = None if self._object is None else self._object.copy()
        return FactorisedRelation(self.tree, data)
