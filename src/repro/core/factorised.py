"""The user-facing factorised relation: an f-tree plus its data.

A :class:`FactorisedRelation` bundles an :class:`~repro.core.ftree.
FTree` with the structured representation over it (``None`` encodes the
empty relation) and offers the logical-layer view of Section 1: the
relation *is* a relation -- it can be enumerated, counted, compared and
exported flat -- while the physical layer stays factorised.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.enumerate import Assignment, iter_assignments, iter_rows
from repro.core.expr import Expression, Empty, expression_of
from repro.core.frep import ProductRep
from repro.core.ftree import FTree
from repro.core.size import data_elements, representation_size, tuple_count
from repro.core.validate import validate_relation
from repro.relational.relation import Relation


class FactorisedRelation:
    """A relation stored factorised over an f-tree.

    >>> from repro.core.build import factorise
    >>> from repro.core.ftree import FTree
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    >>> tree = FTree.from_nested([("a", [("b", [])])], [{"a", "b"}])
    >>> fr = FactorisedRelation(tree, factorise([r], tree))
    >>> fr.count()
    3
    >>> fr.size()  # 2 a-singletons + 3 b-singletons
    5
    """

    __slots__ = ("tree", "data")

    def __init__(
        self, tree: FTree, data: Optional[ProductRep]
    ) -> None:
        self.tree = tree
        self.data = data

    # -- relational view -----------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes in canonical (sorted) order."""
        return tuple(sorted(self.tree.attributes()))

    def is_empty(self) -> bool:
        return self.data is None

    def size(self) -> int:
        """Representation size ``|E|``: the number of singletons."""
        return representation_size(self.tree.roots, self.data)

    def count(self) -> int:
        """Number of represented tuples, without enumeration."""
        return tuple_count(self.tree.roots, self.data)

    def flat_data_elements(self) -> int:
        """Size of the *flat* equivalent in data elements."""
        return data_elements(self.tree.roots, self.data)

    def __iter__(self) -> Iterator[Assignment]:
        return iter_assignments(self.tree.roots, self.data)

    def rows(
        self, attributes: Optional[Sequence[str]] = None
    ) -> Iterator[tuple]:
        """Iterate tuples projected onto ``attributes`` (default all)."""
        order = self.attributes if attributes is None else tuple(attributes)
        return iter_rows(self.tree.roots, self.data, order)

    def to_relation(self, name: str = "flat") -> Relation:
        """Materialise the flat relation (use with care on big data)."""
        return Relation.from_rows(name, self.attributes, self.rows())

    def to_expression(self) -> Expression:
        """The Definition-1 expression AST of this representation."""
        if self.data is None:
            return Empty(self.tree.attributes())
        return expression_of(self.tree, self.data)

    # -- aggregates (computed without enumeration) -----------------------------

    def sum(self, attribute: str) -> float:
        """``SUM(attribute)`` over all represented tuples."""
        from repro.core import aggregate

        return aggregate.sum_of(self.tree.roots, self.data, attribute)

    def avg(self, attribute: str) -> Optional[float]:
        """``AVG(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.average(
            self.tree.roots, self.data, attribute
        )

    def min(self, attribute: str):
        """``MIN(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.min_of(self.tree.roots, self.data, attribute)

    def max(self, attribute: str):
        """``MAX(attribute)``; ``None`` on the empty relation."""
        from repro.core import aggregate

        return aggregate.max_of(self.tree.roots, self.data, attribute)

    def count_distinct(self, attribute: str) -> int:
        """``COUNT(DISTINCT attribute)``."""
        from repro.core import aggregate

        return aggregate.count_distinct(
            self.tree.roots, self.data, attribute
        )

    def group_count(self, attribute: str):
        """``GROUP BY attribute`` with ``COUNT(*)`` per group."""
        from repro.core import aggregate

        return aggregate.group_count(
            self.tree.roots, self.data, attribute
        )

    # -- comparisons and checks ----------------------------------------------

    def same_relation(self, other: "FactorisedRelation") -> bool:
        """Do both factorisations represent the same relation?"""
        if set(self.attributes) != set(other.attributes):
            return False
        mine = set(self.rows())
        theirs = set(other.rows(self.attributes))
        return mine == theirs

    def equals_flat(self, relation: Relation) -> bool:
        """Does this factorisation represent exactly ``relation``?"""
        if set(self.attributes) != set(relation.attributes):
            return False
        order = self.attributes
        perm = [relation.schema.index_of(a) for a in order]
        flat = {tuple(row[i] for i in perm) for row in relation}
        return set(self.rows(order)) == flat

    def validate(self) -> "FactorisedRelation":
        """Check all structural invariants; returns self for chaining."""
        validate_relation(self.tree, self.data)
        return self

    # -- display ---------------------------------------------------------------

    def pretty(self, unicode_glyphs: bool = True) -> str:
        """Render as a Definition-1 expression string."""
        return self.to_expression().to_text(unicode_glyphs)

    def __repr__(self) -> str:
        return (
            f"FactorisedRelation(attrs={list(self.attributes)}, "
            f"size={self.size()}, tuples={self.count()})"
        )

    def copy(self) -> "FactorisedRelation":
        data = None if self.data is None else self.data.copy()
        return FactorisedRelation(self.tree, data)
