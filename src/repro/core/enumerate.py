"""Constant-delay enumeration of the tuples of an f-representation.

Section 2: "the tuples of a given f-representation E over a set S of
attributes can be enumerated with O(|E|) space and precomputation time,
and O(|S|) delay between successive tuples."  The generator below is
the Python equivalent: a depth-first walk over a work list of
(node, union) pairs that keeps a single mutable partial assignment and
never materialises the flat relation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core import arena as _arena
from repro.core.arena import ArenaRep
from repro.core.ftree import FNode
from repro.core.frep import ProductRep, UnionRep

Assignment = Dict[str, object]
_Unit = Tuple[FNode, UnionRep]
Rep = Union[ProductRep, ArenaRep]


def _walk(units: List[_Unit], partial: Assignment) -> Iterator[None]:
    """Yield once per complete assignment of all pending units.

    Every unit is one (node, union) pair still to be instantiated.  At
    each step the head node receives each of its union's values in
    turn; its children join the work list together with the remaining
    units.  A yield fires exactly when the work list is exhausted, at
    which point ``partial`` holds a full tuple; each node on the
    current derivation was set after any previous derivation touched
    it, so no stale values can leak into a yielded assignment.
    """
    if not units:
        yield None
        return
    (node, union), rest = units[0], units[1:]
    for value, child in union.entries:
        for attr in node.label:
            partial[attr] = value
        child_units = list(zip(node.children, child.factors))
        yield from _walk(child_units + rest, partial)


def iter_assignments(
    nodes: Sequence[FNode], product: Optional[Rep]
) -> Iterator[Assignment]:
    """Yield every tuple of the representation as an attr->value dict.

    Tuples come out in the lexicographic order induced by the canonical
    node order and the sorted unions, so the output is deterministic --
    identical for both physical encodings (an arena dispatches to its
    columnar walk, which visits entries in the same DFS order).
    """
    if product is None:
        return
    if isinstance(product, ArenaRep):
        yield from _arena.iter_assignments(product)
        return
    partial: Assignment = {}
    units = list(zip(nodes, product.factors))
    for _ in _walk(units, partial):
        yield dict(partial)


def iter_rows(
    nodes: Sequence[FNode],
    product: Optional[Rep],
    attributes: Sequence[str],
) -> Iterator[tuple]:
    """Yield tuples projected onto ``attributes`` in the given order."""
    if product is None:
        return
    if isinstance(product, ArenaRep):
        yield from _arena.iter_rows(product, attributes)
        return
    partial: Assignment = {}
    units = list(zip(nodes, product.factors))
    for _ in _walk(units, partial):
        yield tuple(partial[attr] for attr in attributes)
