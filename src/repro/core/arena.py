"""A flat, columnar arena encoding of structured f-representations.

The object encoding of :mod:`repro.core.frep` spends one Python object
per union entry (a ``(value, ProductRep)`` tuple inside a ``UnionRep``
inside a ``ProductRep``), so every hot-path walk -- building, counting,
enumerating, aggregating -- is dominated by allocator churn and
attribute chasing.  The memory-resident-encoding literature (Szépkúti's
compact multidimensional layouts, EMBANKS' disk-based indexes) shows
the alternative: a *flat, offset-addressed* encoding of the same
hierarchy.

:class:`ArenaRep` stores an f-representation as parallel integer
columns, one set per f-tree node (nodes numbered in canonical
pre-order):

- ``values[i]`` -- one interned value id per union entry of node ``i``,
  across *all* occurrences of that node's unions, in DFS order (so each
  single union occupies a contiguous run, sorted by value);
- ``child_lo[i][j]`` / ``child_hi[i][j]`` -- per entry, the half-open
  range of entries in child ``j``'s columns holding that entry's child
  union (DFS construction makes every child union contiguous);
- ``pool`` -- the interned distinct values; ids are indices into it.

One union entry therefore costs ``1 + 2 * #children`` machine-word
array slots instead of a tuple, a ``ProductRep`` and per-child
``UnionRep`` objects.  Columns are :class:`array.array` (``'q'``,
int64) so they also serialise as raw bytes (see the ``arena`` blob kind
in :mod:`repro.persist.codec`).  When numpy is importable the counting
kernels use vectorised segment sums (with an explicit int64 overflow
guard falling back to exact Python integers); the stdlib path is always
available and always exact.

Conventions match the object encoding: the *empty* relation is encoded
as ``None`` (never as an empty arena), and the nullary tuple
(``ProductRep([])`` over a forest with no trees) is an arena with zero
nodes, which counts one tuple and enumerates a single empty row.

The arena is immutable by convention: operators never mutate columns in
place, and derived arenas (selection filters, subtree-dropping
projections) may *share* column arrays and the value pool with their
source.  The pool may contain values that no surviving entry references
(rolled-back build entries, filtered selections); decoding simply never
visits them.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from itertools import accumulate
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.frep import FRepError, ProductRep, UnionRep
from repro.core.ftree import FTree

try:  # optional acceleration; the stdlib path below is always complete
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

#: Pre-multiplication bound under which int64 arithmetic cannot
#: overflow; counts that may exceed it are computed with exact Python
#: integers instead of numpy.
_INT64_SAFE = 1 << 62


class ArenaError(FRepError):
    """Raised when an arena violates its structural invariants."""


def _i64() -> array:
    return array("q")


def _extend_ids(dest: array, source, lo: int, hi: int) -> None:
    """Append ``source[lo:hi]`` (an ``array('q')`` or an int64 ndarray,
    e.g. an mmap-backed column view) to ``dest`` verbatim."""
    if _np is not None and isinstance(source, _np.ndarray):
        dest.frombytes(source[lo:hi].tobytes())
    else:
        dest.extend(source[lo:hi])


def _as_np(column):
    """An int64 ndarray view of a column (``None`` without numpy)."""
    if _np is None:
        return None
    if isinstance(column, _np.ndarray):
        return column
    return _np.frombuffer(column, dtype=_np.int64)


class ValuePool:
    """A shareable, append-only interned-value pool.

    Ordinary arenas own a plain ``list`` pool; a :class:`ValuePool` is
    the *shared* variant: many arenas (every shard result of one
    database, every column batch on one wire connection) reference the
    same pool object, so their value ids are directly comparable and
    :func:`repro.ops.arena_kernels.union_arena` can merge columns
    without any id remapping.  Interning is thread-safe (shard workers
    and the server's task pool intern concurrently); reads are
    lock-free, misses take a lock.  Ids are never remapped or removed
    -- :meth:`ArenaWriter.finish` skips its pool compaction for shared
    pools -- so ids handed out remain valid forever.
    """

    __slots__ = ("_values", "_intern", "_lock")

    def __init__(self, values: Sequence[object] = ()) -> None:
        self._values: List[object] = list(values)
        self._intern: Dict[type, Dict[object, int]] = {}
        self._lock = threading.Lock()
        for vid, value in enumerate(self._values):
            table = self._intern.setdefault(value.__class__, {})
            table.setdefault(value, vid)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, vid):
        return self._values[vid]

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def intern(self, value: object) -> int:
        table = self._intern.get(value.__class__)
        if table is not None:
            vid = table.get(value)
            if vid is not None:
                return vid
        with self._lock:
            # Re-check under the lock: another thread may have interned
            # the value (or created the type table) since the fast path.
            table = self._intern.get(value.__class__)
            if table is None:
                table = self._intern[value.__class__] = {}
            vid = table.get(value)
            if vid is None:
                vid = len(self._values)
                self._values.append(value)
                table[value] = vid
            return vid

    def values_since(self, base: int) -> List[object]:
        """The values appended at ids ``base..`` (for wire deltas)."""
        return self._values[base:]

    def __reduce__(self):
        # Pickling (process-pool task results) drops the lock and the
        # sharing identity: the receiving process gets its own pool.
        return (ValuePool, (list(self._values),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValuePool(len={len(self._values)})"


# -- skeleton: the per-tree node layout --------------------------------------


class _Skeleton:
    """The canonical pre-order layout of one f-tree's nodes.

    Node ``i``'s descendants are exactly the contiguous index range
    ``(i, end[i])`` -- the property every rollback and bulk-copy below
    relies on.
    """

    __slots__ = (
        "labels",
        "attr_tuples",
        "children",
        "parent",
        "roots",
        "end",
        "index",
        "__weakref__",
    )

    def __init__(self, tree: FTree) -> None:
        labels: List[FrozenSet[str]] = []
        attr_tuples: List[Tuple[str, ...]] = []
        children: List[Tuple[int, ...]] = []
        parent: List[int] = []
        end: List[int] = []

        def walk(node, parent_idx: int) -> int:
            idx = len(labels)
            labels.append(node.label)
            attr_tuples.append(tuple(sorted(node.label)))
            children.append(())
            parent.append(parent_idx)
            end.append(idx + 1)
            children[idx] = tuple(walk(c, idx) for c in node.children)
            end[idx] = len(labels)
            return idx

        self.roots: Tuple[int, ...] = tuple(
            walk(root, -1) for root in tree.roots
        )
        self.labels = labels
        self.attr_tuples = attr_tuples
        self.children = children
        self.parent = parent
        self.end = end
        self.index: Dict[FrozenSet[str], int] = {
            label: i for i, label in enumerate(labels)
        }

    def __len__(self) -> int:
        return len(self.labels)

    def node_of_attr(self, attribute: str) -> int:
        for i, label in enumerate(self.labels):
            if attribute in label:
                return i
        raise ArenaError(f"attribute {attribute!r} not in this arena")


def _skeleton_of(tree: FTree) -> _Skeleton:
    return _Skeleton(tree)


# -- the arena ---------------------------------------------------------------


class ArenaRep:
    """A flat, columnar f-representation (see the module docstring)."""

    __slots__ = ("skel", "values", "child_lo", "child_hi", "pool")

    def __init__(
        self,
        skel: _Skeleton,
        values: List[array],
        child_lo: List[List[array]],
        child_hi: List[List[array]],
        pool: List[object],
    ) -> None:
        self.skel = skel
        self.values = values
        self.child_lo = child_lo
        self.child_hi = child_hi
        self.pool = pool

    # -- introspection -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.skel)

    @property
    def entry_count(self) -> int:
        """Total union entries across all columns."""
        return sum(len(column) for column in self.values)

    def singleton_count(self) -> int:
        """The paper's ``|E|``: entries weighted by label width."""
        return sum(
            len(column) * len(self.skel.labels[i])
            for i, column in enumerate(self.values)
        )

    def nbytes(self) -> int:
        """Approximate bytes held by the integer columns."""
        total = 0
        for i, column in enumerate(self.values):
            total += column.itemsize * len(column)
            for lo, hi in zip(self.child_lo[i], self.child_hi[i]):
                total += lo.itemsize * len(lo)
                total += hi.itemsize * len(hi)
        return total

    def attributes(self) -> Tuple[str, ...]:
        out: List[str] = []
        for attrs in self.skel.attr_tuples:
            out.extend(attrs)
        return tuple(sorted(out))

    def __repr__(self) -> str:
        return (
            f"ArenaRep(nodes={self.node_count}, "
            f"entries={self.entry_count}, pool={len(self.pool)})"
        )

    def copy(self) -> "ArenaRep":
        return ArenaRep(
            self.skel,
            [array("q", column) for column in self.values],
            [[array("q", a) for a in slots] for slots in self.child_lo],
            [[array("q", a) for a in slots] for slots in self.child_hi],
            list(self.pool),
        )

    # -- conversion --------------------------------------------------------

    def to_product(self) -> ProductRep:
        """Rebuild the object encoding (inverse of :func:`from_product`)."""
        skel, pool = self.skel, self.pool
        values, child_lo, child_hi = (
            self.values,
            self.child_lo,
            self.child_hi,
        )

        def build_union(idx: int, lo: int, hi: int) -> UnionRep:
            kids = skel.children[idx]
            column = values[idx]
            los, his = child_lo[idx], child_hi[idx]
            entries = []
            for e in range(lo, hi):
                factors = [
                    build_union(k, los[j][e], his[j][e])
                    for j, k in enumerate(kids)
                ]
                entries.append((pool[column[e]], ProductRep(factors)))
            return UnionRep(entries)

        return ProductRep(
            [
                build_union(r, 0, len(values[r]))
                for r in self.skel.roots
            ]
        )


# -- incremental construction ------------------------------------------------


class ArenaWriter:
    """Append-only arena construction with subtree rollback.

    The ground-representation builder (:class:`repro.core.build.
    ArenaFactoriser`) and the selection filter both construct arenas
    entry by entry: children are written first, and an entry whose
    children forest turns out empty is *rolled back* by truncating
    every descendant column to its recorded watermark (pre-order makes
    descendants a contiguous index range, so a watermark is one length
    per descendant column).
    """

    __slots__ = (
        "skel",
        "values",
        "child_lo",
        "child_hi",
        "pool",
        "_intern",
        "_shared",
    )

    def __init__(self, tree_or_skel, pool: Optional[ValuePool] = None) -> None:
        skel = (
            tree_or_skel
            if isinstance(tree_or_skel, _Skeleton)
            else _skeleton_of(tree_or_skel)
        )
        self.skel = skel
        n = len(skel)
        self.values: List[array] = [_i64() for _ in range(n)]
        self.child_lo: List[List[array]] = [
            [_i64() for _ in skel.children[i]] for i in range(n)
        ]
        self.child_hi: List[List[array]] = [
            [_i64() for _ in skel.children[i]] for i in range(n)
        ]
        self._shared = pool is not None
        if self._shared:
            self.pool = pool  # type: ignore[assignment]
            self._intern = None  # type: ignore[assignment]
            return
        self.pool: List[object] = []
        # One intern table per value *type*: True == 1 and 1.0 == 1
        # must not collapse into one pool slot (decoding would change
        # value types), and a per-type dict avoids allocating a
        # (type, value) key tuple on the build hot path.
        self._intern: Dict[type, Dict[object, int]] = {}

    @property
    def index(self) -> Dict[FrozenSet[str], int]:
        return self.skel.index

    def intern(self, value: object) -> int:
        if self._shared:
            return self.pool.intern(value)  # type: ignore[union-attr]
        table = self._intern.get(value.__class__)
        if table is None:
            table = self._intern[value.__class__] = {}
        vid = table.get(value)
        if vid is None:
            vid = table[value] = len(self.pool)
            self.pool.append(value)
        return vid

    def entry_count(self, idx: int) -> int:
        return len(self.values[idx])

    def mark(self, idx: int) -> List[int]:
        """Watermarks of every descendant column of ``idx``."""
        values = self.values
        return [
            len(values[k])
            for k in range(idx + 1, self.skel.end[idx])
        ]

    def commit(self, idx: int, value: object, marks: List[int]) -> None:
        """Seal one entry of node ``idx``: its children (written since
        :meth:`mark`) become the entry's child ranges."""
        values = self.values
        for j, k in enumerate(self.skel.children[idx]):
            self.child_lo[idx][j].append(marks[k - idx - 1])
            self.child_hi[idx][j].append(len(values[k]))
        values[idx].append(self.intern(value))

    def rollback(self, idx: int, marks: List[int]) -> None:
        """Discard everything written below ``idx`` since :meth:`mark`."""
        for k, watermark in zip(
            range(idx + 1, self.skel.end[idx]), marks
        ):
            del self.values[k][watermark:]
            for slot in self.child_lo[k]:
                del slot[watermark:]
            for slot in self.child_hi[k]:
                del slot[watermark:]

    def extend_leaf(self, idx: int, leaf_values: Sequence[object]) -> None:
        """Fast path: append a whole leaf union (no children, no marks)."""
        if not leaf_values:
            return
        if self._shared:
            pool_intern = self.pool.intern  # type: ignore[union-attr]
            self.values[idx].extend(
                pool_intern(value) for value in leaf_values
            )
            return
        # Candidate lists are homogeneous in practice: resolve the
        # per-type intern table once per union, not once per value.
        table = self._intern.get(leaf_values[0].__class__)
        if table is None:
            table = self._intern[leaf_values[0].__class__] = {}
        pool = self.pool
        column = self.values[idx]
        first_class = leaf_values[0].__class__
        for value in leaf_values:
            if value.__class__ is not first_class:
                column.append(self.intern(value))
                continue
            vid = table.get(value)
            if vid is None:
                vid = table[value] = len(pool)
                pool.append(value)
            column.append(vid)

    def finish(self) -> ArenaRep:
        """Compact the pool to referenced values and freeze the arena.

        Rollbacks may leave interned values no surviving entry uses;
        remapping ids to first-use order keeps the pool tight and the
        encoding deterministic for a given construction order.  A
        *shared* :class:`ValuePool` is never compacted: its ids are
        also referenced by other arenas.
        """
        if self._shared:
            return ArenaRep(
                self.skel,
                self.values,
                self.child_lo,
                self.child_hi,
                self.pool,
            )
        remap: Dict[int, int] = {}
        pool: List[object] = []
        for column in self.values:
            for e, vid in enumerate(column):
                new = remap.get(vid)
                if new is None:
                    new = remap[vid] = len(pool)
                    pool.append(self.pool[vid])
                column[e] = new
        return ArenaRep(
            self.skel, self.values, self.child_lo, self.child_hi, pool
        )


# -- conversion from the object encoding -------------------------------------


def from_product(
    tree: FTree, product: Optional[ProductRep]
) -> Optional[ArenaRep]:
    """Encode an object representation into an arena (``None`` = empty)."""
    if product is None:
        return None
    writer = ArenaWriter(tree)
    skel = writer.skel
    values = writer.values
    child_lo, child_hi = writer.child_lo, writer.child_hi
    intern = writer.intern

    def emit_union(idx: int, union: UnionRep) -> None:
        kids = skel.children[idx]
        if not kids:
            values[idx].extend(
                intern(value) for value, _ in union.entries
            )
            return
        for value, child in union.entries:
            starts = [len(values[k]) for k in kids]
            for k, factor in zip(kids, child.factors):
                emit_union(k, factor)
            for j, k in enumerate(kids):
                child_lo[idx][j].append(starts[j])
                child_hi[idx][j].append(len(values[k]))
            values[idx].append(intern(value))

    if len(product.factors) != len(skel.roots):
        raise ArenaError(
            f"product arity {len(product.factors)} does not match "
            f"forest arity {len(skel.roots)}"
        )
    for r, union in zip(skel.roots, product.factors):
        emit_union(r, union)
    return writer.finish()


def to_product(arena: Optional[ArenaRep]) -> Optional[ProductRep]:
    """Decode an arena back to the object encoding (``None`` = empty)."""
    return None if arena is None else arena.to_product()


# -- validation --------------------------------------------------------------


def _column_bounds(column: array) -> Tuple[int, int]:
    """(min, max) of a column, vectorised when numpy is present."""
    if not len(column):
        return 0, -1
    if _np is not None:
        view = _np.frombuffer(column, dtype=_np.int64)
        return int(view.min()), int(view.max())
    return min(column), max(column)


def validate_arena_bounds(
    tree: FTree, arena: Optional[ArenaRep]
) -> None:
    """Flat structural checks: skeleton alignment, column parallelism,
    id and range bounds, and DFS contiguity.  O(entries) integer scans
    (vectorised under numpy), so the persistence layer can afford them
    on every load.

    The *contiguity* (exact tiling) check matters beyond tidiness:
    every construction path appends child unions in parent-entry
    order, so ``child_lo[0] == 0``, ``child_hi[e] == child_lo[e+1]``
    and ``child_hi[-1] == len(child column)``.  The bulk-copy kernels
    (:func:`select_filter`) rely on that layout, so a CRC-valid but
    tampered blob with merely in-bounds ranges must be rejected here,
    not crash (or mis-answer) later.
    """
    if arena is None:
        return
    skel = arena.skel
    expected = _skeleton_of(tree)
    if skel.labels != expected.labels:
        raise ArenaError("arena skeleton does not match the f-tree")
    pool_size = len(arena.pool)
    for i in range(len(skel)):
        column = arena.values[i]
        low, high = _column_bounds(column)
        if len(column) and not (0 <= low and high < pool_size):
            raise ArenaError(
                f"node {i}: value ids outside the pool "
                f"[{low}, {high}] vs {pool_size}"
            )
        for j, k in enumerate(skel.children[i]):
            los = arena.child_lo[i][j]
            his = arena.child_hi[i][j]
            if len(los) != len(column) or len(his) != len(column):
                raise ArenaError(
                    f"node {i}: child ranges not parallel to values"
                )
            limit = len(arena.values[k])
            if not len(column):
                if limit:
                    raise ArenaError(
                        f"node {k}: orphaned child entries (parent "
                        f"node {i} has none)"
                    )
                continue
            if los[0] != 0 or his[-1] != limit:
                raise ArenaError(
                    f"node {i}: child ranges do not tile the child "
                    f"column [0, {limit})"
                )
            if _np is not None:
                lo_view = _np.frombuffer(los, dtype=_np.int64)
                hi_view = _np.frombuffer(his, dtype=_np.int64)
                bad = not bool((lo_view < hi_view).all())
                if not bad and len(column) > 1:
                    bad = not bool(
                        (lo_view[1:] == hi_view[:-1]).all()
                    )
            else:
                bad = any(lo >= hi for lo, hi in zip(los, his))
                if not bad:
                    bad = any(
                        los[e + 1] != his[e]
                        for e in range(len(column) - 1)
                    )
            if bad:
                raise ArenaError(
                    f"node {i}: child ranges are empty, overlap or "
                    f"leave gaps (unions must tile in DFS order)"
                )


def validate_arena(tree: FTree, arena: Optional[ArenaRep]) -> None:
    """Full structural checks: bounds plus the per-union strict value
    order.  Complements (not replaces) the object-level
    :func:`repro.core.validate.validate_relation`."""
    if arena is None:
        return
    validate_arena_bounds(tree, arena)
    skel = arena.skel
    pool = arena.pool

    def check_union(idx: int, lo: int, hi: int) -> None:
        column = arena.values[idx]
        if lo >= hi:
            raise ArenaError(
                f"node {idx}: empty union inside a non-empty arena"
            )
        for e in range(lo + 1, hi):
            if not pool[column[e - 1]] < pool[column[e]]:
                raise ArenaError(
                    f"node {idx}: union values not strictly "
                    f"increasing at entry {e}"
                )
        for j, k in enumerate(skel.children[idx]):
            for e in range(lo, hi):
                check_union(
                    k,
                    arena.child_lo[idx][j][e],
                    arena.child_hi[idx][j][e],
                )

    for r in skel.roots:
        check_union(r, 0, len(arena.values[r]))


# -- size and counting -------------------------------------------------------


def representation_size(arena: Optional[ArenaRep]) -> int:
    """``|E|`` in singletons -- O(#nodes) on the arena."""
    return 0 if arena is None else arena.singleton_count()


def _prefix(counts: List[int]) -> List[int]:
    return list(accumulate(counts, initial=0))


def _entry_counts(arena: ArenaRep) -> List[object]:
    """Per node, per entry: tuples represented below-and-including the
    entry (the children-forest product).  Bottom-up; numpy-vectorised
    per node when the segment sums provably fit int64, exact Python
    integers otherwise."""
    skel = arena.skel
    n = len(skel)
    counts: List[object] = [None] * n  # list[int] or int64 ndarray
    for idx in range(n - 1, -1, -1):
        m = len(arena.values[idx])
        kids = skel.children[idx]
        if not kids:
            counts[idx] = (
                _np.ones(m, dtype=_np.int64)
                if _np is not None
                else [1] * m
            )
            continue
        if _np is not None and all(
            isinstance(counts[k], _np.ndarray) for k in kids
        ):
            bound = 1
            for k in kids:
                child = counts[k]
                peak = int(child.max()) if len(child) else 0
                bound *= max(peak * len(child), 1)
                if bound > _INT64_SAFE:
                    break
            if bound <= _INT64_SAFE:
                total = _np.ones(m, dtype=_np.int64)
                for j, k in enumerate(kids):
                    child = counts[k]
                    prefix = _np.zeros(
                        len(child) + 1, dtype=_np.int64
                    )
                    _np.cumsum(child, out=prefix[1:])
                    lo = _np.frombuffer(
                        arena.child_lo[idx][j], dtype=_np.int64
                    )
                    hi = _np.frombuffer(
                        arena.child_hi[idx][j], dtype=_np.int64
                    )
                    total *= prefix[hi] - prefix[lo]
                counts[idx] = total
                continue
        # Exact fallback (also the numpy-free path).
        total_list = [1] * m
        for j, k in enumerate(kids):
            child = counts[k]
            if _np is not None and isinstance(child, _np.ndarray):
                child = child.tolist()
            prefix = _prefix(child)
            los = arena.child_lo[idx][j]
            his = arena.child_hi[idx][j]
            for e in range(m):
                total_list[e] *= prefix[his[e]] - prefix[los[e]]
        counts[idx] = total_list
    return counts


def _column_total(column) -> int:
    """Exact Python-int sum of a per-entry count column."""
    if _np is not None and isinstance(column, _np.ndarray):
        return sum(column.tolist())
    return sum(column)


def tuple_count(arena: Optional[ArenaRep]) -> int:
    """Number of represented tuples, by sum/product over the columns."""
    if arena is None:
        return 0
    counts = _entry_counts(arena)
    total = 1
    for r in arena.skel.roots:
        total *= _column_total(counts[r])
        if total == 0:
            return 0
    return total


# -- enumeration -------------------------------------------------------------
#
# Two interchangeable engines with identical output order:
#
# - a generic recursive walk (the reference, always available);
# - a *compiled* enumerator: per (skeleton, attribute order) we
#   generate the statically nested ``for`` loops the skeleton dictates
#   -- one loop per node, ranges read straight off the offset columns
#   -- and ``exec`` them once.  No per-entry unit lists, no recursion,
#   no dict lookups per row; the technique FDB's descendants (LMFAO
#   and friends) apply to aggregation, applied here to enumeration.
#
# Compiled enumerators are cached per skeleton (weakly) and keyed by
# the requested attribute order, so arenas sharing a skeleton (e.g. a
# selection filter's output) share the machine-made loop nest.

#: CPython rejects more than ~20 statically nested blocks; deeper
#: skeletons use the recursive walk.
_MAX_CODEGEN_NODES = 18

#: Arenas smaller than this enumerate via the walk: below it, the
#: one-off exec/compile cost dominates the loop savings.
_CODEGEN_MIN_ENTRIES = 32

_ENUM_CACHE: "weakref.WeakKeyDictionary[_Skeleton, Dict[Tuple[str, ...], Callable]]" = (
    weakref.WeakKeyDictionary()
)


def _compile_rows(
    skel: _Skeleton, order: Tuple[str, ...]
) -> Callable[[ArenaRep], Iterator[tuple]]:
    """Build (or fetch) the compiled enumerator for one skeleton and
    output attribute order."""
    per_skel = _ENUM_CACHE.setdefault(skel, {})
    cached = per_skel.get(order)
    if cached is not None:
        return cached

    slot_of = {attr: i for i, attr in enumerate(order)}
    lines: List[str] = [
        "def _rows(arena):",
        "    _values = arena.values",
        "    _lo = arena.child_lo",
        "    _hi = arena.child_hi",
        "    _pool = arena.pool",
        f"    _buffer = [None] * {len(order)}",
    ]
    # Local binds: one name per column, resolved once.
    for idx in range(len(skel)):
        lines.append(f"    _v{idx} = _values[{idx}]")
        for j, k in enumerate(skel.children[idx]):
            lines.append(f"    _l{k} = _lo[{idx}][{j}]")
            lines.append(f"    _h{k} = _hi[{idx}][{j}]")

    def emit(units: List[Tuple[int, Optional[int]]], depth: int) -> None:
        pad = "    " * (depth + 1)
        if not units:
            lines.append(f"{pad}yield tuple(_buffer)")
            return
        (idx, parent), rest = units[0], units[1:]
        var = f"_e{idx}"
        if parent is None:
            rng = f"range(len(_v{idx}))"
        else:
            rng = f"range(_l{idx}[_e{parent}], _h{idx}[_e{parent}])"
        lines.append(f"{pad}for {var} in {rng}:")
        body = "    " * (depth + 2)
        slots = [
            slot_of[attr]
            for attr in skel.attr_tuples[idx]
            if attr in slot_of
        ]
        if slots:
            lines.append(f"{body}_x = _pool[_v{idx}[{var}]]")
            for slot in slots:
                lines.append(f"{body}_buffer[{slot}] = _x")
        children = [(k, idx) for k in skel.children[idx]]
        emit(children + rest, depth + 1)

    emit([(r, None) for r in skel.roots], 0)
    namespace: Dict[str, object] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - self-generated
    compiled = namespace["_rows"]
    per_skel[order] = compiled
    return compiled


def _iter_rows_walk(
    arena: ArenaRep, attributes: Sequence[str]
) -> Iterator[tuple]:
    """The generic recursive enumeration walk (reference engine)."""
    skel = arena.skel
    order = tuple(attributes)
    slot_of = {attr: i for i, attr in enumerate(order)}
    node_slots: List[Tuple[int, ...]] = [
        tuple(
            slot_of[attr]
            for attr in attrs
            if attr in slot_of
        )
        for attrs in skel.attr_tuples
    ]
    buffer: List[object] = [None] * len(order)
    pool = arena.pool
    values = arena.values
    child_lo, child_hi = arena.child_lo, arena.child_hi
    children = skel.children

    def walk(units: Tuple[Tuple[int, int, int], ...]) -> Iterator[tuple]:
        if not units:
            yield tuple(buffer)
            return
        (idx, lo, hi) = units[0]
        rest = units[1:]
        column = values[idx]
        slots = node_slots[idx]
        kids = children[idx]
        los, his = child_lo[idx], child_hi[idx]
        for e in range(lo, hi):
            value = pool[column[e]]
            for s in slots:
                buffer[s] = value
            child_units = tuple(
                (k, los[j][e], his[j][e]) for j, k in enumerate(kids)
            )
            yield from walk(child_units + rest)

    yield from walk(
        tuple((r, 0, len(values[r])) for r in skel.roots)
    )


def iter_rows(
    arena: Optional[ArenaRep], attributes: Sequence[str]
) -> Iterator[tuple]:
    """Yield tuples projected onto ``attributes``, in exactly the order
    the object-encoding walk produces them (depth-first, unions in
    value order).  Large arenas with shallow skeletons run through the
    compiled per-skeleton loop nest; everything else takes the
    recursive walk -- both produce identical sequences."""
    if arena is None:
        return
    known = {
        attr
        for attrs in arena.skel.attr_tuples
        for attr in attrs
    }
    for attr in attributes:
        if attr not in known:
            # The object walk raises KeyError on its first row; a
            # silent None column would turn a typo into wrong data.
            raise KeyError(attr)
    node_count = arena.node_count
    if (
        0 < node_count <= _MAX_CODEGEN_NODES
        and arena.entry_count >= _CODEGEN_MIN_ENTRIES
    ):
        compiled = _compile_rows(arena.skel, tuple(attributes))
        yield from compiled(arena)
        return
    yield from _iter_rows_walk(arena, attributes)


def iter_assignments(
    arena: Optional[ArenaRep],
) -> Iterator[Dict[str, object]]:
    """Yield every tuple as an attr->value dict (object-walk order)."""
    if arena is None:
        return
    attrs: List[str] = []
    for label in arena.skel.attr_tuples:
        attrs.extend(label)
    for row in iter_rows(arena, attrs):
        yield dict(zip(attrs, row))


# -- aggregates --------------------------------------------------------------


def _require_attribute(arena: ArenaRep, attribute: str) -> int:
    from repro.core.aggregate import AggregateError

    for i, label in enumerate(arena.skel.labels):
        if attribute in label:
            return i
    raise AggregateError(f"unknown attribute {attribute!r}")


def count(arena: Optional[ArenaRep]) -> int:
    return tuple_count(arena)


def _count_sum(
    arena: ArenaRep, attribute: str
) -> Tuple[int, float]:
    """(tuple count, SUM(attribute)) via one exact bottom-up pass."""
    skel = arena.skel
    n = len(skel)
    # Per node: prefix sums of per-entry (count, sum), so parents read
    # child segments in O(1).
    cnt_prefix: List[List[int]] = [[] for _ in range(n)]
    sum_prefix: List[List[float]] = [[] for _ in range(n)]
    pool = arena.pool
    for idx in range(n - 1, -1, -1):
        m = len(arena.values[idx])
        kids = skel.children[idx]
        here = attribute in skel.labels[idx]
        column = arena.values[idx]
        cnts: List[int] = []
        sums: List[float] = []
        for e in range(m):
            forest_count = 1
            forest_sum = 0.0
            for j, k in enumerate(kids):
                lo = arena.child_lo[idx][j][e]
                hi = arena.child_hi[idx][j][e]
                part_count = cnt_prefix[k][hi] - cnt_prefix[k][lo]
                part_sum = sum_prefix[k][hi] - sum_prefix[k][lo]
                forest_sum = (
                    forest_sum * part_count + part_sum * forest_count
                )
                forest_count *= part_count
            if here:
                forest_sum += float(pool[column[e]]) * forest_count  # type: ignore[arg-type]
            cnts.append(forest_count)
            sums.append(forest_sum)
        cnt_prefix[idx] = _prefix(cnts)
        sum_prefix[idx] = list(accumulate(sums, initial=0.0))
    total_count = 1
    total_sum = 0.0
    for r in skel.roots:
        part_count = cnt_prefix[r][-1]
        part_sum = sum_prefix[r][-1]
        total_sum = total_sum * part_count + part_sum * total_count
        total_count *= part_count
        if total_count == 0:
            return 0, 0.0
    return total_count, total_sum


def sum_of(arena: ArenaRep, attribute: str) -> float:
    _require_attribute(arena, attribute)
    return _count_sum(arena, attribute)[1]


def average(arena: ArenaRep, attribute: str) -> Optional[float]:
    _require_attribute(arena, attribute)
    total_count, total_sum = _count_sum(arena, attribute)
    return total_sum / total_count if total_count else None


def extreme(arena: ArenaRep, attribute: str, minimum: bool):
    """MIN/MAX: every arena entry is reachable (no empty unions), so
    the extreme over the node's whole value column is the answer."""
    idx = _require_attribute(arena, attribute)
    pool = arena.pool
    found = (pool[vid] for vid in arena.values[idx])
    return min(found) if minimum else max(found)


def count_distinct(arena: ArenaRep, attribute: str) -> int:
    idx = _require_attribute(arena, attribute)
    # Decode through the pool: interning is per *type* (1, 1.0 and
    # True occupy distinct slots), but COUNT(DISTINCT) uses value
    # equality, under which they collapse -- exactly as the object
    # encoding's value set does.
    pool = arena.pool
    return len({pool[vid] for vid in set(arena.values[idx])})


def group_count(
    arena: ArenaRep, attribute: str
) -> Dict[object, int]:
    """GROUP BY ``attribute`` with COUNT(*), without enumeration.

    Per entry ``e`` of the attribute's node: tuples containing it are
    ``above(e) * below(e)`` -- the context multiplier accumulated down
    the root-to-node path times the entry's children-forest count.
    """
    target = _require_attribute(arena, attribute)
    skel = arena.skel
    counts = _entry_counts(arena)
    totals = {r: _column_total(counts[r]) for r in skel.roots}

    # Root-to-target path.
    path = [target]
    while skel.parent[path[-1]] != -1:
        path.append(skel.parent[path[-1]])
    path.reverse()

    root = path[0]
    context = 1
    for r in skel.roots:
        if r != root:
            context *= totals[r]
    above: List[int] = [context] * len(arena.values[root])

    def seg_count(idx: int, j: int, e: int) -> int:
        k = skel.children[idx][j]
        child = counts[k]
        lo = arena.child_lo[idx][j][e]
        hi = arena.child_hi[idx][j][e]
        if _np is not None and isinstance(child, _np.ndarray):
            return int(child[lo:hi].sum(dtype=object))
        return sum(child[lo:hi])

    for step, idx in enumerate(path[:-1]):
        next_node = path[step + 1]
        slot = skel.children[idx].index(next_node)
        next_above: List[int] = [0] * len(arena.values[next_node])
        for e in range(len(arena.values[idx])):
            others = above[e]
            for j in range(len(skel.children[idx])):
                if j != slot:
                    others *= seg_count(idx, j, e)
            lo = arena.child_lo[idx][slot][e]
            hi = arena.child_hi[idx][slot][e]
            for t in range(lo, hi):
                next_above[t] = others
        above = next_above

    pool = arena.pool
    column = arena.values[target]
    below = counts[target]
    if _np is not None and isinstance(below, _np.ndarray):
        below = below.tolist()
    out: Dict[object, int] = {}
    for e, vid in enumerate(column):
        value = pool[vid]
        out[value] = out.get(value, 0) + above[e] * below[e]
    return out


# -- operator kernels --------------------------------------------------------


def _extend_offset(dest: array, source: array, lo: int, hi: int, delta: int) -> None:
    """Append ``source[lo:hi] + delta`` to ``dest``."""
    if delta == 0:
        dest.extend(source[lo:hi])
    elif _np is not None:
        shifted = (
            _np.frombuffer(source, dtype=_np.int64)[lo:hi] + delta
        )
        dest.frombytes(shifted.astype(_np.int64).tobytes())
    else:
        dest.extend(x + delta for x in source[lo:hi])


def _keep_lookup(
    arena: ArenaRep, target: int, predicate: Callable[[object], bool]
):
    """A per-value-id keep table for ``target``'s column.

    The predicate runs once per *distinct id actually present* in the
    column (never over the whole pool: a shared pool holds values of
    every attribute, on which the predicate could be meaningless), and
    the per-entry test collapses into an integer table lookup.
    """
    column = arena.values[target]
    pool = arena.pool
    if _np is not None:
        col = _as_np(column)
        keep = _np.zeros(len(pool), dtype=bool)
        for vid in _np.unique(col).tolist():
            keep[vid] = bool(predicate(pool[vid]))
        return keep, col
    keep_dict: Dict[int, bool] = {}
    for vid in set(column):
        keep_dict[vid] = bool(predicate(pool[vid]))
    return keep_dict, None


def select_filter(
    arena: ArenaRep,
    attribute: str,
    predicate: Callable[[object], bool],
) -> Optional[ArenaRep]:
    """Keep only the entries of ``attribute``'s node passing
    ``predicate``, cascading the pruning of emptied unions upward --
    the arena kernel behind constant selections.

    Subtrees that cannot contain the target node are copied wholesale
    (contiguous column slices with offset fix-up) instead of entry by
    entry, and the predicate itself is vectorised: it runs once per
    distinct value id, the resulting boolean mask over the target
    column is compacted into maximal kept runs, and each run is
    bulk-copied (values, child ranges and subtrees alike).  Returns
    ``None`` when the whole relation empties.
    """
    skel = arena.skel
    target = skel.node_of_attr(attribute)
    on_path = [False] * len(skel)
    walk_up = target
    while walk_up != -1:
        on_path[walk_up] = True
        walk_up = skel.parent[walk_up]

    writer = ArenaWriter(skel)
    new_values = writer.values
    new_lo, new_hi = writer.child_lo, writer.child_hi
    pool = arena.pool
    # The output shares the input pool: value ids are copied verbatim.
    writer.pool = pool  # type: ignore[attr-defined]

    keep, target_np = _keep_lookup(arena, target, predicate)

    def copy_bulk(idx: int, lo: int, hi: int) -> None:
        _extend_ids(new_values[idx], arena.values[idx], lo, hi)
        for j, k in enumerate(skel.children[idx]):
            los = arena.child_lo[idx][j]
            his = arena.child_hi[idx][j]
            child_lo = los[lo]
            child_hi = his[hi - 1]
            delta = len(new_values[k]) - child_lo
            _extend_offset(new_lo[idx][j], los, lo, hi, delta)
            _extend_offset(new_hi[idx][j], his, lo, hi, delta)
            copy_bulk(k, child_lo, child_hi)

    def copy_target(lo: int, hi: int) -> bool:
        """Mask the target occurrence, bulk-copy the kept runs."""
        if target_np is not None:
            mask = keep[target_np[lo:hi]]
            if mask.all():
                copy_bulk(target, lo, hi)
                return True
            hits = _np.flatnonzero(mask)
            if not len(hits):
                return False
            # Compact consecutive hits into [start, stop) runs.
            breaks = _np.flatnonzero(_np.diff(hits) > 1) + 1
            for run in _np.split(hits, breaks):
                copy_bulk(
                    target, lo + int(run[0]), lo + int(run[-1]) + 1
                )
            return True
        column = arena.values[target]
        kept = False
        e = lo
        while e < hi:
            if not keep[column[e]]:
                e += 1
                continue
            stop = e + 1
            while stop < hi and keep[column[stop]]:
                stop += 1
            copy_bulk(target, e, stop)
            kept = True
            e = stop
        return kept

    def copy_union(idx: int, lo: int, hi: int) -> bool:
        if idx == target:
            return copy_target(lo, hi)
        if not on_path[idx]:
            copy_bulk(idx, lo, hi)
            return True
        column = arena.values[idx]
        kids = skel.children[idx]
        kept = False
        for e in range(lo, hi):
            marks = writer.mark(idx)
            ok = True
            for j, k in enumerate(kids):
                if not copy_union(
                    k,
                    arena.child_lo[idx][j][e],
                    arena.child_hi[idx][j][e],
                ):
                    ok = False
                    break
            if not ok:
                writer.rollback(idx, marks)
                continue
            for j, k in enumerate(kids):
                new_lo[idx][j].append(marks[k - idx - 1])
                new_hi[idx][j].append(len(new_values[k]))
            new_values[idx].append(column[e])
            kept = True
        return kept

    for r in skel.roots:
        if not copy_union(r, 0, len(arena.values[r])):
            return None
    return ArenaRep(skel, new_values, new_lo, new_hi, pool)


def drop_subtrees(
    arena: ArenaRep, new_tree: FTree, dropped: Sequence[int]
) -> ArenaRep:
    """Project away whole subtrees: the kept columns transfer verbatim.

    ``dropped`` holds the arena node ids of the subtree roots to
    remove; ``new_tree`` must be the input tree with exactly those
    subtrees deleted (same labels, same relative order), which the
    caller (:func:`repro.ops.project.project`) guarantees.  Shares the
    surviving column arrays and the pool with the source arena.
    """
    skel = arena.skel
    gone = set()
    for idx in dropped:
        gone.update(range(idx, skel.end[idx]))
    kept = [i for i in range(len(skel)) if i not in gone]
    new_skel = _skeleton_of(new_tree)
    if [skel.labels[i] for i in kept] != new_skel.labels:
        raise ArenaError(
            "dropped subtrees do not line up with the projected f-tree"
        )
    values = [arena.values[i] for i in kept]
    child_lo: List[List[array]] = []
    child_hi: List[List[array]] = []
    for i in kept:
        keep_slots = [
            j
            for j, k in enumerate(skel.children[i])
            if k not in gone
        ]
        child_lo.append([arena.child_lo[i][j] for j in keep_slots])
        child_hi.append([arena.child_hi[i][j] for j in keep_slots])
    return ArenaRep(new_skel, values, child_lo, child_hi, arena.pool)
