"""Factorising flat relational data over an f-tree.

Given input relations and an f-tree ``T`` whose node labels are the
attribute equivalence classes of an equi-join query, this module
computes the f-representation of the join result over ``T`` directly --
without ever materialising the flat result.  This is the engine's
"query evaluation on flat data" path (Experiment 3) and realises the
``O(|Q| * |D|^{s(T-hat)})`` computation referenced in Section 2.

Algorithm
---------
For each node ``v`` we pre-index every relation ``R`` whose schema
meets ``v``'s label: tuples of ``R`` are grouped by the values of the
ancestor classes of ``v`` that ``R`` also meets, and each group stores
the sorted distinct values ``R`` allows for ``v``'s class.  A top-down
recursion then intersects, at each node, the allowed value lists of all
covering relations under the current ancestor assignment, and recurses
into the children forest; values whose children forest is empty are
pruned, so the constructed representation contains no empty unions.
Tuples that violate an intra-relation class equality (two attributes of
``R`` in one class with different values) are skipped while indexing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.arena import ArenaRep, ArenaWriter
from repro.core.ftree import FNode, FTree, FTreeError
from repro.core.frep import ProductRep, UnionRep, merge_sorted_values
from repro.relational.relation import Relation

_Context = Dict[FrozenSet[str], object]

#: Physical encodings :func:`factorise` can produce.
ENCODINGS = ("object", "arena")


class _Source:
    """Pre-indexed access of one relation at one f-tree node."""

    __slots__ = ("key_labels", "index")

    def __init__(
        self,
        relation: Relation,
        node: FNode,
        ancestors: Sequence[FNode],
    ) -> None:
        rel_attrs = set(relation.attributes)
        self.key_labels: List[FrozenSet[str]] = [
            anc.label for anc in ancestors if anc.label & rel_attrs
        ]
        key_positions = [
            [
                relation.schema.index_of(attr)
                for attr in sorted(label & rel_attrs)
            ]
            for label in self.key_labels
        ]
        own_positions = [
            relation.schema.index_of(attr)
            for attr in sorted(node.label & rel_attrs)
        ]
        grouped: Dict[tuple, set] = {}
        for row in relation.rows:
            key_parts = []
            consistent = True
            for positions in key_positions:
                values = {row[p] for p in positions}
                if len(values) != 1:
                    consistent = False
                    break
                key_parts.append(next(iter(values)))
            if not consistent:
                continue
            own_values = {row[p] for p in own_positions}
            if len(own_values) != 1:
                continue
            grouped.setdefault(tuple(key_parts), set()).add(
                next(iter(own_values))
            )
        self.index: Dict[tuple, List[object]] = {
            key: sorted(values) for key, values in grouped.items()
        }

    def candidates(self, context: _Context) -> List[object]:
        key = tuple(context[label] for label in self.key_labels)
        return self.index.get(key, [])


class Factoriser:
    """Reusable factorisation of a fixed set of relations over an f-tree.

    >>> from repro.relational.relation import Relation
    >>> from repro.core.ftree import FTree
    >>> r = Relation.from_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    >>> tree = FTree.from_nested([("a", [("b", [])])],
    ...                          edges=[{"a", "b"}])
    >>> rep = Factoriser([r], tree).run()
    >>> [(v, u) for v, u in rep.factors[0].entries][0][0]
    1
    """

    def __init__(
        self, relations: Sequence[Relation], tree: FTree
    ) -> None:
        self.tree = tree
        self.relations = list(relations)
        covered = set()
        for relation in self.relations:
            covered.update(relation.attributes)
        tree_attrs = set(tree.attributes())
        if tree_attrs - covered:
            raise FTreeError(
                f"f-tree attributes {sorted(tree_attrs - covered)} not "
                f"present in any input relation"
            )
        self._sources: Dict[FrozenSet[str], List[_Source]] = {}
        for node in tree.iter_nodes():
            ancestors = tree.ancestors(node)
            sources: List[_Source] = []
            for relation in self.relations:
                if node.label & set(relation.attributes):
                    sources.append(_Source(relation, node, ancestors))
            self._sources[node.label] = sources

    def run(self) -> Optional[ProductRep]:
        """Compute the representation; ``None`` for an empty result."""
        return self._build_forest(self.tree.roots, {})

    def _candidates(
        self, node: FNode, context: _Context
    ) -> List[object]:
        sources = self._sources[node.label]
        if not sources:
            raise FTreeError(
                f"node {sorted(node.label)} is covered by no relation"
            )
        lists = sorted(
            (source.candidates(context) for source in sources), key=len
        )
        result = lists[0]
        for other in lists[1:]:
            if not result:
                break
            result = merge_sorted_values(result, other)
        return result

    def _build_forest(
        self, nodes: Sequence[FNode], context: _Context
    ) -> Optional[ProductRep]:
        factors: List[UnionRep] = []
        for node in nodes:
            union = self._build_union(node, context)
            if not union.entries:
                return None
            factors.append(union)
        return ProductRep(factors)

    def _build_union(self, node: FNode, context: _Context) -> UnionRep:
        entries: List[Tuple[object, ProductRep]] = []
        for value in self._candidates(node, context):
            context[node.label] = value
            child = self._build_forest(node.children, context)
            del context[node.label]
            if child is not None:
                entries.append((value, child))
        return UnionRep(entries)


class ArenaFactoriser(Factoriser):
    """Factorise straight into the arena encoding.

    Shares the pre-indexing and candidate intersection of
    :class:`Factoriser` but appends entries into flat integer columns
    (:class:`~repro.core.arena.ArenaWriter`) instead of allocating one
    Python object per union entry: children are written first, and an
    entry whose children forest comes up empty is rolled back by
    truncating the descendant columns -- the exact analogue of the
    object builder's eager pruning, so both encodings always hold the
    same representation.
    """

    def run(self, pool=None) -> Optional[ArenaRep]:  # type: ignore[override]
        """Compute the arena representation; ``None`` when empty.

        ``pool`` interns values into a shared :class:`~repro.core.
        arena.ValuePool` (e.g. one pool per worker process) instead of
        a private per-arena pool, so arenas built for different shards
        recombine by id without re-interning.
        """
        writer = ArenaWriter(self.tree, pool)
        if not self._emit_forest(self.tree.roots, {}, writer):
            return None
        return writer.finish()

    def _emit_forest(
        self,
        nodes: Sequence[FNode],
        context: _Context,
        writer: ArenaWriter,
    ) -> bool:
        for node in nodes:
            if not self._emit_union(node, context, writer):
                return False
        return True

    def _emit_union(
        self, node: FNode, context: _Context, writer: ArenaWriter
    ) -> bool:
        idx = writer.index[node.label]
        if not node.children:
            # Leaf fast path: the whole union is the candidate list.
            leaf_values = self._candidates(node, context)
            writer.extend_leaf(idx, leaf_values)
            return bool(leaf_values)
        before = writer.entry_count(idx)
        for value in self._candidates(node, context):
            context[node.label] = value
            marks = writer.mark(idx)
            ok = self._emit_forest(node.children, context, writer)
            del context[node.label]
            if ok:
                writer.commit(idx, value, marks)
            else:
                writer.rollback(idx, marks)
        return writer.entry_count(idx) > before


def factorise(
    relations: Sequence[Relation],
    tree: FTree,
    encoding: str = "object",
    pool=None,
) -> Optional[Union[ProductRep, ArenaRep]]:
    """One-shot factorisation in the requested physical encoding.

    ``pool`` (arena encoding only) interns values into a shared
    :class:`~repro.core.arena.ValuePool` -- see
    :meth:`ArenaFactoriser.run`.
    """
    if encoding == "object":
        return Factoriser(relations, tree).run()
    if encoding == "arena":
        return ArenaFactoriser(relations, tree).run(pool)
    raise ValueError(
        f"unknown encoding {encoding!r}; pick one of {ENCODINGS}"
    )
