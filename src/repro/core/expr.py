"""The f-representation expression AST of Definition 1.

This is the paper's formal representation system taken literally:
relational algebra expressions built from the empty relation, the
nullary tuple, attribute singletons ``<A:a>``, unions and products.
The structured form in :mod:`repro.core.frep` is the engine's working
representation; this AST exists for

- faithful display (the factorisations printed in Examples 1 and 2),
- interoperability tests (structured -> AST -> relation round-trips),
- the formal ``size`` measure: the number of singletons.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.ftree import FNode, FTree
from repro.core.frep import ProductRep, UnionRep


class ExprError(ValueError):
    """Raised for ill-formed expressions (schema mismatches)."""


class Expression:
    """Base class of the AST; see the subclasses below."""

    def schema(self) -> FrozenSet[str]:
        raise NotImplementedError

    def size(self) -> int:
        """Number of singletons, the paper's ``|E|``."""
        raise NotImplementedError

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        """The represented relation, as a set of sorted attr/value maps."""
        raise NotImplementedError

    def to_text(self, unicode_glyphs: bool = True) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()


class Empty(Expression):
    """The empty relation over some schema."""

    def __init__(self, attributes: Iterable[str] = ()) -> None:
        self._schema = frozenset(attributes)

    def schema(self) -> FrozenSet[str]:
        return self._schema

    def size(self) -> int:
        return 0

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        return set()

    def to_text(self, unicode_glyphs: bool = True) -> str:
        return "∅" if unicode_glyphs else "{}"


class Nullary(Expression):
    """``<>``: the relation holding the nullary tuple (schema empty)."""

    def schema(self) -> FrozenSet[str]:
        return frozenset()

    def size(self) -> int:
        return 0

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        return {()}

    def to_text(self, unicode_glyphs: bool = True) -> str:
        return "⟨⟩" if unicode_glyphs else "<>"


class Singleton(Expression):
    """``<A:a>``: a unary relation with one value."""

    def __init__(self, attribute: str, value: object) -> None:
        self.attribute = attribute
        self.value = value

    def schema(self) -> FrozenSet[str]:
        return frozenset((self.attribute,))

    def size(self) -> int:
        return 1

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        return {((self.attribute, self.value),)}

    def to_text(self, unicode_glyphs: bool = True) -> str:
        if unicode_glyphs:
            return f"⟨{self.attribute}:{self.value}⟩"
        return f"<{self.attribute}:{self.value}>"


class Union(Expression):
    """``E1 ∪ ... ∪ En`` over a common schema."""

    def __init__(self, parts: Sequence[Expression]) -> None:
        if not parts:
            raise ExprError("a union needs at least one part")
        schemas = {part.schema() for part in parts}
        if len(schemas) != 1:
            raise ExprError(f"union over mixed schemas: {schemas}")
        self.parts = list(parts)

    def schema(self) -> FrozenSet[str]:
        return self.parts[0].schema()

    def size(self) -> int:
        return sum(part.size() for part in self.parts)

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        out: Set[Tuple[Tuple[str, object], ...]] = set()
        for part in self.parts:
            out |= part.tuples()
        return out

    def to_text(self, unicode_glyphs: bool = True) -> str:
        sep = " ∪ " if unicode_glyphs else " u "
        return sep.join(part.to_text(unicode_glyphs) for part in self.parts)


class Product(Expression):
    """``E1 × ... × En`` over disjoint schemas."""

    def __init__(self, parts: Sequence[Expression]) -> None:
        if not parts:
            raise ExprError("a product needs at least one part")
        seen: Set[str] = set()
        for part in parts:
            overlap = seen & part.schema()
            if overlap:
                raise ExprError(f"product schemas overlap on {overlap}")
            seen |= part.schema()
        self.parts = list(parts)

    def schema(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.schema()
        return frozenset(out)

    def size(self) -> int:
        return sum(part.size() for part in self.parts)

    def tuples(self) -> Set[Tuple[Tuple[str, object], ...]]:
        combos: List[Tuple[Tuple[str, object], ...]] = [()]
        for part in self.parts:
            part_tuples = part.tuples()
            combos = [
                left + right for left in combos for right in part_tuples
            ]
            if not combos:
                return set()
        return {tuple(sorted(combo)) for combo in combos}

    def to_text(self, unicode_glyphs: bool = True) -> str:
        sep = " × " if unicode_glyphs else " x "
        rendered = []
        for part in self.parts:
            text = part.to_text(unicode_glyphs)
            if isinstance(part, Union) and len(part.parts) > 1:
                text = f"({text})"
            rendered.append(text)
        return sep.join(rendered)


def from_structured(
    nodes: Sequence[FNode], product: ProductRep
) -> Expression:
    """Convert a structured representation over a forest to the AST."""
    if len(nodes) != len(product.factors):
        raise ExprError(
            f"forest arity {len(nodes)} != product arity "
            f"{len(product.factors)}"
        )
    if not nodes:
        return Nullary()
    parts: List[Expression] = []
    for node, union in zip(nodes, product.factors):
        parts.append(_union_to_expr(node, union))
    if len(parts) == 1:
        return parts[0]
    return Product(parts)


def _union_to_expr(node: FNode, union: UnionRep) -> Expression:
    if not union.entries:
        raise ExprError("empty union inside a structured representation")
    terms: List[Expression] = []
    for value, child in union.entries:
        singletons: List[Expression] = [
            Singleton(attr, value) for attr in sorted(node.label)
        ]
        if node.children:
            sub = from_structured(node.children, child)
            singletons.append(sub)
        terms.append(
            singletons[0] if len(singletons) == 1 else Product(singletons)
        )
    return terms[0] if len(terms) == 1 else Union(terms)


def expression_of(tree: FTree, product: ProductRep) -> Expression:
    """AST of a full factorised relation."""
    return from_structured(tree.roots, product)
