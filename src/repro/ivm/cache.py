"""The LRU cache of delta-maintained factorised results.

Entries are **unprojected** join results (see
:func:`repro.ivm.maintain.join_query`) versioned as
``(base_version, applied_deltas)``: ``version`` is the database
version the stored representation is currently valid at, and
``deltas_applied`` counts how many recorded deltas have been folded in
since the entry was first computed.  A lookup against a database whose
version moved tries to *catch the entry up* via
:func:`repro.ivm.maintain.apply_deltas` -- factorising only the fresh
rows over the entry's own f-tree and unioning them in -- and only
drops the entry when the gap is not absorbable (deletes/updates on a
referenced relation, schema changes, or a truncated delta log).

Staleness safety: an entry is served only after its ``version`` field
equals the live database version, i.e. after a successful catch-up.
The mutation-differential harness (``tests/test_ivm.py``) cross-checks
served answers against recompute-from-scratch and SQLite.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.ivm.maintain import apply_deltas, join_query
from repro.query.query import Query
from repro.relational.database import Database


@dataclass
class CachedResult:
    """One cached unprojected join result plus its maintenance state."""

    key: Tuple
    #: The projection-stripped query the result answers.
    query: Query
    #: The f-tree the result (and every folded delta) factorises over.
    tree: FTree
    #: The unprojected factorised join result, mutated by catch-ups.
    result: FactorisedRelation
    #: Database version :attr:`result` is valid at.
    version: int
    #: Recorded deltas folded in since the entry was first stored.
    deltas_applied: int = 0
    hits: int = 0
    #: Serve-time projection memo: projection tuple -> (version,
    #: projected result).  Valid while the version matches
    #: :attr:`version`; repeated serves of the same projection at an
    #: unchanged version skip the (expensive) project operator.
    projected: Dict[Tuple[str, ...], Tuple[int, FactorisedRelation]] = (
        field(default_factory=dict)
    )


class ResultCache:
    """An LRU of :class:`CachedResult`, caught up lazily on lookup.

    ``capacity=None`` means unbounded; otherwise inserts beyond
    capacity evict the least recently used entry (the
    :class:`~repro.service.cache.PlanCache` policy).

    Counters (all monotone): ``hits``/``misses``/``evictions`` follow
    the plan-cache convention; ``delta_merges`` and ``delta_rows``
    count the folded delta results and the fresh rows they carried;
    ``invalidations`` counts entries dropped because a version gap was
    not absorbable.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"cache capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.delta_merges = 0
        self.delta_rows = 0
        self.invalidations = 0

    def lookup(
        self,
        query: Query,
        database: Database,
        encoding: str = "object",
        check_invariants: bool = False,
    ) -> Optional[CachedResult]:
        """The up-to-date entry for ``query``'s join, or ``None``.

        A version-lagging entry is caught up in place before being
        served; an entry that cannot be caught up is dropped (counted
        as an invalidation *and* a miss).  Served entries always
        satisfy ``entry.version == database.version``.
        """
        key = join_query(query).canonical_key()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.version != database.version:
            folded = apply_deltas(
                entry,
                database,
                encoding=encoding,
                check_invariants=check_invariants,
            )
            if folded is None:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self.delta_merges += folded[0]
            self.delta_rows += folded[1]
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry

    def store(
        self,
        query: Query,
        database: Database,
        tree: FTree,
        result: FactorisedRelation,
    ) -> CachedResult:
        """Cache an unprojected join result computed at the database's
        current version; returns the new entry."""
        stripped = join_query(query)
        key = stripped.canonical_key()
        entry = CachedResult(
            key=key,
            query=stripped,
            tree=tree,
            result=result,
            version=database.version,
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if (
            self.capacity is not None
            and len(self._entries) > self.capacity
        ):
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry, counting them as invalidations (used on
        unexplainable version gaps; counters are monotone)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query_key: Tuple) -> bool:
        return query_key in self._entries

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "delta_merges": self.delta_merges,
            "delta_rows": self.delta_rows,
            "invalidations": self.invalidations,
            "size": len(self._entries),
        }
