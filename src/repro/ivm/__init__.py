"""Incremental view maintenance for factorised query results.

The paper's representations are exactly the structure that makes
delta maintenance cheap: an append factorises to a *small* f-rep over
the cached result's own f-tree and merges in via
:func:`repro.ops.union.union` -- no re-join of the base data.  This
package owns that mechanism:

- :mod:`repro.ivm.maintain` -- building per-delta views, factorising
  delta results over a fixed tree, and folding a recorded delta range
  (:meth:`repro.relational.database.Database.changes_since`) into a
  cached result;
- :mod:`repro.ivm.cache` -- :class:`~repro.ivm.cache.ResultCache`, the
  LRU of **unprojected** factorised join results versioned as
  ``(base_version, applied_deltas)``, which catches entries up lazily
  on lookup.

The serving layer (:class:`~repro.service.session.QuerySession`)
consumes this package; nothing here imports :mod:`repro.service`, so
the layering storage -> execution -> ivm -> serving stays acyclic.
"""

from repro.ivm.cache import CachedResult, ResultCache
from repro.ivm.maintain import (
    MaintenanceError,
    absorbable,
    apply_deltas,
    delta_result,
    delta_view,
    join_query,
)

__all__ = [
    "CachedResult",
    "MaintenanceError",
    "ResultCache",
    "absorbable",
    "apply_deltas",
    "delta_result",
    "delta_view",
    "join_query",
]
