"""Delta maintenance of factorised join results.

Soundness
---------

Let ``Q`` be an SPJ query (projection stripped -- see
:func:`join_query`) over relations ``R_1 .. R_k``, evaluated at
database state ``D_0``, and let a sequence of *insert-only* deltas
move the database to ``D``.  Then, under set semantics::

    Q(D)  =  Q(D_0)  u  U_i Q(D[R_i -> I_i])

where ``I_i`` is delta ``i``'s set of genuinely fresh rows (recorded
as ``new - old``, :mod:`repro.relational.delta`) and ``D[R -> I]`` is
``D`` with relation ``R`` replaced by just ``I``.  Every result tuple
of ``Q(D)`` either joins only rows already in ``D_0`` (first term) or
embeds at least one row first inserted by some delta ``i`` -- and then
it appears in that delta's term, because the remaining relations stand
at their *final* state ``D``.  Conversely each term only joins rows of
``D``, so the union never over-approximates; overlap between terms is
absorbed by set semantics.

Both sides factorise over the *same* f-tree, so the right-hand union
is the factor-wise :func:`repro.ops.union.union` -- exact here by the
path-constraint argument in :mod:`repro.ops.union`, since each delta
view partitions a single relation (fresh rows vs. the rest) just like
a shard does.  The union must happen **before** projection; the result
cache therefore stores unprojected results and callers project at
serve time.

Deltas that *remove* rows from a referenced relation (deletes, and
updates, which are remove+insert pairs) are not absorbed: subtraction
from a factorised union would need multiplicity bookkeeping the
representation does not carry.  :func:`absorbable` classifies a delta
range; non-absorbable ranges make the consumer invalidate, exactly as
every mutation did before this module existed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple

from repro import ops
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.engine import FDB
from repro.query.query import Query
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.relation import Relation

if TYPE_CHECKING:
    from repro.ivm.cache import CachedResult


class MaintenanceError(ValueError):
    """Raised for structurally impossible maintenance requests."""


def join_query(query: Query) -> Query:
    """``query`` with its projection stripped (the *join* query).

    Cached results are keyed and maintained on this form: projection
    does not commute with the factor-wise union used to fold deltas
    in, so the cache stores the unprojected join result and serves
    any projection of it.
    """
    if query.projection is None:
        return query
    return replace(query, projection=None)


def absorbable(
    deltas: Optional[Sequence[Delta]], relations: Iterable[str]
) -> bool:
    """Can this delta range be folded into a result over ``relations``?

    ``None`` (unexplainable gap) is never absorbable.  A range is
    absorbable when every delta touching a referenced relation is
    insert-only; deltas on unreferenced relations are irrelevant
    regardless of kind, because the join result does not depend on
    them.
    """
    if deltas is None:
        return False
    referenced = set(relations)
    for delta in deltas:
        if delta.schema_change:
            return False
        if delta.relation in referenced and delta.removed:
            return False
    return True


def delta_view(
    database: Database,
    query: Query,
    relation: str,
    rows: Sequence[Tuple[object, ...]],
) -> Database:
    """A throwaway evaluation view: ``relation`` holding only the
    delta ``rows``, every other referenced relation at its live state.

    Relation objects are shared with ``database`` (no row copies);
    only the substituted relation is rebuilt.
    """
    if relation not in query.relations:
        raise MaintenanceError(
            f"delta relation {relation!r} not referenced by the query"
        )
    view = Database()
    for name in query.relations:
        live = database[name]
        if name == relation:
            view.add(Relation.from_rows(name, live.attributes, rows))
        else:
            view.add(live)
    return view


def delta_result(
    database: Database,
    query: Query,
    tree: FTree,
    relation: str,
    rows: Sequence[Tuple[object, ...]],
    encoding: str = "object",
    check_invariants: bool = False,
) -> FactorisedRelation:
    """Factorise the delta term ``Q(D[relation -> rows])`` over the
    cached result's own ``tree`` (so the caller can union it in)."""
    view = delta_view(database, query, relation, rows)
    engine = FDB(
        view, check_invariants=check_invariants, encoding=encoding
    )
    return engine.factorise_query(join_query(query), tree=tree)


def apply_deltas(
    entry: "CachedResult",
    database: Database,
    encoding: str = "object",
    check_invariants: bool = False,
) -> Optional[Tuple[int, int]]:
    """Catch ``entry`` up to ``database.version`` in place.

    Returns ``(merges, delta_rows)`` on success -- how many delta
    results were unioned in and how many fresh rows they carried --
    or ``None`` when the gap cannot be absorbed (the caller must drop
    the entry).  An already-current entry succeeds with ``(0, 0)``.
    """
    deltas = database.changes_since(entry.version)
    if not absorbable(deltas, entry.query.relations):
        return None
    referenced = set(entry.query.relations)
    merges = rows_in = 0
    result = entry.result
    for delta in deltas:
        if delta.relation not in referenced or not delta.inserted:
            continue
        extra = delta_result(
            database,
            entry.query,
            entry.tree,
            delta.relation,
            delta.inserted,
            encoding=encoding,
            check_invariants=check_invariants,
        )
        if check_invariants:
            # Validate the small appended piece per merge; the full
            # unioned result is checked once after the loop.  (A full
            # validate per merge made a k-delta batch cost k scans of
            # the whole cached result.)
            extra.validate()
        result = ops.union(result, extra)
        merges += 1
        rows_in += len(delta.inserted)
    if check_invariants and merges:
        result.validate()
    entry.result = result
    entry.version = database.version
    entry.deltas_applied += len(deltas)
    return merges, rows_in
