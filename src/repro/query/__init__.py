"""Select-project-join query model.

This subpackage hosts the *logical* query layer shared by the flat
relational engine (RDB) and the factorised engine (FDB):

- :mod:`repro.query.query` -- the SPJ query data model (equality joins,
  constant selections, projections);
- :mod:`repro.query.equivalence` -- union-find over attributes, used to
  derive the attribute equivalence classes that label f-tree nodes;
- :mod:`repro.query.hypergraph` -- the query hypergraph (attributes as
  vertices, relation schemas as hyperedges) with the connectivity and
  chain primitives needed by the path constraint;
- :mod:`repro.query.parser` -- a small SQL-like surface syntax.
"""

from repro.query.equivalence import UnionFind
from repro.query.hypergraph import Hypergraph
from repro.query.query import (
    ConstantCondition,
    EqualityCondition,
    Query,
    QueryError,
)
from repro.query.parser import parse_query

__all__ = [
    "ConstantCondition",
    "EqualityCondition",
    "Hypergraph",
    "parse_query",
    "Query",
    "QueryError",
    "UnionFind",
]
