"""A small SQL-like surface syntax for SPJ queries.

The engine's native interface is :class:`repro.query.Query`; this parser
is a convenience for the examples and tests.  It supports exactly the
query fragment of the paper -- select-project-join with conjunctive
equality and constant conditions:

    SELECT * FROM Orders, Store WHERE o_item = s_item AND s_loc = 'Izmir'
    SELECT a, b FROM R, S WHERE a = c AND b >= 3

Grammar (case-insensitive keywords)::

    query      := SELECT proj FROM rels [WHERE conds]
    proj       := '*' | name (',' name)*
    rels       := name (',' name)*
    conds      := cond (AND cond)*
    cond       := name op (name | literal)
    op         := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal    := integer | quoted string
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.query.query import Query, QueryError

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<kw>SELECT|FROM|WHERE|AND)\b
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<num>-?\d+)
      | (?P<str>'[^']*'|"[^"]*")
      | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<comma>,)
      | (?P<star>\*)
    )""",
    re.IGNORECASE | re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise QueryError(f"cannot tokenize near {text[pos:pos+20]!r}")
            break
        pos = match.end()
        for kind in ("kw", "op", "num", "str", "name", "comma", "star"):
            value = match.group(kind)
            if value is not None:
                if kind == "kw":
                    value = value.upper()
                tokens.append((kind, value))
                break
    return tokens


class _Cursor:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise QueryError(
                f"expected {value or kind}, got {got_value!r}"
            )
        return got_value


def _parse_name_list(cursor: _Cursor) -> List[str]:
    names = [cursor.expect("name")]
    while cursor.peek() == ("comma", ","):
        cursor.next()
        names.append(cursor.expect("name"))
    return names


def parse_query(text: str) -> Query:
    """Parse an SQL-like string into a :class:`Query`.

    >>> q = parse_query("SELECT * FROM R, S WHERE a = b AND c = 3")
    >>> q.relations
    ('R', 'S')
    >>> str(q.equalities[0]), q.constants[0].value
    ('a = b', 3)
    """
    cursor = _Cursor(_tokenize(text))
    cursor.expect("kw", "SELECT")

    projection: Optional[List[str]]
    if cursor.peek() == ("star", "*"):
        cursor.next()
        projection = None
    else:
        projection = _parse_name_list(cursor)

    cursor.expect("kw", "FROM")
    relations = _parse_name_list(cursor)

    equalities: List[Tuple[str, str]] = []
    constants: List[Tuple[str, str, object]] = []
    if cursor.peek() == ("kw", "WHERE"):
        cursor.next()
        while True:
            left = cursor.expect("name")
            op = cursor.expect("op")
            kind, value = cursor.next()
            if kind == "name":
                if op != "=":
                    raise QueryError(
                        "only '=' is supported between two attributes"
                    )
                equalities.append((left, value))
            elif kind == "num":
                constants.append((left, op, int(value)))
            elif kind == "str":
                constants.append((left, op, value[1:-1]))
            else:
                raise QueryError(f"unexpected token {value!r} in condition")
            if cursor.peek() == ("kw", "AND"):
                cursor.next()
                continue
            break

    if cursor.peek() is not None:
        raise QueryError(f"trailing tokens: {cursor.peek()!r}")

    return Query.make(
        relations,
        equalities=equalities,
        constants=constants,
        projection=projection,
    )
