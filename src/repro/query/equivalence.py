"""Union-find (disjoint sets) over hashable items.

Attribute equivalence classes are the backbone of the paper's query
model: every f-tree node is labelled by one equivalence class of
attributes (Section 2, "F-trees of a query"), and equality conditions
merge classes.  The structure below is a classic union-find with path
compression and union by size, plus helpers to extract the classes as
canonical ``frozenset`` labels.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items.

    >>> uf = UnionFind(["a", "b", "c"])
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> sorted(sorted(c) for c in uf.classes())
    [['a', 'b'], ['c']]
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton class (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s class."""
        if item not in self._parent:
            raise KeyError(f"unknown item {item!r}")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the classes of ``left`` and ``right``.

        Returns ``True`` if the classes were distinct (the merge was
        "non-redundant" in the paper's terminology), ``False`` if the
        two items were already equivalent.
        """
        self.add(left)
        self.add(right)
        root_l, root_r = self.find(left), self.find(right)
        if root_l == root_r:
            return False
        if self._size[root_l] < self._size[root_r]:
            root_l, root_r = root_r, root_l
        self._parent[root_r] = root_l
        self._size[root_l] += self._size[root_r]
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """True iff ``left`` and ``right`` are in the same class."""
        return self.find(left) == self.find(right)

    def classes(self) -> List[FrozenSet[Hashable]]:
        """Return all equivalence classes as frozensets."""
        by_root: Dict[Hashable, set] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(members) for members in by_root.values()]

    def class_of(self, item: Hashable) -> FrozenSet[Hashable]:
        """Return the class containing ``item`` as a frozenset."""
        root = self.find(item)
        return frozenset(
            other for other in self._parent if self.find(other) == root
        )

    def copy(self) -> "UnionFind":
        """Return an independent copy of this structure."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        return clone
