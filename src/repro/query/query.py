"""The select-project-join query data model.

A :class:`Query` is the paper's ``Q = pi_P sigma_phi (R1 x ... x Rn)``:
a list of relation names, a conjunction of equality conditions between
attributes (equi-joins *and* intra-relation equality selections are
treated uniformly, cf. Section 3.3), a conjunction of comparisons with
constants, and an optional projection list.

Attribute names are globally unique across a database schema (the
workload generators guarantee this; the parser qualifies names where
needed), so conditions are expressed on bare attribute names.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.query.equivalence import UnionFind


class QueryError(ValueError):
    """Raised for malformed queries (unknown attributes, bad operators)."""


#: Comparison operators supported in constant conditions.
COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class EqualityCondition:
    """An equality ``left = right`` between two attributes."""

    left: str
    right: str

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise QueryError(f"trivial equality {self.left} = {self.right}")

    def attributes(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ConstantCondition:
    """A comparison ``attribute <op> value`` with a constant."""

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise QueryError(f"unsupported comparator {self.op!r}")

    def test(self, value: object) -> bool:
        """Evaluate the condition on a single attribute value."""
        return COMPARATORS[self.op](value, self.value)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


def equality_partition(
    equalities: Iterable[EqualityCondition],
) -> Tuple[Tuple[str, ...], ...]:
    """The canonical partition an equality conjunction induces.

    Only classes of two or more attributes appear (singletons carry no
    constraint), each as a sorted attribute tuple, the classes sorted
    among themselves.  Two conjunctions are equivalent -- same order,
    direction, or transitive closure -- iff their partitions are equal.
    """
    mentioned: set = set()
    for eq in equalities:
        mentioned.update((eq.left, eq.right))
    uf = UnionFind(mentioned)
    for eq in equalities:
        uf.union(eq.left, eq.right)
    return tuple(
        sorted(
            tuple(sorted(cls)) for cls in uf.classes() if len(cls) > 1
        )
    )


@dataclass(frozen=True)
class Query:
    """A select-project-join query.

    Parameters
    ----------
    relations:
        Names of the relations joined (a Cartesian product before the
        selection conditions are applied).
    equalities:
        Conjunction of attribute-attribute equalities.
    constants:
        Conjunction of attribute-constant comparisons.
    projection:
        Attributes to keep, or ``None`` for "all attributes".
    """

    relations: Tuple[str, ...]
    equalities: Tuple[EqualityCondition, ...] = ()
    constants: Tuple[ConstantCondition, ...] = ()
    projection: Optional[Tuple[str, ...]] = None

    @staticmethod
    def make(
        relations: Sequence[str],
        equalities: Iterable[Tuple[str, str]] = (),
        constants: Iterable[Tuple[str, str, object]] = (),
        projection: Optional[Sequence[str]] = None,
    ) -> "Query":
        """Convenience constructor from plain tuples.

        >>> q = Query.make(["R", "S"], equalities=[("a", "b")])
        >>> str(q.equalities[0])
        'a = b'
        """
        return Query(
            relations=tuple(relations),
            equalities=tuple(
                EqualityCondition(left, right) for left, right in equalities
            ),
            constants=tuple(
                ConstantCondition(attr, op, value)
                for attr, op, value in constants
            ),
            projection=None if projection is None else tuple(projection),
        )

    def attribute_classes(
        self, attributes: Iterable[str]
    ) -> List[FrozenSet[str]]:
        """Equivalence classes of ``attributes`` under the equalities.

        Every attribute of the queried relations labels exactly one
        class; equality conditions merge classes transitively.
        """
        uf = UnionFind(attributes)
        for eq in self.equalities:
            if eq.left not in uf or eq.right not in uf:
                missing = eq.left if eq.left not in uf else eq.right
                raise QueryError(f"equality on unknown attribute {missing!r}")
        for eq in self.equalities:
            uf.union(eq.left, eq.right)
        return sorted(uf.classes(), key=lambda c: tuple(sorted(c)))

    def class_partition(
        self, attributes: Iterable[str]
    ) -> FrozenSet[FrozenSet[str]]:
        """The classes as a canonical frozenset-of-frozensets."""
        return frozenset(self.attribute_classes(attributes))

    def nonredundant_equalities(
        self, attributes: Iterable[str]
    ) -> Tuple[EqualityCondition, ...]:
        """Drop equalities already implied by earlier ones.

        The experiments of Section 5 use "non-redundant" conjunctions:
        each condition merges two previously distinct classes.
        """
        uf = UnionFind(attributes)
        kept: List[EqualityCondition] = []
        for eq in self.equalities:
            if uf.union(eq.left, eq.right):
                kept.append(eq)
        return tuple(kept)

    def canonical_key(self) -> Tuple:
        """A hashable key identifying the query up to reformulation.

        Two queries share a key exactly when they are the same SPJ
        query written differently:

        - relation order is irrelevant (the join is a product);
        - the equality conjunction is replaced by the partition of
          attributes it induces, so condition order, direction
          (``a = b`` vs ``b = a``) and redundant conditions implied by
          transitivity all collapse;
        - constant conditions are deduplicated and sorted;
        - the projection is treated as an attribute set (results are
          relations over sorted attributes, so column order does not
          matter).

        The key is the plan-cache index of the serving layer
        (:mod:`repro.service`): a hit means the cached f-tree/f-plan
        answers the incoming query verbatim.

        >>> a = Query.make(["R", "S"], equalities=[("a", "b")])
        >>> b = Query.make(["S", "R"], equalities=[("b", "a")])
        >>> a.canonical_key() == b.canonical_key()
        True
        >>> c = Query.make(["R", "S"])
        >>> a.canonical_key() == c.canonical_key()
        False
        """
        classes = equality_partition(self.equalities)
        constants = tuple(
            sorted(
                {
                    (c.attribute, c.op, repr(c.value))
                    for c in self.constants
                }
            )
        )
        projection = (
            None
            if self.projection is None
            else tuple(sorted(set(self.projection)))
        )
        return (
            tuple(sorted(self.relations)),
            classes,
            constants,
            projection,
        )

    def validate_against(self, schema: Mapping[str, Sequence[str]]) -> None:
        """Check the query against ``schema`` (relation -> attributes).

        Raises :class:`QueryError` for unknown relations/attributes or
        a projection of an attribute that is not produced.
        """
        known: set = set()
        for name in self.relations:
            if name not in schema:
                raise QueryError(f"unknown relation {name!r}")
            known.update(schema[name])
        for eq in self.equalities:
            for attr in (eq.left, eq.right):
                if attr not in known:
                    raise QueryError(f"unknown attribute {attr!r}")
        for cond in self.constants:
            if cond.attribute not in known:
                raise QueryError(f"unknown attribute {cond.attribute!r}")
        if self.projection is not None:
            for attr in self.projection:
                if attr not in known:
                    raise QueryError(f"cannot project unknown {attr!r}")

    def __str__(self) -> str:
        conds = [str(eq) for eq in self.equalities]
        conds += [str(c) for c in self.constants]
        proj = "*" if self.projection is None else ", ".join(self.projection)
        where = f" WHERE {' AND '.join(conds)}" if conds else ""
        return f"SELECT {proj} FROM {', '.join(self.relations)}{where}"
