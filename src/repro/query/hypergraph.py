"""Hypergraphs over attributes / attribute classes.

The paper derives the valid f-trees of a query from a hypergraph whose
vertices are attribute equivalence classes and whose hyperedges are the
schemas of the relations occurring in the query (Section 2).  Both the
path constraint (Proposition 1) and the fractional edge cover number
underlying ``s(T)`` are defined on this hypergraph.

Edges are stored at *attribute* granularity (frozensets of attribute
names).  A node of an f-tree is labelled by a set of attributes; an edge
"touches" a node if it shares at least one attribute with the label.
This attribute-level view is what lets projections install phantom
edges (see :mod:`repro.ops.project`) without rewriting node labels.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

Edge = FrozenSet[str]


class Hypergraph:
    """An immutable multiset-free hypergraph over attribute names."""

    __slots__ = ("_edges",)

    def __init__(self, edges: Iterable[AbstractSet[str]] = ()) -> None:
        self._edges: FrozenSet[Edge] = frozenset(
            frozenset(edge) for edge in edges if edge
        )

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypergraph) and self._edges == other._edges

    def __hash__(self) -> int:
        return hash(self._edges)

    def __repr__(self) -> str:
        parts = sorted("{" + ",".join(sorted(e)) + "}" for e in self._edges)
        return f"Hypergraph([{', '.join(parts)}])"

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by at least one edge."""
        out: Set[str] = set()
        for edge in self._edges:
            out |= edge
        return frozenset(out)

    def edges_touching(self, label: AbstractSet[str]) -> List[Edge]:
        """Edges sharing at least one attribute with ``label``."""
        return [edge for edge in self._edges if edge & label]

    def touches(self, left: AbstractSet[str], right: AbstractSet[str]) -> bool:
        """True iff a single edge intersects both attribute sets.

        This is the paper's *dependence* test: two (sets of) nodes are
        dependent when one relation has attributes in both.
        """
        for edge in self._edges:
            if edge & left and edge & right:
                return True
        return False

    def restrict(self, attributes: AbstractSet[str]) -> "Hypergraph":
        """Project every edge onto ``attributes``, dropping empty edges."""
        return Hypergraph(edge & attributes for edge in self._edges)

    def without_attributes(self, attributes: AbstractSet[str]) -> "Hypergraph":
        """Remove ``attributes`` from every edge (for constant nodes)."""
        return Hypergraph(edge - attributes for edge in self._edges)

    def merge_edges_touching(
        self, attributes: AbstractSet[str]
    ) -> "Hypergraph":
        """Fuse all edges meeting ``attributes`` into one phantom edge.

        Used by projection (Section 3.4): when a node whose attributes
        are all projected away is removed, the relations that contained
        those attributes induce a joint dependency among their remaining
        attributes.  The phantom edge is their union minus the removed
        attributes.
        """
        touched = [edge for edge in self._edges if edge & attributes]
        untouched = [edge for edge in self._edges if not (edge & attributes)]
        if not touched:
            return self
        phantom: Set[str] = set()
        for edge in touched:
            phantom |= edge
        phantom -= set(attributes)
        edges: List[AbstractSet[str]] = list(untouched)
        if phantom:
            edges.append(phantom)
        return Hypergraph(edges)

    def components(
        self, labels: Sequence[FrozenSet[str]]
    ) -> List[Tuple[FrozenSet[str], ...]]:
        """Partition node ``labels`` into edge-connected components.

        Two labels are connected when one edge intersects both.  The
        result is a list of components, each a tuple of labels in the
        input order; components themselves are ordered by their first
        member's position, so the output is deterministic.
        """
        index: Dict[int, int] = {i: i for i in range(len(labels))}

        def find(i: int) -> int:
            while index[i] != i:
                index[i] = index[index[i]]
                i = index[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                index[max(ri, rj)] = min(ri, rj)

        for edge in self._edges:
            touched = [i for i, lab in enumerate(labels) if edge & lab]
            for other in touched[1:]:
                union(touched[0], other)

        groups: Dict[int, List[FrozenSet[str]]] = {}
        order: List[int] = []
        for i, lab in enumerate(labels):
            root = find(i)
            if root not in groups:
                groups[root] = []
                order.append(root)
            groups[root].append(lab)
        return [tuple(groups[root]) for root in order]

    def is_chain(
        self,
        nodes: Sequence[FrozenSet[str]],
        ancestors: Dict[FrozenSet[str], Sequence[FrozenSet[str]]],
    ) -> bool:
        """True iff ``nodes`` lie on one root-to-leaf path.

        ``ancestors`` maps each label to the chain of its ancestors (in
        root-first order).  A set of nodes lies on a single path iff
        they are pairwise comparable under the ancestor order, i.e. the
        deepest of them has all others among its ancestors.
        """
        if len(nodes) <= 1:
            return True
        deepest = max(nodes, key=lambda lab: len(ancestors[lab]))
        chain = set(ancestors[deepest])
        chain.add(deepest)
        return all(node in chain for node in nodes)
