"""The merge selection operator ``mu_{A,B}`` (Section 3.3, Fig. 3(c)).

Merging enforces an equality ``A = B`` between *sibling* nodes: the two
nodes fuse into one labelled by the union of their attribute classes,
with the children of both.  On data it is a sort-merge join of the two
sibling unions:

    ( U_a <A:a> x E_a ) x ( U_b <B:b> x F_b )
        ==>  U_{a=b} <A:a> x <B:b> x E_a x F_b

A merge can empty a union (no common values), in which case the
surrounding entry is pruned -- possibly cascading to an empty result.
Merging preserves the path constraint and normalisation (root-to-leaf
paths only get shorter).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import (
    OperatorError,
    rewrite_at_level,
    sort_pairs,
)


def _merge_parts(
    tree: FTree, a_attr: str, b_attr: str
) -> Tuple[FNode, FNode, FNode]:
    node_a = tree.node_of(a_attr)
    node_b = tree.node_of(b_attr)
    if node_a.label == node_b.label:
        raise OperatorError(
            f"{a_attr!r} and {b_attr!r} already label the same node"
        )
    parent_a = tree.parent_of(node_a)
    parent_b = tree.parent_of(node_b)
    same_parent = (
        (parent_a is None and parent_b is None)
        or (
            parent_a is not None
            and parent_b is not None
            and parent_a.label == parent_b.label
        )
    )
    if not same_parent:
        raise OperatorError(
            f"merge requires siblings; {sorted(node_a.label)} and "
            f"{sorted(node_b.label)} have different parents"
        )
    merged = FNode(
        node_a.label | node_b.label,
        list(node_a.children) + list(node_b.children),
        node_a.constant and node_b.constant,
    )
    return node_a, node_b, merged


def merge_tree(tree: FTree, a_attr: str, b_attr: str) -> FTree:
    """Tree-level merge of two sibling nodes."""
    node_a, node_b, merged = _merge_parts(tree, a_attr, b_attr)
    without_b = tree.replace_node(node_b.label, [])
    return without_b.replace_node(node_a.label, [merged])


def merge(
    fr: FactorisedRelation, a_attr: str, b_attr: str
) -> FactorisedRelation:
    """Merge on a factorised relation: sort-merge join of the unions.

    Arena-backed relations run the columnar kernel of
    :mod:`repro.ops.arena_kernels`; this object path is its oracle.
    """
    tree = fr.tree
    node_a, node_b, merged = _merge_parts(tree, a_attr, b_attr)
    new_tree = merge_tree(tree, a_attr, b_attr)
    if fr.encoding == "arena":
        from repro.ops import arena_kernels

        kernel = arena_kernels.kernel_for(tree, "merge", (a_attr, b_attr))
        if fr.is_empty():
            return FactorisedRelation(new_tree, arena=None)
        return FactorisedRelation(new_tree, arena=kernel.run(fr.arena))
    if fr.data is None:
        return FactorisedRelation(new_tree, None)

    parent = tree.parent_of(node_a)
    old_level = list(parent.children) if parent is not None else list(
        tree.roots
    )
    labels = [n.label for n in old_level]
    i_a = labels.index(node_a.label)
    i_b = labels.index(node_b.label)

    def rewrite(factors: List[UnionRep]) -> Optional[List[UnionRep]]:
        union_a, union_b = factors[i_a], factors[i_b]
        out: List[Tuple[object, ProductRep]] = []
        i = j = 0
        a_entries, b_entries = union_a.entries, union_b.entries
        while i < len(a_entries) and j < len(b_entries):
            a_value, a_child = a_entries[i]
            b_value, b_child = b_entries[j]
            if a_value < b_value:
                i += 1
            elif b_value < a_value:
                j += 1
            else:
                _, sorted_facts = sort_pairs(
                    list(node_a.children) + list(node_b.children),
                    a_child.factors + b_child.factors,
                )
                out.append((a_value, ProductRep(sorted_facts)))
                i += 1
                j += 1
        if not out:
            return None
        nodes = [
            n for k, n in enumerate(old_level) if k not in (i_a, i_b)
        ]
        outs = [
            f for k, f in enumerate(factors) if k not in (i_a, i_b)
        ]
        nodes.append(merged)
        outs.append(UnionRep(out))
        _, sorted_factors = sort_pairs(nodes, outs)
        return sorted_factors

    new_factors = rewrite_at_level(
        tree.roots, fr.data.factors, next(iter(node_a.label)), rewrite
    )
    data = None if new_factors is None else ProductRep(new_factors)
    return FactorisedRelation(new_tree, data)
