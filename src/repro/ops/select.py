"""Selection with a constant, ``sigma_{A theta c}`` (Section 3.3).

One pass over the representation removes the entries of every union of
``A``'s node whose value fails the comparison; emptied unions prune
their surrounding entries, cascading upward exactly like the paper's
"if the union becomes empty ... we then remove that expression too".

For an *equality* comparison the node becomes a constant: all its
values equal ``c``, so it is independent of every other node -- its
attributes are removed from the dependency edges, the node is marked
``constant`` (ignored by ``s(T)``), and a normalisation pass floats it
towards the root, as described at the end of Section 3.3.

Arena-backed inputs stay columnar for every comparison: the filter is
the mask-and-compact kernel :func:`repro.core.arena.select_filter`
(the tree is unchanged by the filter itself -- the skeleton ignores
constant flags), and for equality the subsequent normalisation replays
the constant tree's push-up trace through the prepared kernels of
:mod:`repro.ops.arena_kernels`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core import arena as arena_mod
from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import subtree_index
from repro.ops.normalise import normalise, normalise_tree
from repro.query.query import ConstantCondition


def select_constant_tree(tree: FTree, cond: ConstantCondition) -> FTree:
    """Tree-level effect: equality turns the node constant."""
    node = tree.node_of(cond.attribute)
    if cond.op != "=":
        return tree
    if not node.constant:
        tree = tree.replace_node(node.label, [node.as_constant()])
        tree = tree.with_edges(
            tree.edges.without_attributes(node.label)
        )
    normalised, _ = normalise_tree(tree)
    return normalised


def select_constant(
    fr: FactorisedRelation, cond: ConstantCondition
) -> FactorisedRelation:
    """Apply ``sigma_{A theta c}`` to a factorised relation."""
    tree = fr.tree
    node = tree.node_of(cond.attribute)
    if fr.is_empty():
        empty_tree = select_constant_tree(tree, cond)
        if fr.encoding == "arena":
            return FactorisedRelation(empty_tree, arena=None)
        return FactorisedRelation(empty_tree, None)

    if fr.encoding == "arena" and cond.op != "=":
        # Non-equality selections leave the tree untouched, so the
        # whole operator is the columnar filter kernel.
        filtered = arena_mod.select_filter(
            fr.arena, cond.attribute, cond.test
        )
        if filtered is None:
            return FactorisedRelation(
                select_constant_tree(tree, cond), arena=None
            )
        return FactorisedRelation(tree, arena=filtered)

    if fr.encoding == "arena":
        # Equality: the filter kernel leaves the node layout intact
        # (the skeleton ignores constant flags), then the push-up
        # kernels replay the normalisation trace of the constant tree.
        from repro.ops import arena_kernels

        const_tree = tree
        if not node.constant:
            const_tree = tree.replace_node(
                node.label, [node.as_constant()]
            )
            const_tree = const_tree.with_edges(
                const_tree.edges.without_attributes(node.label)
            )
        chain = arena_kernels.kernel_for(const_tree, "normalise")
        filtered = arena_mod.select_filter(
            fr.arena, cond.attribute, cond.test
        )
        if filtered is not None:
            filtered = chain.run(filtered)
        return FactorisedRelation(chain.out_tree, arena=filtered)

    anchor = cond.attribute

    def filter_forest(
        forest: Sequence[FNode], factors: Sequence[UnionRep]
    ) -> Optional[List[UnionRep]]:
        labels = [n.label for n in forest]
        if node.label in labels:
            idx = labels.index(node.label)
            union = factors[idx]
            kept = [
                (value, child)
                for value, child in union.entries
                if cond.test(value)
            ]
            if not kept:
                return None
            out = list(factors)
            out[idx] = UnionRep(kept)
            return out
        idx = subtree_index(forest, anchor)
        inner_node, union = forest[idx], factors[idx]
        new_entries: List[Tuple[object, ProductRep]] = []
        for value, child in union.entries:
            res = filter_forest(inner_node.children, child.factors)
            if res is not None:
                new_entries.append((value, ProductRep(res)))
        if not new_entries:
            return None
        out = list(factors)
        out[idx] = UnionRep(new_entries)
        return out

    new_factors = filter_forest(tree.roots, fr.data.factors)
    if new_factors is None:
        return FactorisedRelation(select_constant_tree(tree, cond), None)
    if cond.op != "=":
        return FactorisedRelation(tree, ProductRep(new_factors))

    # Equality: mark constant, drop its attributes from the dependency
    # edges and normalise (the node floats towards the root).
    const_tree = tree
    if not node.constant:
        const_tree = tree.replace_node(node.label, [node.as_constant()])
        const_tree = const_tree.with_edges(
            const_tree.edges.without_attributes(node.label)
        )
    return normalise(
        FactorisedRelation(const_tree, ProductRep(new_factors))
    )
