"""Arena-native kernels for the restructuring f-plan operators.

The object implementations in :mod:`repro.ops.swap`, ``merge``,
``normalise`` and ``absorb`` rewrite ``UnionRep``/``ProductRep`` trees
one Python object at a time; for arena-backed relations they used to
run through the lazy arena->object adapter, paying two full encoding
conversions per restructuring step.  This module re-implements each
operator directly on the flat columns of
:class:`~repro.core.arena.ArenaRep`:

- value ids are copied **verbatim** (every kernel's output shares its
  input's pool), so no interning happens on the hot path;
- subtrees untouched by an operator move as contiguous column runs
  (:func:`_copy_run`: one ``memcpy``-shaped append per column, offsets
  fixed up by a constant shift), never entry by entry;
- the per-occurrence driving loop (:class:`_LevelKernel.run`) mirrors
  :func:`repro.ops.base.rewrite_at_level` exactly, including its
  eager pruning of emptied unions.

Every kernel is *prepared* once per (f-tree, operator, args) -- node
indices, child-slot mappings and the destination skeleton are resolved
at prepare time and cached -- so repeated executions (plan replays,
shard fan-out, IVM delta merges) run without touching the f-tree at
all, and arenas produced by the same prepared kernel share one
destination skeleton (keeping the per-skeleton enumeration codegen
cache of :mod:`repro.core.arena` warm).

:func:`compiled_plan_for` lifts this to whole f-plans: all step
kernels of an :class:`~repro.optimiser.fplan.FPlan` are prepared
up-front, chained by a generated driver, and cached weakly per plan --
the kernel-at-a-time object path remains as the differential oracle
and fallback.

:func:`union_arena` and :func:`product_arena` cover the remaining
binary operators, including cross-pool id remapping when the inputs do
not share a value pool.
"""

from __future__ import annotations

import heapq
import weakref
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.arena import (
    ArenaRep,
    ValuePool,
    _as_np,
    _extend_ids,
    _i64,
    _np,
    _skeleton_of,
    _Skeleton,
)
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree


def _extend_shifted(dest: array, source, lo: int, hi: int, delta: int) -> None:
    """Append ``source[lo:hi] + delta`` to ``dest`` (bulk, both column
    kinds: ``array('q')`` and mmap-backed int64 ndarrays)."""
    if delta == 0:
        _extend_ids(dest, source, lo, hi)
    elif _np is not None:
        view = _as_np(source)[lo:hi] + delta
        dest.frombytes(view.tobytes())
    else:
        dest.extend(x + delta for x in source[lo:hi])


class _Writer:
    """Append-only column writer that never interns.

    The operator kernels copy value ids verbatim from their input (the
    output shares the input pool), so unlike
    :class:`~repro.core.arena.ArenaWriter` there is no intern table:
    :meth:`commit_id` takes the id directly.  ``mark``/``rollback``
    give the same contiguous-subtree transaction the build path uses.
    """

    __slots__ = ("skel", "values", "child_lo", "child_hi", "scratch")

    def __init__(self, skel: _Skeleton) -> None:
        n = len(skel)
        self.skel = skel
        self.values: List[array] = [_i64() for _ in range(n)]
        self.child_lo: List[List[array]] = [
            [_i64() for _ in skel.children[i]] for i in range(n)
        ]
        self.child_hi: List[List[array]] = [
            [_i64() for _ in skel.children[i]] for i in range(n)
        ]
        #: Per-run kernel scratch (e.g. the decoded pool rank table of
        #: the vectorised swap).  Lives on the writer, not the kernel:
        #: prepared kernels are cached and shared across executions --
        #: and threads -- while a writer belongs to exactly one run.
        self.scratch: Dict[str, object] = {}

    def mark(self, idx: int) -> List[int]:
        values = self.values
        return [
            len(values[k]) for k in range(idx + 1, self.skel.end[idx])
        ]

    def commit_id(self, idx: int, vid: int, marks: List[int]) -> None:
        values = self.values
        for j, k in enumerate(self.skel.children[idx]):
            self.child_lo[idx][j].append(marks[k - idx - 1])
            self.child_hi[idx][j].append(len(values[k]))
        values[idx].append(vid)

    def mark_children(self, idx: int) -> List[int]:
        """Direct-children watermarks only -- for commit sites that
        never roll back (:meth:`mark` snapshots the whole descendant
        range, which the hot per-entry loops cannot afford)."""
        values = self.values
        return [len(values[k]) for k in self.skel.children[idx]]

    def commit_children(
        self, idx: int, vid: int, cmarks: List[int]
    ) -> None:
        values = self.values
        child_lo = self.child_lo[idx]
        child_hi = self.child_hi[idx]
        for j, k in enumerate(self.skel.children[idx]):
            child_lo[j].append(cmarks[j])
            child_hi[j].append(len(values[k]))
        values[idx].append(vid)

    def rollback(self, idx: int, marks: List[int]) -> None:
        for k, watermark in zip(
            range(idx + 1, self.skel.end[idx]), marks
        ):
            del self.values[k][watermark:]
            for slot in self.child_lo[k]:
                del slot[watermark:]
            for slot in self.child_hi[k]:
                del slot[watermark:]

    def finish(self, pool) -> ArenaRep:
        return ArenaRep(
            self.skel, self.values, self.child_lo, self.child_hi, pool
        )


def _copy_run(
    src: ArenaRep,
    w: _Writer,
    si: int,
    di: int,
    lo: int,
    hi: int,
    vmap=None,
) -> None:
    """Bulk-append entries ``[lo, hi)`` of src node ``si`` (and their
    whole descendant forests) to dst node ``di``.

    Requires structurally identical subtrees under ``si`` and ``di``
    (same labels; canonical child sorting then makes the child orders
    coincide, so the recursion is positional).  Values copy verbatim,
    or through ``vmap`` (an id remap table) for cross-pool copies;
    child ranges copy with one constant shift per (slot, run).
    """
    if hi <= lo:
        return
    if vmap is None:
        _extend_ids(w.values[di], src.values[si], lo, hi)
    elif _np is not None:
        col = _as_np(src.values[si])[lo:hi]
        w.values[di].frombytes(vmap[col].tobytes())
    else:
        column = src.values[si]
        w.values[di].extend(vmap[column[e]] for e in range(lo, hi))
    skids = src.skel.children[si]
    dkids = w.skel.children[di]
    for j in range(len(skids)):
        los = src.child_lo[si][j]
        his = src.child_hi[si][j]
        c_lo = los[lo]
        c_hi = his[hi - 1]
        delta = len(w.values[dkids[j]]) - c_lo
        _extend_shifted(w.child_lo[di][j], los, lo, hi, delta)
        _extend_shifted(w.child_hi[di][j], his, lo, hi, delta)
        _copy_run(src, w, skids[j], dkids[j], c_lo, c_hi, vmap)


def _pool_rank(pool):
    """Sort rank of every pool id by its decoded value, as an int64
    numpy table -- ids whose values compare *equal* (interning is
    per-type, so ``1`` and ``1.0`` hold distinct ids) share a rank,
    mirroring the heap path's equality grouping.  Returns ``False``
    when the pool holds incomparable values (the caller falls back to
    the heap) or numpy is unavailable.
    """
    if _np is None:
        return False
    size = len(pool)
    try:
        order = sorted(range(size), key=pool.__getitem__)
    except TypeError:
        return False
    rank = _np.empty(size, dtype=_np.int64)
    current = -1
    previous = object()
    for vid in order:
        value = pool[vid]
        if current < 0 or value != previous:
            current += 1
            previous = value
        rank[vid] = current
    return rank


# -- the per-occurrence driver ------------------------------------------------


class _LevelKernel:
    """Base of the prepared single-operator kernels.

    A restructuring operator rewrites every *occurrence* of the level
    at which its anchor node sits (:func:`repro.ops.base.
    rewrite_at_level`).  :meth:`run` walks the spine -- the chain of
    the anchor's ancestors -- per entry, calls the operator-specific
    :meth:`level` at each occurrence, prunes entries whose rewritten
    occurrence emptied (rollback), and bulk-copies everything off the
    spine.  Subclasses fill in :meth:`level`, which must write **all**
    destination members of the rewritten level (the level is where the
    forest changes shape, so only the subclass knows the mapping) and
    return ``False`` when the occurrence emptied.
    """

    __slots__ = (
        "src_tree",
        "out_tree",
        "sskel",
        "dskel",
        "anchor",
        "p",
        "level_nodes",
        "spine",
        "passthrough",
    )

    def __init__(
        self, tree: FTree, out_tree: FTree, anchor_label
    ) -> None:
        self.src_tree = tree
        self.out_tree = out_tree
        sskel = _skeleton_of(tree)
        dskel = _skeleton_of(out_tree)
        self.sskel = sskel
        self.dskel = dskel
        sa = sskel.index[anchor_label]
        self.anchor = sa
        p = sskel.parent[sa]
        self.p = p
        self.level_nodes: Tuple[int, ...] = (
            sskel.roots if p == -1 else sskel.children[p]
        )
        # Spine: the anchor's ancestors, root first.  Per spine node:
        # (src idx, dst idx, continuation slot, passthrough child
        # copies) -- labels above the level are untouched by every
        # operator here, so dst nodes resolve by label.
        spine: List[Tuple[int, int, int, List[Tuple[int, int, int]]]] = []
        chain: List[int] = []
        x = p
        while x != -1:
            chain.append(x)
            x = sskel.parent[x]
        chain.reverse()
        for d, sx in enumerate(chain):
            dx = dskel.index[sskel.labels[sx]]
            if d + 1 < len(chain):
                nxt = chain[d + 1]
                j_cont = sskel.children[sx].index(nxt)
                passthrough = [
                    (j, k, dskel.index[sskel.labels[k]])
                    for j, k in enumerate(sskel.children[sx])
                    if j != j_cont
                ]
            else:
                # The chain's last node is the level's parent: walk()
                # hands its entries straight to level(), which owns
                # every level member -- no continuation slot, and no
                # passthrough (whose labels may not even survive the
                # operator, e.g. a merged-away sibling).
                j_cont = -1
                passthrough = []
            spine.append((sx, dx, j_cont, passthrough))
        self.spine = spine
        # Level members the operator leaves untouched; subclasses
        # remove their operands from this list.
        self.passthrough: List[Tuple[int, int, int]] = []

    def _keep_members(self, consumed: Sequence[int]) -> None:
        """Record the level members copied verbatim by :meth:`level`."""
        skip = set(consumed)
        self.passthrough = [
            (pos, m, self.dskel.index[self.sskel.labels[m]])
            for pos, m in enumerate(self.level_nodes)
            if m not in skip
        ]

    def _rng(
        self, arena: ArenaRep, pos: int, node: int, e: Optional[int]
    ) -> Tuple[int, int]:
        """Entry range of level member ``node`` at occurrence ``e``."""
        if e is None:
            return 0, len(arena.values[node])
        return (
            arena.child_lo[self.p][pos][e],
            arena.child_hi[self.p][pos][e],
        )

    def _copy_passthrough(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> None:
        for pos, m, dm in self.passthrough:
            lo, hi = self._rng(arena, pos, m, e)
            _copy_run(arena, w, m, dm, lo, hi)

    def level(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, arena: ArenaRep) -> Optional[ArenaRep]:
        w = _Writer(self.dskel)
        if self.p == -1:
            if not self.level(arena, w, None):
                return None
            return w.finish(arena.pool)
        spine = self.spine
        sskel = self.sskel
        last = len(spine) - 1

        def walk(d: int, lo: int, hi: int) -> bool:
            sx, dx, j_cont, passthrough = spine[d]
            vals = arena.values[sx]
            kept = False
            if d == last:
                for e in range(lo, hi):
                    marks = w.mark(dx)
                    if self.level(arena, w, e):
                        w.commit_id(dx, vals[e], marks)
                        kept = True
                    else:
                        w.rollback(dx, marks)
                return kept
            los = arena.child_lo[sx][j_cont]
            his = arena.child_hi[sx][j_cont]
            for e in range(lo, hi):
                marks = w.mark(dx)
                if walk(d + 1, los[e], his[e]):
                    for j, k, dk in passthrough:
                        _copy_run(
                            arena,
                            w,
                            k,
                            dk,
                            arena.child_lo[sx][j][e],
                            arena.child_hi[sx][j][e],
                        )
                    w.commit_id(dx, vals[e], marks)
                    kept = True
                else:
                    w.rollback(dx, marks)
            return kept

        root = spine[0][0]
        if not walk(0, 0, len(arena.values[root])):
            return None
        for r in sskel.roots:
            if r != root:
                _copy_run(
                    arena,
                    w,
                    r,
                    self.dskel.index[sskel.labels[r]],
                    0,
                    len(arena.values[r]),
                )
        return w.finish(arena.pool)


# -- swap ---------------------------------------------------------------------


class SwapKernel(_LevelKernel):
    """``chi_{A,B}`` on columns: the Figure 4 heap merge, with all
    subtree payloads (``E_a``, ``F_b``, ``G_ab``) moved as bulk runs."""

    __slots__ = (
        "sa",
        "sb",
        "a_pos",
        "j_b",
        "dna",
        "dnb",
        "e_slots",
        "tb_slots",
        "tab_slots",
        "j_a_slot",
        "leaf_fast",
        "copy_plan",
    )

    def __init__(self, tree: FTree, a_attr: str, b_attr: str) -> None:
        from repro.ops.swap import _swap_parts, swap_tree

        node_a, node_b, a_others, t_b, t_ab = _swap_parts(
            tree, a_attr, b_attr
        )
        super().__init__(
            tree, swap_tree(tree, a_attr, b_attr), node_a.label
        )
        sskel, dskel = self.sskel, self.dskel
        self.sa = sskel.index[node_a.label]
        self.sb = sskel.index[node_b.label]
        self.a_pos = self.level_nodes.index(self.sa)
        self.j_b = sskel.children[self.sa].index(self.sb)
        self.dna = dskel.index[node_a.label]
        self.dnb = dskel.index[node_b.label]
        self.e_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sa])
            if j != self.j_b
        ]
        tb_labels = {t.label for t in t_b}
        self.tb_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sb])
            if sskel.labels[k] in tb_labels
        ]
        self.tab_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sb])
            if sskel.labels[k] not in tb_labels
        ]
        self._keep_members((self.sa,))
        # Leaf-shaped swap (B is A's only subtree and carries none of
        # its own): the whole occurrence reduces to one argsort-and-
        # group over the B column -- no per-entry Python at all.
        self.j_a_slot = dskel.children[self.dnb].index(self.dna)
        self.leaf_fast = (
            _np is not None
            and not self.e_slots
            and not self.tb_slots
            and not self.tab_slots
            and not dskel.children[self.dna]
        )
        # Batched-run copy plan: a swap never prunes an occurrence
        # (every A entry owns a non-empty B union), so every column
        # except the two swapped nodes' copies verbatim.  Resolve the
        # per-node slot mapping now; the slot that pointed at A points
        # at B's node in the output (the subtree root's label changed).
        self.copy_plan: List[
            Tuple[int, int, List[Tuple[int, int, int]]]
        ] = []
        if self.leaf_fast:
            for si in range(len(sskel)):
                if si == self.sa or si == self.sb:
                    continue
                di = dskel.index[sskel.labels[si]]
                slots = []
                for j, k in enumerate(sskel.children[si]):
                    dst_label = (
                        node_b.label
                        if k == self.sa
                        else sskel.labels[k]
                    )
                    dj = dskel.children[di].index(
                        dskel.index[dst_label]
                    )
                    slots.append((j, dj, k))
                self.copy_plan.append((si, di, slots))

    def run(self, arena: ArenaRep) -> Optional[ArenaRep]:
        """Whole-column batched swap: one argsort over a composite
        (occurrence, value-rank) key replaces the per-occurrence walk
        entirely.  Falls back to the generic driver when the shape is
        not leaf-fast, the pool is not comparable, or columns are not
        occurrence-contiguous."""
        if not self.leaf_fast:
            return super().run(arena)
        rank = _pool_rank(arena.pool)
        if rank is False:
            return super().run(arena)
        np = _np
        sskel = self.sskel
        sa, sb, p = self.sa, self.sb, self.p
        vals_a = _as_np(arena.values[sa])
        vals_b = _as_np(arena.values[sb])
        n_a = len(vals_a)
        if n_a == 0:
            return None
        bl = _as_np(arena.child_lo[sa][self.j_b])
        bh = _as_np(arena.child_hi[sa][self.j_b])
        if len(vals_b) != int((bh - bl).sum()):
            return super().run(arena)
        if p != -1:
            occ_lo = _as_np(arena.child_lo[p][self.a_pos])
            occ_hi = _as_np(arena.child_hi[p][self.a_pos])
            if n_a != int((occ_hi - occ_lo).sum()):
                return super().run(arena)
            a_occ = np.repeat(
                np.arange(len(occ_lo), dtype=np.int64),
                occ_hi - occ_lo,
            )
        else:
            occ_lo = None
            a_occ = np.zeros(n_a, dtype=np.int64)
        owners = np.repeat(
            np.arange(n_a, dtype=np.int64), bh - bl
        )
        kb = rank[vals_b]
        occ_b = a_occ[owners]
        stride = int(kb.max()) + 1 if len(kb) else 1
        order = np.argsort(occ_b * stride + kb, kind="stable")
        comp_sorted = (occ_b * stride + kb)[order]
        boundary = (
            np.flatnonzero(comp_sorted[1:] != comp_sorted[:-1]) + 1
        )
        n_out = len(comp_sorted)
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), boundary)
        )
        ends = np.concatenate(
            (boundary, np.asarray([n_out], dtype=np.int64))
        )
        w = _Writer(self.dskel)
        w.values[self.dna].frombytes(
            vals_a[owners[order]].tobytes()
        )
        b_sorted = vals_b[order]
        w.values[self.dnb].frombytes(b_sorted[starts].tobytes())
        w.child_lo[self.dnb][self.j_a_slot].frombytes(
            starts.tobytes()
        )
        w.child_hi[self.dnb][self.j_a_slot].frombytes(
            ends.tobytes()
        )
        if p != -1:
            per_occ = np.bincount(
                occ_b[order][starts], minlength=len(occ_lo)
            ).astype(np.int64)
            group_hi = np.cumsum(per_occ)
            group_lo = group_hi - per_occ
        for si, di, slots in self.copy_plan:
            column = arena.values[si]
            _extend_ids(w.values[di], column, 0, len(column))
            for j, dj, k in slots:
                if si == p and k == sa:
                    w.child_lo[di][dj].frombytes(group_lo.tobytes())
                    w.child_hi[di][dj].frombytes(group_hi.tobytes())
                    continue
                src_lo = arena.child_lo[si][j]
                src_hi = arena.child_hi[si][j]
                _extend_ids(w.child_lo[di][dj], src_lo, 0, len(src_lo))
                _extend_ids(w.child_hi[di][dj], src_hi, 0, len(src_hi))
        return w.finish(arena.pool)

    def _level_vectorised(
        self, arena: ArenaRep, w: _Writer, e: Optional[int], rank
    ) -> bool:
        np = _np
        sa, sb = self.sa, self.sb
        a_lo, a_hi = self._rng(arena, self.a_pos, sa, e)
        if a_hi <= a_lo:
            return self._level_heap(arena, w, e)
        bl = _as_np(arena.child_lo[sa][self.j_b])
        bh = _as_np(arena.child_hi[sa][self.j_b])
        seg_lo = int(bl[a_lo])
        seg_hi = int(bh[a_hi - 1])
        counts = bh[a_lo:a_hi] - bl[a_lo:a_hi]
        if seg_hi - seg_lo != int(counts.sum()):
            # Non-contiguous B runs inside the occurrence; take the
            # cursor-per-entry heap instead of gathering.
            return self._level_heap(arena, w, e)
        b_seg = _as_np(arena.values[sb])[seg_lo:seg_hi]
        n_out = len(b_seg)
        if n_out == 0:
            return False
        owners = np.repeat(
            np.arange(a_lo, a_hi, dtype=np.int64), counts
        )
        order = np.argsort(rank[b_seg], kind="stable")
        b_sorted = b_seg[order]
        keys = rank[b_sorted]
        boundary = np.flatnonzero(keys[1:] != keys[:-1]) + 1
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), boundary)
        )
        ends = np.concatenate(
            (boundary, np.asarray([n_out], dtype=np.int64))
        )
        dna, dnb = self.dna, self.dnb
        base_a = len(w.values[dna])
        a_ids = _as_np(arena.values[sa])[owners[order]]
        w.values[dna].frombytes(a_ids.tobytes())
        slot = self.j_a_slot
        w.child_lo[dnb][slot].frombytes((starts + base_a).tobytes())
        w.child_hi[dnb][slot].frombytes((ends + base_a).tobytes())
        w.values[dnb].frombytes(b_sorted[starts].tobytes())
        self._copy_passthrough(arena, w, e)
        return True

    def level(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:
        if self.leaf_fast:
            rank = w.scratch.get("swap_rank")
            if rank is None:
                rank = _pool_rank(arena.pool)
                w.scratch["swap_rank"] = rank
            if rank is not False:
                return self._level_vectorised(arena, w, e, rank)
        return self._level_heap(arena, w, e)

    def _level_heap(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:
        sa, sb = self.sa, self.sb
        a_lo, a_hi = self._rng(arena, self.a_pos, sa, e)
        vals_a = arena.values[sa]
        vals_b = arena.values[sb]
        bl = arena.child_lo[sa][self.j_b]
        bh = arena.child_hi[sa][self.j_b]
        a_cl, a_ch = arena.child_lo[sa], arena.child_hi[sa]
        b_cl, b_ch = arena.child_lo[sb], arena.child_hi[sb]
        pool = arena.pool
        dna, dnb = self.dna, self.dnb

        # Figure 4: one cursor per A-entry into its inner B-union,
        # merged by a min-heap keyed on the next (decoded) B value.
        n = a_hi - a_lo
        positions: List[int] = [0] * n
        heap: List[Tuple[object, int]] = []
        for i in range(n):
            b0 = bl[a_lo + i]
            positions[i] = b0
            heap.append((pool[vals_b[b0]], i))
        heapq.heapify(heap)

        while heap:
            b_min = heap[0][0]
            group_marks = w.mark_children(dnb)
            b_vid = -1
            first = True
            while heap and heap[0][0] == b_min:
                _, i = heapq.heappop(heap)
                a_e = a_lo + i
                bp = positions[i]
                if first:
                    first = False
                    b_vid = vals_b[bp]
                    for j, k, dk in self.tb_slots:
                        _copy_run(
                            arena, w, k, dk, b_cl[j][bp], b_ch[j][bp]
                        )
                marks_a = w.mark_children(dna)
                for j, k, dk in self.e_slots:
                    _copy_run(
                        arena, w, k, dk, a_cl[j][a_e], a_ch[j][a_e]
                    )
                for j, k, dk in self.tab_slots:
                    _copy_run(
                        arena, w, k, dk, b_cl[j][bp], b_ch[j][bp]
                    )
                w.commit_children(dna, vals_a[a_e], marks_a)
                positions[i] = bp + 1
                if bp + 1 < bh[a_e]:
                    heapq.heappush(
                        heap, (pool[vals_b[bp + 1]], i)
                    )
            w.commit_children(dnb, b_vid, group_marks)
        self._copy_passthrough(arena, w, e)
        return True


# -- merge --------------------------------------------------------------------


class MergeKernel(_LevelKernel):
    """``mu_{A,B}`` on columns: a decoded sort-merge of the two
    sibling value columns; matched entries adopt both child forests."""

    __slots__ = ("sa", "sb", "a_pos", "b_pos", "dm", "a_slots", "b_slots")

    def __init__(self, tree: FTree, a_attr: str, b_attr: str) -> None:
        from repro.ops.merge import _merge_parts, merge_tree

        node_a, node_b, merged = _merge_parts(tree, a_attr, b_attr)
        super().__init__(
            tree, merge_tree(tree, a_attr, b_attr), node_a.label
        )
        sskel, dskel = self.sskel, self.dskel
        self.sa = sskel.index[node_a.label]
        self.sb = sskel.index[node_b.label]
        self.a_pos = self.level_nodes.index(self.sa)
        self.b_pos = self.level_nodes.index(self.sb)
        self.dm = dskel.index[merged.label]
        self.a_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sa])
        ]
        self.b_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sb])
        ]
        self._keep_members((self.sa, self.sb))

    def level(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:
        sa, sb = self.sa, self.sb
        a_lo, a_hi = self._rng(arena, self.a_pos, sa, e)
        b_lo, b_hi = self._rng(arena, self.b_pos, sb, e)
        vals_a, vals_b = arena.values[sa], arena.values[sb]
        a_cl, a_ch = arena.child_lo[sa], arena.child_hi[sa]
        b_cl, b_ch = arena.child_lo[sb], arena.child_hi[sb]
        pool = arena.pool
        dm = self.dm
        i, j = a_lo, b_lo
        kept = False
        while i < a_hi and j < b_hi:
            av = pool[vals_a[i]]
            bv = pool[vals_b[j]]
            if av < bv:
                i += 1
            elif bv < av:
                j += 1
            else:
                marks = w.mark_children(dm)
                for js, k, dk in self.a_slots:
                    _copy_run(
                        arena, w, k, dk, a_cl[js][i], a_ch[js][i]
                    )
                for js, k, dk in self.b_slots:
                    _copy_run(
                        arena, w, k, dk, b_cl[js][j], b_ch[js][j]
                    )
                w.commit_children(dm, vals_a[i], marks)
                kept = True
                i += 1
                j += 1
        if not kept:
            return False
        self._copy_passthrough(arena, w, e)
        return True


# -- push-up ------------------------------------------------------------------


class PushKernel(_LevelKernel):
    """``psi_B`` on columns: hoist ``B``'s (independent, hence
    everywhere-equal) union from the first ``A`` entry, then re-emit
    the ``A`` union without the ``B`` slot."""

    __slots__ = ("sa", "sb", "a_pos", "j_b", "dna", "dnb", "e_slots")

    def __init__(self, tree: FTree, b_attr: str) -> None:
        from repro.ops.normalise import push_up_tree

        node_b = tree.node_of(b_attr)
        node_a = tree.parent_of(node_b)
        super().__init__(
            tree, push_up_tree(tree, b_attr), node_a.label
        )
        sskel, dskel = self.sskel, self.dskel
        self.sa = sskel.index[node_a.label]
        self.sb = sskel.index[node_b.label]
        self.a_pos = self.level_nodes.index(self.sa)
        self.j_b = sskel.children[self.sa].index(self.sb)
        self.dna = dskel.index[node_a.label]
        self.dnb = dskel.index[node_b.label]
        self.e_slots = [
            (j, k, dskel.index[sskel.labels[k]])
            for j, k in enumerate(sskel.children[self.sa])
            if j != self.j_b
        ]
        self._keep_members((self.sa,))

    def level(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:
        sa = self.sa
        a_lo, a_hi = self._rng(arena, self.a_pos, sa, e)
        vals_a = arena.values[sa]
        a_cl, a_ch = arena.child_lo[sa], arena.child_hi[sa]
        # All copies of B's union are equal by independence; hoist the
        # first (exactly the object operator's choice).
        _copy_run(
            arena,
            w,
            self.sb,
            self.dnb,
            a_cl[self.j_b][a_lo],
            a_ch[self.j_b][a_lo],
        )
        dna = self.dna
        for a_e in range(a_lo, a_hi):
            marks = w.mark_children(dna)
            for j, k, dk in self.e_slots:
                _copy_run(arena, w, k, dk, a_cl[j][a_e], a_ch[j][a_e])
            w.commit_children(dna, vals_a[a_e], marks)
        self._copy_passthrough(arena, w, e)
        return True


# -- absorb -------------------------------------------------------------------


class _AbsorbStructuralKernel(_LevelKernel):
    """The restriction phase of ``alpha_{A,B}``: below every ``A``
    entry, descend to ``B``'s occurrences, keep only the entry whose
    value equals the enclosing ``A`` value (binary search on the
    decoded column), splice ``B``'s children into its parent, and
    prune emptied unions on the way back up."""

    __slots__ = ("sa", "sb", "a_pos", "dm", "path")

    def __init__(self, tree: FTree, a_attr: str, b_attr: str) -> None:
        from repro.ops.absorb import _absorb_parts, _structural_tree

        node_a, node_b = _absorb_parts(tree, a_attr, b_attr)
        structural, merged = _structural_tree(tree, node_a, node_b)
        super().__init__(tree, structural, node_a.label)
        sskel, dskel = self.sskel, self.dskel
        sa = sskel.index[node_a.label]
        sb = sskel.index[node_b.label]
        self.sa = sa
        self.sb = sb
        self.a_pos = self.level_nodes.index(sa)
        self.dm = dskel.index[merged.label]
        # Owners of the forests on the path from A down to B's parent;
        # per owner: (src idx, dst idx, continuation slot, passthrough
        # child copies, splice pairs -- the last only at B's parent).
        chain: List[int] = []
        x = sskel.parent[sb]
        while x != sa:
            chain.append(x)
            x = sskel.parent[x]
        chain.append(sa)
        chain.reverse()
        path = []
        for d, sx in enumerate(chain):
            dx = self.dm if sx == sa else dskel.index[sskel.labels[sx]]
            nxt = chain[d + 1] if d + 1 < len(chain) else sb
            j_cont = sskel.children[sx].index(nxt)
            passthrough = [
                (j, k, dskel.index[sskel.labels[k]])
                for j, k in enumerate(sskel.children[sx])
                if j != j_cont
            ]
            splice = None
            if nxt == sb:
                splice = [
                    (j, k, dskel.index[sskel.labels[k]])
                    for j, k in enumerate(sskel.children[sb])
                ]
            path.append((sx, dx, j_cont, passthrough, splice))
        self.path = path
        self._keep_members((sa,))

    def _below(
        self,
        arena: ArenaRep,
        w: _Writer,
        d: int,
        e: int,
        a_val: object,
    ) -> bool:
        sx, _, j_cont, passthrough, splice = self.path[d]
        lo = arena.child_lo[sx][j_cont][e]
        hi = arena.child_hi[sx][j_cont][e]
        if splice is not None:
            # The continuation member is B itself: restrict its union
            # to a_val -- bisect_left on the decoded column, exactly
            # UnionRep.find.
            sb = self.sb
            vals_b = arena.values[sb]
            pool = arena.pool
            p_lo, p_hi = lo, hi
            while p_lo < p_hi:
                mid = (p_lo + p_hi) // 2
                if pool[vals_b[mid]] < a_val:
                    p_lo = mid + 1
                else:
                    p_hi = mid
            if p_lo >= hi or pool[vals_b[p_lo]] != a_val:
                return False
            for j, k, dk in splice:
                _copy_run(
                    arena,
                    w,
                    k,
                    dk,
                    arena.child_lo[sb][j][p_lo],
                    arena.child_hi[sb][j][p_lo],
                )
            for j, k, dk in passthrough:
                _copy_run(
                    arena,
                    w,
                    k,
                    dk,
                    arena.child_lo[sx][j][e],
                    arena.child_hi[sx][j][e],
                )
            return True
        nxt_sx, nxt_dx = self.path[d + 1][0], self.path[d + 1][1]
        vals = arena.values[nxt_sx]
        kept = False
        for t in range(lo, hi):
            marks = w.mark(nxt_dx)
            if self._below(arena, w, d + 1, t, a_val):
                w.commit_id(nxt_dx, vals[t], marks)
                kept = True
            else:
                w.rollback(nxt_dx, marks)
        if not kept:
            return False
        for j, k, dk in passthrough:
            _copy_run(
                arena,
                w,
                k,
                dk,
                arena.child_lo[sx][j][e],
                arena.child_hi[sx][j][e],
            )
        return True

    def level(
        self, arena: ArenaRep, w: _Writer, e: Optional[int]
    ) -> bool:
        sa = self.sa
        a_lo, a_hi = self._rng(arena, self.a_pos, sa, e)
        vals_a = arena.values[sa]
        pool = arena.pool
        dm = self.dm
        kept = False
        for a_e in range(a_lo, a_hi):
            a_vid = vals_a[a_e]
            marks = w.mark(dm)
            if self._below(arena, w, 0, a_e, pool[a_vid]):
                w.commit_id(dm, a_vid, marks)
                kept = True
            else:
                w.rollback(dm, marks)
        if not kept:
            return False
        self._copy_passthrough(arena, w, e)
        return True


class KernelChain:
    """A prepared sequence of kernels run back to back (absorb =
    restriction + normalisation replay; select-eq = filter +
    normalisation replay; compiled plans = one kernel per step)."""

    __slots__ = ("kernels", "out_tree")

    def __init__(self, kernels: Sequence[object], out_tree: FTree) -> None:
        self.kernels = list(kernels)
        self.out_tree = out_tree

    def run(self, arena: ArenaRep) -> Optional[ArenaRep]:
        current: Optional[ArenaRep] = arena
        for kernel in self.kernels:
            current = kernel.run(current)
            if current is None:
                return None
        return current


def _normalise_chain(tree: FTree) -> KernelChain:
    """Prepared push-up kernels replaying ``normalise_tree(tree)``."""
    from repro.ops.normalise import normalise_tree

    kernels: List[PushKernel] = []
    current = tree
    _, trace = normalise_tree(tree)
    for attr in trace:
        kernel = PushKernel(current, attr)
        kernels.append(kernel)
        current = kernel.out_tree
    return KernelChain(kernels, current)


def _absorb_chain(tree: FTree, a_attr: str, b_attr: str) -> KernelChain:
    structural = _AbsorbStructuralKernel(tree, a_attr, b_attr)
    tail = _normalise_chain(structural.out_tree)
    return KernelChain([structural] + tail.kernels, tail.out_tree)


# -- prepared-kernel cache ----------------------------------------------------

_PREPARERS: Dict[str, Callable[..., object]] = {
    "swap": SwapKernel,
    "merge": MergeKernel,
    "push": PushKernel,
    "absorb": _absorb_chain,
    "normalise": _normalise_chain,
}

_KERNEL_CACHE: Dict[tuple, object] = {}
_KERNEL_CACHE_MAX = 512


def kernel_for(tree: FTree, kind: str, args: Sequence[str] = ()):
    """The prepared arena kernel for ``kind`` (``swap``/``merge``/
    ``push``/``absorb``/``normalise``) on ``tree``, cached by the
    tree's canonical key so plan replays and repeated shard/delta
    executions skip preparation (and share destination skeletons,
    keeping the enumeration codegen cache warm)."""
    key = (tree.key(), kind, tuple(args))
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        kernel = _PREPARERS[kind](tree, *args)
        _KERNEL_CACHE[key] = kernel
    return kernel


# -- whole-plan compilation ---------------------------------------------------


class CompiledArenaPlan:
    """An f-plan compiled to a chain of prepared columnar kernels.

    All per-step preparation (skeletons, slot mappings, normalisation
    traces) happens once at compile time; execution is one generated
    driver running kernel after kernel over flat columns -- no f-tree
    transforms, no per-step key assertions, no object materialisation.
    """

    __slots__ = ("kernels", "steps", "out_tree", "_drive")

    def __init__(self, plan) -> None:
        kernels = []
        for step, in_tree, expected in zip(
            plan.steps, plan.trees, plan.trees[1:]
        ):
            kernel = kernel_for(in_tree, step.kind, step.args)
            if kernel.out_tree.key() != expected.key():
                raise AssertionError(
                    f"kernel for {step} produced an unexpected f-tree"
                )
            kernels.append(kernel)
        self.kernels = kernels
        #: The source f-plan steps, index-aligned with :attr:`kernels`
        #: (labels for :mod:`repro.obs.profile`).
        self.steps = tuple(plan.steps)
        self.out_tree = plan.output_tree
        self._drive = _plan_driver(len(kernels))

    def execute(self, fr: FactorisedRelation) -> FactorisedRelation:
        if fr.is_empty():
            return FactorisedRelation(self.out_tree, arena=None)
        result = self._drive(fr.arena, self.kernels)
        return FactorisedRelation(self.out_tree, arena=result)


_DRIVER_CACHE: Dict[int, Callable] = {}


def _plan_driver(n: int) -> Callable:
    """Generate (once per plan length) the straight-line driver that
    chains ``n`` kernel runs -- the whole-plan analogue of the
    per-skeleton enumeration codegen in :mod:`repro.core.arena`."""
    driver = _DRIVER_CACHE.get(n)
    if driver is not None:
        return driver
    lines = ["def _run(arena, kernels):"]
    for i in range(n):
        lines.append(f"    arena = kernels[{i}].run(arena)")
        lines.append("    if arena is None:")
        lines.append("        return None")
    lines.append("    return arena")
    namespace: Dict[str, object] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - self-generated
    driver = namespace["_run"]
    _DRIVER_CACHE[n] = driver
    return driver


_PLAN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compiled_plan_for(plan) -> CompiledArenaPlan:
    """The compiled arena pipeline for ``plan``, weakly cached per
    plan object (plans are themselves cached by the session layer, so
    a hot query compiles once)."""
    compiled = _PLAN_CACHE.get(plan)
    if compiled is None:
        compiled = CompiledArenaPlan(plan)
        _PLAN_CACHE[plan] = compiled
    return compiled


# -- union and product --------------------------------------------------------


def _right_remap(left_pool, right_pool):
    """An id remap table taking right-pool ids into (an extension of)
    the left pool; returns ``(out_pool, vmap)``."""
    if isinstance(left_pool, ValuePool):
        # Shared pools are append-only: intern the right values in
        # place so the output keeps the sharing identity.
        ids = [left_pool.intern(value) for value in right_pool]
        out_pool = left_pool
    else:
        out_pool = list(left_pool)
        intern: Dict[type, Dict[object, int]] = {}
        for vid, value in enumerate(out_pool):
            table = intern.setdefault(value.__class__, {})
            table.setdefault(value, vid)
        ids = []
        for value in right_pool:
            table = intern.setdefault(value.__class__, {})
            vid = table.get(value)
            if vid is None:
                vid = table[value] = len(out_pool)
                out_pool.append(value)
            ids.append(vid)
    if _np is not None:
        return out_pool, _np.asarray(ids, dtype=_np.int64)
    return out_pool, ids


def union_arena(left: ArenaRep, right: ArenaRep) -> ArenaRep:
    """Structural union of two arenas over the same f-tree: a decoded
    two-pointer merge per union occurrence, with one-sided runs
    bulk-copied.  Shares the left pool when both inputs already do
    (the shared-pool shard path); otherwise right ids are remapped
    through one vectorised table.  Exactness needs branch-compatible
    inputs, as in :func:`repro.ops.union.union`."""
    skel = left.skel
    w = _Writer(skel)
    if left.pool is right.pool:
        out_pool = left.pool
        vmap = None
    else:
        out_pool, vmap = _right_remap(left.pool, right.pool)
    lpool = left.pool
    rpool = right.pool

    def merge(si: int, llo: int, lhi: int, rlo: int, rhi: int) -> None:
        lvals = left.values[si]
        rvals = right.values[si]
        kids = skel.children[si]
        i, j = llo, rlo
        while i < lhi and j < rhi:
            lv = lpool[lvals[i]]
            rv = rpool[rvals[j]]
            if lv < rv:
                stop = i + 1
                while stop < lhi and lpool[lvals[stop]] < rv:
                    stop += 1
                _copy_run(left, w, si, si, i, stop)
                i = stop
            elif rv < lv:
                stop = j + 1
                while stop < rhi and rpool[rvals[stop]] < lv:
                    stop += 1
                _copy_run(right, w, si, si, j, stop, vmap)
                j = stop
            else:
                marks = w.mark_children(si)
                for js, k in enumerate(kids):
                    merge(
                        k,
                        left.child_lo[si][js][i],
                        left.child_hi[si][js][i],
                        right.child_lo[si][js][j],
                        right.child_hi[si][js][j],
                    )
                w.commit_children(si, lvals[i], marks)
                i += 1
                j += 1
        if i < lhi:
            _copy_run(left, w, si, si, i, lhi)
        if j < rhi:
            _copy_run(right, w, si, si, j, rhi, vmap)

    for r in skel.roots:
        merge(
            r, 0, len(left.values[r]), 0, len(right.values[r])
        )
    return w.finish(out_pool)


def product_arena(
    out_tree: FTree, left: ArenaRep, right: ArenaRep
) -> ArenaRep:
    """Cartesian product: the output forest adopts both input column
    sets verbatim (zero copies when the pools are already shared;
    otherwise the right value columns are re-based onto the
    concatenated pool with one vectorised shift)."""
    dskel = _skeleton_of(out_tree)
    n = len(dskel)
    values: List[array] = [None] * n  # type: ignore[list-item]
    child_lo: List[List[array]] = [None] * n  # type: ignore[list-item]
    child_hi: List[List[array]] = [None] * n  # type: ignore[list-item]
    shared = left.pool is right.pool
    if shared:
        pool = left.pool
        shift = 0
    else:
        pool = list(left.pool) + list(right.pool)
        shift = len(left.pool)

    def adopt(src: ArenaRep, delta: int) -> None:
        sskel = src.skel
        for i in range(len(sskel)):
            di = dskel.index[sskel.labels[i]]
            if delta == 0:
                values[di] = src.values[i]
            else:
                shifted = _i64()
                _extend_shifted(
                    shifted, src.values[i], 0, len(src.values[i]), delta
                )
                values[di] = shifted
            child_lo[di] = list(src.child_lo[i])
            child_hi[di] = list(src.child_hi[i])

    adopt(left, 0)
    adopt(right, shift)
    return ArenaRep(dskel, values, child_lo, child_hi, pool)
