"""The absorb selection operator ``alpha_{A,B}`` (Section 3.3,
Figure 3(d)).

Absorption enforces ``A = B`` when ``A`` is an *ancestor* of ``B``: in
every context, the union over ``B`` sits inside a union over ``A`` and
is therefore restricted to the single value ``a`` of its enclosing
``A``-singleton (or pruned when that value is absent).  The node ``B``
disappears -- its attributes join ``A``'s label, its children are
adopted by ``B``'s former parent -- and a final normalisation pass
floats any subtrees freed by the restriction (nodes on the path
between ``A`` and ``B`` may have lost their reason to sit below ``A``,
cf. Example 10).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import (
    OperatorError,
    rewrite_at_level,
    sort_pairs,
    subtree_index,
)
from repro.ops.normalise import normalise, normalise_tree


def _absorb_parts(
    tree: FTree, a_attr: str, b_attr: str
) -> Tuple[FNode, FNode]:
    node_a = tree.node_of(a_attr)
    node_b = tree.node_of(b_attr)
    if node_a.label == node_b.label:
        raise OperatorError(
            f"{a_attr!r} and {b_attr!r} already label the same node"
        )
    if not tree.is_ancestor(node_a, node_b):
        raise OperatorError(
            f"absorb requires {sorted(node_a.label)} to be an ancestor "
            f"of {sorted(node_b.label)}"
        )
    return node_a, node_b


def _structural_tree(
    tree: FTree, node_a: FNode, node_b: FNode
) -> Tuple[FTree, FNode]:
    """The f-tree after absorption, *before* normalisation.

    Returns the tree and the merged node (for data alignment).
    """
    a_attr = next(iter(node_a.label))
    spliced = tree.replace_node(node_b.label, list(node_b.children))
    node_a_after = spliced.node_of(a_attr)
    merged = FNode(
        node_a.label | node_b.label,
        node_a_after.children,
        node_a.constant and node_b.constant,
    )
    structural = spliced.replace_node(node_a.label, [merged])
    return structural, merged


def absorb_tree(tree: FTree, a_attr: str, b_attr: str) -> FTree:
    """Tree-level absorb, including the final normalisation."""
    node_a, node_b = _absorb_parts(tree, a_attr, b_attr)
    structural, _ = _structural_tree(tree, node_a, node_b)
    normalised, _ = normalise_tree(structural)
    return normalised


def absorb(
    fr: FactorisedRelation, a_attr: str, b_attr: str
) -> FactorisedRelation:
    """Absorb on a factorised relation (restriction + normalisation).

    Arena-backed relations run the columnar kernel chain of
    :mod:`repro.ops.arena_kernels` (restriction kernel + replayed
    push-ups); this object path is its oracle.
    """
    tree = fr.tree
    node_a, node_b = _absorb_parts(tree, a_attr, b_attr)
    structural, merged = _structural_tree(tree, node_a, node_b)
    if fr.encoding == "arena":
        from repro.ops import arena_kernels

        chain = arena_kernels.kernel_for(tree, "absorb", (a_attr, b_attr))
        if fr.is_empty():
            return FactorisedRelation(chain.out_tree, arena=None)
        return FactorisedRelation(chain.out_tree, arena=chain.run(fr.arena))
    if fr.data is None:
        normalised, _ = normalise_tree(structural)
        return FactorisedRelation(normalised, None)

    b_anchor = next(iter(node_b.label))

    def restrict(
        forest: Sequence[FNode],
        factors: Sequence[UnionRep],
        a_value: object,
    ) -> Optional[List[UnionRep]]:
        """Restrict B's union to ``a_value`` below this forest."""
        labels = [n.label for n in forest]
        if node_b.label in labels:
            i_b = labels.index(node_b.label)
            matched = factors[i_b].find(a_value)
            if matched is None:
                return None
            nodes = [n for k, n in enumerate(forest) if k != i_b]
            outs = [f for k, f in enumerate(factors) if k != i_b]
            nodes += list(node_b.children)
            outs += list(matched.factors)
            _, sorted_facts = sort_pairs(nodes, outs)
            return sorted_facts
        idx = subtree_index(forest, b_anchor)
        node, union = forest[idx], factors[idx]
        new_entries: List[Tuple[object, ProductRep]] = []
        for value, child in union.entries:
            res = restrict(node.children, child.factors, a_value)
            if res is not None:
                new_entries.append((value, ProductRep(res)))
        if not new_entries:
            return None
        out = list(factors)
        out[idx] = UnionRep(new_entries)
        return out

    parent = tree.parent_of(node_a)
    old_level = list(parent.children) if parent is not None else list(
        tree.roots
    )
    i_a = [n.label for n in old_level].index(node_a.label)

    def rewrite(factors: List[UnionRep]) -> Optional[List[UnionRep]]:
        union_a = factors[i_a]
        new_entries: List[Tuple[object, ProductRep]] = []
        for a_value, prod in union_a.entries:
            res = restrict(node_a.children, prod.factors, a_value)
            if res is not None:
                new_entries.append((a_value, ProductRep(res)))
        if not new_entries:
            return None
        nodes = [n for k, n in enumerate(old_level) if k != i_a]
        outs = [f for k, f in enumerate(factors) if k != i_a]
        nodes.append(merged)
        outs.append(UnionRep(new_entries))
        _, sorted_factors = sort_pairs(nodes, outs)
        return sorted_factors

    new_factors = rewrite_at_level(
        tree.roots, fr.data.factors, next(iter(node_a.label)), rewrite
    )
    if new_factors is None:
        normalised, _ = normalise_tree(structural)
        return FactorisedRelation(normalised, None)
    return normalise(
        FactorisedRelation(structural, ProductRep(new_factors))
    )
