"""F-plan operators (Section 3).

Each module implements one operator, in two flavours: a *tree-level*
transform (``*_tree``) used by the optimisers to explore the space of
f-trees cheaply, and the full *data* transform on a
:class:`~repro.core.factorised.FactorisedRelation`, rewriting every
occurrence of the affected fragment while preserving the value-order
constraint, the path constraint and normalisation.

========================  ==================================  ===========
operator                   module                              paper
========================  ==================================  ===========
push-up ``psi_B``          :mod:`repro.ops.normalise`          Fig. 3(a)
normalisation ``eta``      :mod:`repro.ops.normalise`          Def. 3
swap ``chi_{A,B}``         :mod:`repro.ops.swap`               Fig. 3(b)/4
merge ``mu_{A,B}``         :mod:`repro.ops.merge`              Fig. 3(c)
absorb ``alpha_{A,B}``     :mod:`repro.ops.absorb`             Fig. 3(d)
select ``sigma_{A th c}``  :mod:`repro.ops.select`             Sec. 3.3
project ``pi_A``           :mod:`repro.ops.project`            Sec. 3.4
product ``x``              :mod:`repro.ops.product`            Sec. 3.2
union ``u``                :mod:`repro.ops.union`              (sharding)
========================  ==================================  ===========

The union operator is not one of the paper's f-plan operators: it
recombines per-shard results for the sharded execution path of
:mod:`repro.exec` (see its module docstring for the exactness
precondition).
"""

from repro.ops.base import OperatorError
from repro.ops.normalise import (
    normalise,
    normalise_tree,
    push_up,
    push_up_tree,
    pushable_nodes,
)
from repro.ops.swap import swap, swap_reference, swap_tree
from repro.ops.merge import merge, merge_tree
from repro.ops.absorb import absorb, absorb_tree
from repro.ops.select import select_constant, select_constant_tree
from repro.ops.project import project, project_tree
from repro.ops.product import product, product_tree
from repro.ops.union import union, union_all

__all__ = [
    "absorb",
    "absorb_tree",
    "merge",
    "merge_tree",
    "normalise",
    "normalise_tree",
    "OperatorError",
    "product",
    "product_tree",
    "project",
    "project_tree",
    "push_up",
    "push_up_tree",
    "pushable_nodes",
    "select_constant",
    "select_constant_tree",
    "swap",
    "swap_reference",
    "swap_tree",
    "union",
    "union_all",
]
