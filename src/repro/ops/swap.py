"""The swap operator ``chi_{A,B}`` (Section 3.1, Figure 3(b)/Figure 4).

Swapping exchanges a node ``B`` with its parent ``A``: data grouped
first by ``A`` then ``B`` is regrouped by ``B`` then ``A``.  Children
of ``B`` that do not depend on ``A`` (the forest ``T_B``) move up with
``B``; children that do depend on ``A`` (``T_AB``) stay below ``A``:

    U_a ( <A:a> x E_a x U_b ( <B:b> x F_b x G_ab ) )
        ==>  U_b ( <B:b> x F_b x U_a ( <A:a> x E_a x G_ab ) )

The data algorithm is the paper's Figure 4, verbatim: a min-priority
queue keyed by the next ``B``-value of every ``A``-group merges the
sorted inner unions in overall sorted order, giving the quasilinear
``O(N log N)`` bound of Proposition 2.  ``swap_reference`` is a naive
dictionary-based implementation used for differential testing.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import (
    OperatorError,
    rewrite_at_level,
    sort_pairs,
)


def _swap_parts(
    tree: FTree, a_attr: str, b_attr: str
) -> Tuple[FNode, FNode, List[FNode], List[FNode], List[FNode]]:
    """Resolve A, B, and the partition (E-children, T_B, T_AB)."""
    node_a = tree.node_of(a_attr)
    node_b = tree.node_of(b_attr)
    parent_b = tree.parent_of(node_b)
    if parent_b is None or parent_b.label != node_a.label:
        raise OperatorError(
            f"swap requires {sorted(node_b.label)} to be a child of "
            f"{sorted(node_a.label)}"
        )
    a_others = [c for c in node_a.children if c.label != node_b.label]
    t_b: List[FNode] = []
    t_ab: List[FNode] = []
    for child in node_b.children:
        if tree.node_depends_on_subtree(node_a, child):
            t_ab.append(child)
        else:
            t_b.append(child)
    return node_a, node_b, a_others, t_b, t_ab


def swap_tree(tree: FTree, a_attr: str, b_attr: str) -> FTree:
    """Tree-level swap: ``B`` becomes the parent of ``A``."""
    node_a, node_b, a_others, t_b, t_ab = _swap_parts(
        tree, a_attr, b_attr
    )
    new_a = FNode(node_a.label, a_others + t_ab, node_a.constant)
    new_b = FNode(node_b.label, t_b + [new_a], node_b.constant)
    return tree.replace_node(node_a.label, [new_b])


def swap(
    fr: FactorisedRelation, a_attr: str, b_attr: str
) -> FactorisedRelation:
    """Swap on a factorised relation -- the Figure 4 algorithm.

    Arena-backed relations take the columnar kernel of
    :mod:`repro.ops.arena_kernels` (same heap merge, bulk subtree
    copies, no object materialisation); the object path below is its
    differential oracle.
    """
    tree = fr.tree
    node_a, node_b, a_others, t_b, t_ab = _swap_parts(
        tree, a_attr, b_attr
    )
    new_tree = swap_tree(tree, a_attr, b_attr)
    if fr.encoding == "arena":
        from repro.ops import arena_kernels

        kernel = arena_kernels.kernel_for(tree, "swap", (a_attr, b_attr))
        if fr.is_empty():
            return FactorisedRelation(new_tree, arena=None)
        return FactorisedRelation(new_tree, arena=kernel.run(fr.arena))
    if fr.data is None:
        return FactorisedRelation(new_tree, None)

    new_a = FNode(node_a.label, a_others + t_ab, node_a.constant)
    new_b = FNode(node_b.label, t_b + [new_a], node_b.constant)

    parent = tree.parent_of(node_a)
    old_level = list(parent.children) if parent is not None else list(
        tree.roots
    )
    i_a = [n.label for n in old_level].index(node_a.label)
    j_b = [c.label for c in node_a.children].index(node_b.label)
    b_children = list(node_b.children)
    tb_idx = [
        k for k, c in enumerate(b_children)
        if any(c.label == t.label for t in t_b)
    ]
    tab_idx = [
        k for k, c in enumerate(b_children)
        if any(c.label == t.label for t in t_ab)
    ]

    def rewrite(factors: List[UnionRep]) -> Optional[List[UnionRep]]:
        union_a = factors[i_a]
        # -- Figure 4: regroup by B using a min-priority queue --------
        heap: List[Tuple[object, int]] = []
        positions: List[int] = []
        for idx, (_, prod_a) in enumerate(union_a.entries):
            inner = prod_a.factors[j_b]
            positions.append(0)
            heapq.heappush(heap, (inner.entries[0][0], idx))

        out_entries: List[Tuple[object, ProductRep]] = []
        while heap:
            b_min = heap[0][0]
            f_bmin: Optional[List[UnionRep]] = None
            inner_entries: List[Tuple[object, ProductRep]] = []
            while heap and heap[0][0] == b_min:
                _, idx = heapq.heappop(heap)
                a_value, prod_a = union_a.entries[idx]
                inner = prod_a.factors[j_b]
                _, prod_b = inner.entries[positions[idx]]
                if f_bmin is None:
                    f_bmin = [prod_b.factors[k] for k in tb_idx]
                g_ab = [prod_b.factors[k] for k in tab_idx]
                e_a = [
                    f for k, f in enumerate(prod_a.factors) if k != j_b
                ]
                nodes = a_others + t_ab
                facts = e_a + g_ab
                _, sorted_facts = sort_pairs(nodes, facts)
                inner_entries.append(
                    (a_value, ProductRep(sorted_facts))
                )
                positions[idx] += 1
                if positions[idx] < len(inner.entries):
                    heapq.heappush(
                        heap, (inner.entries[positions[idx]][0], idx)
                    )
            assert f_bmin is not None
            union_a_inner = UnionRep(inner_entries)
            nodes = t_b + [new_a]
            facts = f_bmin + [union_a_inner]
            _, sorted_facts = sort_pairs(nodes, facts)
            out_entries.append((b_min, ProductRep(sorted_facts)))

        union_b = UnionRep(out_entries)
        nodes = [n for k, n in enumerate(old_level) if k != i_a]
        outs = [f for k, f in enumerate(factors) if k != i_a]
        nodes.append(new_b)
        outs.append(union_b)
        _, sorted_factors = sort_pairs(nodes, outs)
        return sorted_factors

    a_anchor = next(iter(node_a.label))
    new_factors = rewrite_at_level(
        tree.roots, fr.data.factors, a_anchor, rewrite
    )
    data = None if new_factors is None else ProductRep(new_factors)
    return FactorisedRelation(new_tree, data)


def swap_reference(
    fr: FactorisedRelation, a_attr: str, b_attr: str
) -> FactorisedRelation:
    """Sort-based swap used to cross-check the Figure 4 algorithm."""
    tree = fr.tree
    node_a, node_b, a_others, t_b, t_ab = _swap_parts(
        tree, a_attr, b_attr
    )
    new_tree = swap_tree(tree, a_attr, b_attr)
    if fr.data is None:
        return FactorisedRelation(new_tree, None)

    new_a = FNode(node_a.label, a_others + t_ab, node_a.constant)
    parent = tree.parent_of(node_a)
    old_level = list(parent.children) if parent is not None else list(
        tree.roots
    )
    i_a = [n.label for n in old_level].index(node_a.label)
    j_b = [c.label for c in node_a.children].index(node_b.label)
    b_children = list(node_b.children)
    tb_idx = [
        k for k, c in enumerate(b_children)
        if any(c.label == t.label for t in t_b)
    ]
    tab_idx = [
        k for k, c in enumerate(b_children)
        if any(c.label == t.label for t in t_ab)
    ]

    def rewrite(factors: List[UnionRep]) -> Optional[List[UnionRep]]:
        union_a = factors[i_a]
        grouped: Dict[object, List[Tuple[object, ProductRep]]] = {}
        f_of_b: Dict[object, List[UnionRep]] = {}
        for a_value, prod_a in union_a.entries:
            e_a = [f for k, f in enumerate(prod_a.factors) if k != j_b]
            for b_value, prod_b in prod_a.factors[j_b].entries:
                f_of_b.setdefault(
                    b_value, [prod_b.factors[k] for k in tb_idx]
                )
                g_ab = [prod_b.factors[k] for k in tab_idx]
                _, sorted_facts = sort_pairs(
                    a_others + t_ab, e_a + g_ab
                )
                grouped.setdefault(b_value, []).append(
                    (a_value, ProductRep(sorted_facts))
                )
        out_entries = []
        for b_value in sorted(grouped):
            _, sorted_facts = sort_pairs(
                t_b + [new_a],
                f_of_b[b_value] + [UnionRep(grouped[b_value])],
            )
            out_entries.append((b_value, ProductRep(sorted_facts)))
        nodes = [n for k, n in enumerate(old_level) if k != i_a]
        outs = [f for k, f in enumerate(factors) if k != i_a]
        _, sorted_factors = sort_pairs(
            nodes + [FNode(node_b.label, t_b + [new_a], node_b.constant)],
            outs + [UnionRep(out_entries)],
        )
        return sorted_factors

    new_factors = rewrite_at_level(
        tree.roots, fr.data.factors, next(iter(node_a.label)), rewrite
    )
    data = None if new_factors is None else ProductRep(new_factors)
    return FactorisedRelation(new_tree, data)
