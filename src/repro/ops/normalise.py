"""Normalisation: the push-up operator and the operator ``eta``.

Section 3.1.  A child ``B`` of ``A`` can be *pushed up* (made a sibling
of ``A``) when ``A`` is not dependent on ``B`` or its descendants; the
transformation factors the subexpression over ``B``'s subtree out of
the union over ``A``:

    U_a <A:a> x (U_b <B:b> x F_b) x E_a
        ==>   (U_b <B:b> x F_b) x (U_a <A:a> x E_a)

An f-tree is *normalised* when no node can be pushed up
(Definition 3).  ``normalise`` repeats push-ups bottom-up until that
fix-point; each push-up strictly reduces the total node depth, so the
loop terminates, and each application can only shrink the
representation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import (
    OperatorError,
    rewrite_at_level,
    sort_pairs,
)


def pushable_nodes(tree: FTree) -> List[FNode]:
    """All nodes that can currently be pushed above their parent."""
    return [
        node
        for node in tree.iter_nodes()
        if tree.parent_of(node) is not None and tree.pushable(node)
    ]


def push_up_tree(tree: FTree, b_attr: str) -> FTree:
    """Tree-level push-up ``psi_B`` of the node holding ``b_attr``."""
    node_b = tree.node_of(b_attr)
    node_a = tree.parent_of(node_b)
    if node_a is None:
        raise OperatorError(f"{b_attr!r} labels a root; nothing to push")
    if tree.node_depends_on_subtree(node_a, node_b):
        raise OperatorError(
            f"cannot push {sorted(node_b.label)} above "
            f"{sorted(node_a.label)}: they are dependent"
        )
    new_a = node_a.with_children(
        [c for c in node_a.children if c.label != node_b.label]
    )
    return tree.replace_node(node_a.label, [new_a, node_b])


def push_up(fr: FactorisedRelation, b_attr: str) -> FactorisedRelation:
    """Push-up on a factorised relation (tree and data together).

    Arena-backed relations run the columnar kernel of
    :mod:`repro.ops.arena_kernels`; this object path is its oracle.
    """
    tree = fr.tree
    node_b = tree.node_of(b_attr)
    node_a = tree.parent_of(node_b)
    new_tree = push_up_tree(tree, b_attr)
    if fr.encoding == "arena":
        from repro.ops import arena_kernels

        kernel = arena_kernels.kernel_for(tree, "push", (b_attr,))
        if fr.is_empty():
            return FactorisedRelation(new_tree, arena=None)
        return FactorisedRelation(new_tree, arena=kernel.run(fr.arena))
    if fr.data is None:
        return FactorisedRelation(new_tree, None)
    assert node_a is not None

    a_anchor = next(iter(node_a.label))
    j_b = [c.label for c in node_a.children].index(node_b.label)
    other_children = [
        c for c in node_a.children if c.label != node_b.label
    ]
    new_a = node_a.with_children(other_children)

    # The rewriter needs the old level's forest to align factors with
    # nodes; that forest is wherever node_a sits in the old tree.
    parent = tree.parent_of(node_a)
    old_level = list(parent.children) if parent is not None else list(
        tree.roots
    )

    def rewrite(factors: List[UnionRep]) -> Optional[List[UnionRep]]:
        i_a = [n.label for n in old_level].index(node_a.label)
        union_a = factors[i_a]
        # All copies of B's union are equal by independence; take the
        # first (the union is never empty inside valid data).
        union_b = union_a.entries[0][1].factors[j_b]
        reduced = UnionRep(
            (
                value,
                ProductRep(
                    child.factors[:j_b] + child.factors[j_b + 1 :]
                ),
            )
            for value, child in union_a.entries
        )
        nodes = [n for k, n in enumerate(old_level) if k != i_a]
        outs = [f for k, f in enumerate(factors) if k != i_a]
        nodes += [new_a, node_b]
        outs += [reduced, union_b]
        _, sorted_factors = sort_pairs(nodes, outs)
        return sorted_factors

    new_factors = rewrite_at_level(
        tree.roots, fr.data.factors, a_anchor, rewrite
    )
    data = None if new_factors is None else ProductRep(new_factors)
    return FactorisedRelation(new_tree, data)


def normalise_tree(tree: FTree) -> Tuple[FTree, List[str]]:
    """Normalise an f-tree; returns the tree and the push-up trace.

    The trace records, per push-up, an attribute identifying the pushed
    node -- enough to replay the same transformation on data.
    """
    trace: List[str] = []
    current = tree
    while True:
        candidates = pushable_nodes(current)
        if not candidates:
            return current, trace
        # Deepest-first keeps the procedure aligned with the paper's
        # bottom-up marking scheme.
        node = max(candidates, key=lambda n: len(current.ancestors(n)))
        attr = next(iter(node.label))
        trace.append(attr)
        current = push_up_tree(current, attr)


def normalise(fr: FactorisedRelation) -> FactorisedRelation:
    """The normalisation operator ``eta`` on a factorised relation."""
    if fr.encoding == "arena":
        from repro.ops import arena_kernels

        chain = arena_kernels.kernel_for(fr.tree, "normalise")
        if not chain.kernels:
            return fr
        if fr.is_empty():
            return FactorisedRelation(chain.out_tree, arena=None)
        return FactorisedRelation(
            chain.out_tree, arena=chain.run(fr.arena)
        )
    current = fr
    while True:
        candidates = pushable_nodes(current.tree)
        if not candidates:
            return current
        node = max(
            candidates, key=lambda n: len(current.tree.ancestors(n))
        )
        current = push_up(current, next(iter(node.label)))
