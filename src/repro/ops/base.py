"""Shared machinery of the f-plan operators.

Every operator of Section 3 transforms an f-tree *and* every occurrence
of the affected fragment inside the f-representation.  Tree and data
are kept positionally aligned (factor ``i`` of a product belongs to
tree ``i`` of the forest, in canonical label order), so operators

1. compute the new local forest (a list of nodes) together with the
   matching factor list,
2. sort both with :func:`sort_pairs` so the canonical order of
   :class:`~repro.core.ftree.FNode`/:class:`~repro.core.ftree.FTree`
   construction is mirrored exactly in the data, and
3. use :func:`rewrite_at_level` to locate and rewrite every occurrence
   of the level at which the anchor node sits, propagating emptiness
   upward (an entry whose children forest became empty is dropped; a
   union left with no entries empties its own level, recursively --
   this is the eager pruning that keeps representations free of empty
   unions).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.ftree import FNode, label_key
from repro.core.frep import ProductRep, UnionRep


class OperatorError(ValueError):
    """Raised when an operator is applied to an illegal configuration."""


#: A level rewriter: receives the factor list of one occurrence of the
#: anchor's level and returns the new factor list, or ``None`` when the
#: level became empty.
LevelFn = Callable[[List[UnionRep]], Optional[List[UnionRep]]]


def sort_pairs(
    nodes: Sequence[FNode], factors: Sequence[UnionRep]
) -> Tuple[List[FNode], List[UnionRep]]:
    """Sort (node, factor) pairs by the canonical node order."""
    pairs = sorted(
        zip(nodes, factors), key=lambda pair: label_key(pair[0].label)
    )
    return [n for n, _ in pairs], [f for _, f in pairs]


def level_index(forest: Sequence[FNode], attribute: str) -> Optional[int]:
    """Index of the tree whose *root* holds ``attribute``, if any."""
    for i, node in enumerate(forest):
        if attribute in node.label:
            return i
    return None


def subtree_index(forest: Sequence[FNode], attribute: str) -> int:
    """Index of the tree whose subtree contains ``attribute``."""
    for i, node in enumerate(forest):
        if attribute in node.subtree_attributes():
            return i
    raise OperatorError(f"attribute {attribute!r} not under this forest")


def rewrite_at_level(
    forest: Sequence[FNode],
    factors: List[UnionRep],
    anchor: str,
    fn: LevelFn,
) -> Optional[List[UnionRep]]:
    """Apply ``fn`` at every occurrence of the level holding ``anchor``.

    ``forest``/``factors`` describe the *input* structure.  When the
    anchor labels one of the forest's roots, ``fn`` rewrites this
    occurrence directly.  Otherwise the rewrite recurses into the tree
    containing the anchor; entries whose rewritten children forest is
    empty are dropped, and ``None`` is returned if the union (and hence
    this whole level) becomes empty.
    """
    if level_index(forest, anchor) is not None:
        return fn(list(factors))
    idx = subtree_index(forest, anchor)
    node, union = forest[idx], factors[idx]
    new_entries: List[Tuple[object, ProductRep]] = []
    for value, child in union.entries:
        rewritten = rewrite_at_level(
            node.children, child.factors, anchor, fn
        )
        if rewritten is not None:
            new_entries.append((value, ProductRep(rewritten)))
    if not new_entries:
        return None
    out = list(factors)
    out[idx] = UnionRep(new_entries)
    return out


def factor_of(
    forest: Sequence[FNode],
    factors: Sequence[UnionRep],
    node: FNode,
) -> UnionRep:
    """The factor aligned with ``node`` at this level."""
    for candidate, factor in zip(forest, factors):
        if candidate.label == node.label:
            return factor
    raise OperatorError(f"node {node!r} not at this level")
