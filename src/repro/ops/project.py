"""The projection operator ``pi_A`` (Section 3.4).

Projection proceeds in three phases, following the paper:

1. **Label reduction.**  Nodes that keep at least one attribute simply
   shrink their label; the projected-away attributes are substituted in
   every dependency edge by a kept representative of the same class
   (classes share values, so dependence is preserved exactly).
2. **Node elimination.**  Nodes whose attributes are *all* projected
   away are first swapped down until they become leaves (the paper:
   "we therefore swap nodes such that those with all attributes marked
   become leaves"), then removed.  Removing a leaf drops its union
   factor from every occurrence -- set semantics make this sound, since
   sibling factors are untouched and parent entries stay distinct.
   Removal merges all dependency edges meeting the node into one
   *phantom edge* over their remaining attributes, so transitive
   dependence survives (the A - B - C example of Section 3.4).
3. **Normalisation**, since the structural changes may enable pushing
   subtrees up.

Arena-backed inputs take a columnar fast path when the projection
removes *whole subtrees* and keeps every remaining label intact (the
common "root prefix" shape): the surviving columns transfer verbatim
(:func:`repro.core.arena.drop_subtrees`) and no swaps are needed.  The
fast path skips the final normalisation pass -- a pure representation
choice; the denoted relation is identical.  Projections needing swaps
or leaf drops stay columnar too (the swap and normalise kernels of
:mod:`repro.ops.arena_kernels`, the leaf case of ``drop_subtrees``);
only phase-1 label reduction falls back to the object path via the
lazy ``data`` adapter.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence

from repro.core import arena as arena_mod
from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep
from repro.core.ftree import FNode, FTree
from repro.ops.base import OperatorError, subtree_index
from repro.ops.normalise import normalise, normalise_tree
from repro.ops.swap import swap


def _reduce_labels(
    fr: FactorisedRelation, keep: AbstractSet[str]
) -> FactorisedRelation:
    """Phase 1: shrink partially-kept labels; rewrite edges.

    Shrinking a label changes the node's canonical sort key, so tree
    and data are rebuilt in lockstep, re-sorting siblings (and their
    aligned factors) by the new labels at every level.
    """
    tree = fr.tree
    substitution = {}
    for node in tree.iter_nodes():
        dropped = node.label - keep
        kept = node.label & keep
        if dropped and kept:
            representative = min(kept)
            for attr in dropped:
                substitution[attr] = representative
    if not substitution:
        return fr

    def node_transform(node: FNode) -> FNode:
        kept = node.label & keep
        label = kept if kept else node.label
        return FNode(
            label,
            [node_transform(child) for child in node.children],
            node.constant,
        )

    def data_transform(
        nodes: Sequence[FNode], product: ProductRep
    ) -> List[UnionRep]:
        """Factors aligned with the re-sorted transformed forest."""
        pairs = []
        for node, union in zip(nodes, product.factors):
            new_union = UnionRep(
                (
                    value,
                    ProductRep(
                        data_transform(node.children, child)
                    ),
                )
                for value, child in union.entries
            )
            pairs.append((node_transform(node), new_union))
        pairs.sort(key=lambda pair: tuple(sorted(pair[0].label)))
        return [factor for _, factor in pairs]

    new_edges = tree.edges.__class__(
        frozenset(substitution.get(attr, attr) for attr in edge)
        for edge in tree.edges
    )
    new_tree = FTree(
        [node_transform(root) for root in tree.roots], new_edges
    )
    if fr.is_empty():
        if fr.encoding == "arena":
            return FactorisedRelation(new_tree, arena=None)
        return FactorisedRelation(new_tree, None)
    if fr.encoding == "arena":
        # Shrinking labels never touches the data: every column binds
        # unchanged to the relabelled node, with child slots re-sorted
        # to the new canonical sibling order.  (Shrunk labels stay
        # pairwise disjoint, so the rebinding is one-to-one.)
        arena = fr.arena
        sskel = arena.skel
        dskel = arena_mod._skeleton_of(new_tree)

        def shrunk(label):
            kept_attrs = label & keep
            return frozenset(kept_attrs) if kept_attrs else label

        n = len(dskel)
        values = [None] * n
        child_lo = [None] * n
        child_hi = [None] * n
        for si in range(len(sskel)):
            di = dskel.index[shrunk(sskel.labels[si])]
            values[di] = arena.values[si]
            src_slot = {
                shrunk(sskel.labels[k]): j
                for j, k in enumerate(sskel.children[si])
            }
            child_lo[di] = [
                arena.child_lo[si][src_slot[dskel.labels[dk]]]
                for dk in dskel.children[di]
            ]
            child_hi[di] = [
                arena.child_hi[si][src_slot[dskel.labels[dk]]]
                for dk in dskel.children[di]
            ]
        return FactorisedRelation(
            new_tree,
            arena=arena_mod.ArenaRep(
                dskel, values, child_lo, child_hi, arena.pool
            ),
        )
    return FactorisedRelation(
        new_tree, ProductRep(data_transform(tree.roots, fr.data))
    )


def _drop_leaf(
    fr: FactorisedRelation, node: FNode
) -> FactorisedRelation:
    """Phase 2b: remove a fully-marked leaf node (tree and data)."""
    tree = fr.tree
    new_edges = tree.edges.merge_edges_touching(node.label)
    new_tree = tree.replace_node(node.label, []).with_edges(new_edges)
    if fr.encoding == "arena":
        if fr.is_empty():
            return FactorisedRelation(new_tree, arena=None)
        # A leaf is a one-node subtree: the general subtree-drop
        # kernel removes its column (and its slot in the parent).
        arena = fr.arena
        return FactorisedRelation(
            new_tree,
            arena=arena_mod.drop_subtrees(
                arena, new_tree, [arena.skel.index[node.label]]
            ),
        )
    if fr.data is None:
        return FactorisedRelation(new_tree, None)

    anchor = next(iter(node.label))

    def drop(
        forest: Sequence[FNode], factors: Sequence[UnionRep]
    ) -> List[UnionRep]:
        labels = [n.label for n in forest]
        if node.label in labels:
            idx = labels.index(node.label)
            return [f for k, f in enumerate(factors) if k != idx]
        idx = subtree_index(forest, anchor)
        inner, union = forest[idx], factors[idx]
        out = list(factors)
        out[idx] = UnionRep(
            (value, ProductRep(drop(inner.children, child.factors)))
            for value, child in union.entries
        )
        return out

    return FactorisedRelation(
        new_tree, ProductRep(drop(tree.roots, fr.data.factors))
    )


def project_tree(tree: FTree, attributes: Sequence[str]) -> FTree:
    """Tree-level projection (shape of the result's f-tree)."""
    keep = frozenset(attributes)
    placeholder = FactorisedRelation(tree, None)
    return project(placeholder, attributes).tree


def _arena_subtree_drop(
    fr: FactorisedRelation, keep: AbstractSet[str]
) -> Optional[FactorisedRelation]:
    """The arena fast path: drop whole subtrees, keep columns verbatim.

    Applies only when every node label is fully kept or fully dropped
    and no kept node sits below a dropped one; returns ``None``
    otherwise (the caller falls back to the object path).
    """
    tree = fr.tree
    dropped_roots: List[FNode] = []
    dropped_all: List[FNode] = []
    for node in tree.iter_nodes():
        kept_attrs = node.label & keep
        if kept_attrs and node.label - keep:
            return None  # partial label: needs phase-1 reduction
        if not kept_attrs:
            if node.subtree_attributes() & keep:
                return None  # kept node below a dropped one: needs swaps
            parent = tree.parent_of(node)
            dropped_all.append(node)
            if parent is None or parent.label & keep:
                dropped_roots.append(node)
    if not dropped_all:
        return fr
    arena = fr.arena
    if arena is None:
        return None  # empty relations keep the object tree path
    # Edges: the same merges the object path performs when it drops
    # the subtree leaf by leaf, deepest first.
    edges = tree.edges
    for node in sorted(
        dropped_all,
        key=lambda n: len(tree.ancestors(n)),
        reverse=True,
    ):
        edges = edges.merge_edges_touching(node.label)
    new_tree = tree
    for node in dropped_roots:
        new_tree = new_tree.replace_node(node.label, [])
    new_tree = new_tree.with_edges(edges)
    skel = arena.skel
    dropped_ids = [skel.index[node.label] for node in dropped_roots]
    return FactorisedRelation(
        new_tree,
        arena=arena_mod.drop_subtrees(arena, new_tree, dropped_ids),
    )


def project(
    fr: FactorisedRelation, attributes: Sequence[str]
) -> FactorisedRelation:
    """Project a factorised relation onto ``attributes``."""
    keep = frozenset(attributes)
    unknown = keep - fr.tree.attributes()
    if unknown:
        raise OperatorError(
            f"cannot project onto unknown attributes {sorted(unknown)}"
        )
    if fr.encoding == "arena" and not fr.is_empty():
        fast = _arena_subtree_drop(fr, keep)
        if fast is not None:
            return fast
    current = _reduce_labels(fr, keep)

    # Phase 2: eliminate fully-marked nodes, bottom-most first.
    while True:
        marked = [
            node
            for node in current.tree.iter_nodes()
            if not (node.label & keep)
        ]
        if not marked:
            break
        # Prefer a marked node with no marked node below it whose
        # subtree is smallest -- fewer swaps to reach a leaf.
        def depth(node: FNode) -> int:
            return len(current.tree.ancestors(node))

        candidates = [
            node
            for node in marked
            if not any(
                other.label != node.label
                and other.label <= node.subtree_attributes()
                for other in marked
            )
        ]
        target = min(
            candidates or marked,
            key=lambda n: len(n.subtree_attributes()),
        )
        if target.children:
            # Swap the marked node below its first child (swap
            # handles empty and arena-backed relations itself).
            current = swap(
                current,
                next(iter(target.label)),
                next(iter(target.children[0].label)),
            )
        else:
            current = _drop_leaf(current, target)

    # Phase 3: normalise.
    if current.is_empty():
        tree, _ = normalise_tree(current.tree)
        if current.encoding == "arena":
            return FactorisedRelation(tree, arena=None)
        return FactorisedRelation(tree, None)
    return normalise(current)
