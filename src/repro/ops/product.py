"""The Cartesian product operator ``x`` (Section 3.2).

The product of two f-representations over disjoint attribute sets is
just their concatenation: the result f-tree is the forest of the two
input f-trees, the result data the concatenation of the two factor
lists (re-sorted into canonical order), in time linear in the inputs.
All constraints -- value order, path constraint, normalisation -- are
trivially preserved.
"""

from __future__ import annotations

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep
from repro.core.ftree import FTree
from repro.ops.base import OperatorError, sort_pairs
from repro.query.hypergraph import Hypergraph


def product_tree(left: FTree, right: FTree) -> FTree:
    """Forest union of two f-trees over disjoint attributes."""
    overlap = left.attributes() & right.attributes()
    if overlap:
        raise OperatorError(
            f"product inputs share attributes {sorted(overlap)}"
        )
    edges = Hypergraph(list(left.edges) + list(right.edges))
    return FTree(list(left.roots) + list(right.roots), edges)


def product(
    left: FactorisedRelation, right: FactorisedRelation
) -> FactorisedRelation:
    """Cartesian product of two factorised relations.

    Arena-backed inputs combine by column adoption (zero copies under
    a shared pool) in :func:`repro.ops.arena_kernels.product_arena`.
    """
    tree = product_tree(left.tree, right.tree)
    arena_side = left.encoding == "arena" or right.encoding == "arena"
    if left.is_empty() or right.is_empty():
        if arena_side:
            return FactorisedRelation(tree, arena=None)
        return FactorisedRelation(tree, None)
    if arena_side:
        from repro.ops import arena_kernels

        return FactorisedRelation(
            tree,
            arena=arena_kernels.product_arena(
                tree, left.arena, right.arena
            ),
        )
    if left.data is None or right.data is None:
        return FactorisedRelation(tree, None)
    nodes = list(left.tree.roots) + list(right.tree.roots)
    factors = list(left.data.factors) + list(right.data.factors)
    _, sorted_factors = sort_pairs(nodes, factors)
    return FactorisedRelation(tree, ProductRep(sorted_factors))
