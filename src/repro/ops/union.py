"""Union of f-representations over a shared f-tree.

The sharded execution path (:mod:`repro.exec`) evaluates one join
query per shard -- each shard database holds a disjoint horizontal
partition of a single *fan-out* relation plus full copies of the
others -- and recombines the per-shard factorised results here.

The recombination is the natural structural union: two
:class:`~repro.core.frep.UnionRep` factors merge by value (sorted
two-pointer merge, the idiom of :mod:`repro.ops.merge`), and where
both sides carry the same value the child :class:`~repro.core.frep.
ProductRep` forests union factor-wise.

Factor-wise union of products is **not** sound for arbitrary inputs:
``(B1 x C1) u (B2 x C2)`` only equals ``(B1 u B2) x (C1 u C2)`` when
the branches are compatible.  It *is* exact for per-shard join
results, by the path constraint: the fan-out relation's attribute
classes lie on a single root-to-leaf path of the f-tree, so at every
branching point at most one child subtree depends on the partitioned
relation -- conditioned on the (shared) ancestor values, every other
subtree holds identical content on all shards, and the union
distributes over the product.  The operator therefore requires union
*before* projection (projection may destroy the single-path property);
:class:`~repro.exec.ParallelExecutor` projects after recombining.

The cross-engine differential harness (``tests/test_differential.py``)
checks the sharded path against the flat and SQLite engines over the
random SPJ space, per the PR-1 policy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.factorised import FactorisedRelation
from repro.core.frep import ProductRep, UnionRep, Value
from repro.ops.base import OperatorError


def _union_products(left: ProductRep, right: ProductRep) -> ProductRep:
    """Factor-wise union of two aligned products (see module docs)."""
    if len(left.factors) != len(right.factors):
        raise OperatorError(
            f"cannot union products of arity {len(left.factors)} "
            f"and {len(right.factors)}"
        )
    return ProductRep(
        _union_unions(a, b)
        for a, b in zip(left.factors, right.factors)
    )


def _union_unions(left: UnionRep, right: UnionRep) -> UnionRep:
    """Sorted merge of two unions; common values recurse."""
    out: List[Tuple[Value, ProductRep]] = []
    i = j = 0
    a, b = left.entries, right.entries
    while i < len(a) and j < len(b):
        va, vb = a[i][0], b[j][0]
        if va < vb:
            out.append(a[i])
            i += 1
        elif vb < va:
            out.append(b[j])
            j += 1
        else:
            out.append((va, _union_products(a[i][1], b[j][1])))
            i += 1
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return UnionRep(out)


def union(
    left: FactorisedRelation, right: FactorisedRelation
) -> FactorisedRelation:
    """Union two factorised relations over the *same* f-tree.

    Sub-representations appearing on one side only are shared, not
    copied (operators treat representations as immutable).  Exactness
    requires branch-compatible inputs -- see the module docstring.
    """
    if left.tree.key() != right.tree.key():
        raise OperatorError(
            "union requires identical f-trees: "
            f"{left.tree.pretty_inline()} vs {right.tree.pretty_inline()}"
        )
    if left.is_empty():
        return right
    if right.is_empty():
        return left
    if left.encoding == "arena" and right.encoding == "arena":
        from repro.ops import arena_kernels

        return FactorisedRelation(
            left.tree,
            arena=arena_kernels.union_arena(left.arena, right.arena),
        )
    return FactorisedRelation(
        left.tree, _union_products(left.data, right.data)
    )


def union_all(
    parts: Sequence[FactorisedRelation],
) -> Optional[FactorisedRelation]:
    """Union many factorised relations; ``None`` for an empty list."""
    result: Optional[FactorisedRelation] = None
    for part in parts:
        result = part if result is None else union(result, part)
    return result
