"""The paper's running example: the grocery retailer of Figure 1.

Attribute names are globally unique (the convention of this library),
so the join attributes carry suffixes: ``Orders.item`` is ``o_item``,
``Store.item`` is ``s_item``, and so on.  The queries ``Q1`` and ``Q2``
and the f-trees ``T1``..``T4`` of Figure 2 are provided, making the
introduction's worked examples executable (see also
``examples/quickstart.py`` and the integration tests).
"""

from __future__ import annotations

from repro.core.ftree import FTree
from repro.query.query import Query
from repro.relational.database import Database


def grocery_database() -> Database:
    """Figure 1: Orders, Store, Disp, Produce, Serve."""
    db = Database()
    db.add_rows(
        "Orders",
        ("oid", "o_item"),
        [
            (1, "Milk"),
            (1, "Cheese"),
            (2, "Melon"),
            (3, "Cheese"),
            (3, "Melon"),
        ],
    )
    db.add_rows(
        "Store",
        ("s_location", "s_item"),
        [
            ("Istanbul", "Milk"),
            ("Istanbul", "Cheese"),
            ("Istanbul", "Melon"),
            ("Izmir", "Milk"),
            ("Antalya", "Milk"),
            ("Antalya", "Cheese"),
        ],
    )
    db.add_rows(
        "Disp",
        ("dispatcher", "d_location"),
        [
            ("Adnan", "Istanbul"),
            ("Adnan", "Izmir"),
            ("Yasemin", "Istanbul"),
            ("Volkan", "Antalya"),
        ],
    )
    db.add_rows(
        "Produce",
        ("p_supplier", "p_item"),
        [
            ("Guney", "Milk"),
            ("Guney", "Cheese"),
            ("Dikici", "Milk"),
            ("Byzantium", "Melon"),
        ],
    )
    db.add_rows(
        "Serve",
        ("v_supplier", "v_location"),
        [
            ("Guney", "Antalya"),
            ("Dikici", "Istanbul"),
            ("Dikici", "Izmir"),
            ("Dikici", "Antalya"),
            ("Byzantium", "Istanbul"),
        ],
    )
    return db


def query_q1() -> Query:
    """Q1 = Orders JOIN_item Store JOIN_location Disp."""
    return Query.make(
        ["Orders", "Store", "Disp"],
        equalities=[
            ("o_item", "s_item"),
            ("s_location", "d_location"),
        ],
    )


def query_q2() -> Query:
    """Q2 = Produce JOIN_supplier Serve."""
    return Query.make(
        ["Produce", "Serve"],
        equalities=[("p_supplier", "v_supplier")],
    )


_Q1_EDGES = [
    {"oid", "o_item"},
    {"s_location", "s_item"},
    {"dispatcher", "d_location"},
]

_Q2_EDGES = [
    {"p_supplier", "p_item"},
    {"v_supplier", "v_location"},
]


def tree_t1() -> FTree:
    """T1: item on top; orders and (locations with dispatchers) below."""
    return FTree.from_nested(
        [
            (
                ("o_item", "s_item"),
                [
                    ("oid", []),
                    (("s_location", "d_location"), [("dispatcher", [])]),
                ],
            )
        ],
        edges=_Q1_EDGES,
    )


def tree_t2() -> FTree:
    """T2: locations on top; items/orders and dispatchers below."""
    return FTree.from_nested(
        [
            (
                ("s_location", "d_location"),
                [
                    (("o_item", "s_item"), [("oid", [])]),
                    ("dispatcher", []),
                ],
            )
        ],
        edges=_Q1_EDGES,
    )


def tree_t3() -> FTree:
    """T3: suppliers on top, items and locations independent below."""
    return FTree.from_nested(
        [
            (
                ("p_supplier", "v_supplier"),
                [("p_item", []), ("v_location", [])],
            )
        ],
        edges=_Q2_EDGES,
    )


def tree_t4() -> FTree:
    """T4: items on top, suppliers with their locations below."""
    return FTree.from_nested(
        [
            (
                "p_item",
                [(("p_supplier", "v_supplier"), [("v_location", [])])],
            )
        ],
        edges=_Q2_EDGES,
    )
