"""Workload generators for the experiments of Section 5."""

from repro.workloads.generator import (
    attribute_name,
    combinatorial_database,
    permuted_variant,
    random_database,
    random_equalities,
    random_followup_equalities,
    random_query,
    random_spj_queries,
    random_spj_query,
    repeated_query_workload,
    split_attributes,
    zipf_values,
)
from repro.workloads.grocery import (
    grocery_database,
    query_q1,
    query_q2,
    tree_t1,
    tree_t2,
    tree_t3,
    tree_t4,
)

__all__ = [
    "attribute_name",
    "combinatorial_database",
    "grocery_database",
    "permuted_variant",
    "query_q1",
    "query_q2",
    "random_database",
    "random_equalities",
    "random_followup_equalities",
    "random_query",
    "random_spj_queries",
    "random_spj_query",
    "repeated_query_workload",
    "split_attributes",
    "tree_t1",
    "tree_t2",
    "tree_t3",
    "tree_t4",
    "zipf_values",
]
