"""Synthetic workload generators reproducing Section 5's design.

"We generate R relations and distribute uniformly A attributes over
them.  Each relation has a given number of tuples, each value is a
natural number generated from 1 to M using uniform or Zipf
distribution.  The queries are equi-joins over all of these relations.
Their selections are conjunctions of K non-redundant equalities."

All generators take explicit seeds, so every benchmark run is
reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.ftree import FTree
from repro.query.equivalence import UnionFind
from repro.query.query import Query
from repro.relational.database import Database


def attribute_name(index: int) -> str:
    """Canonical attribute names: a00, a01, ..."""
    return f"a{index:02d}"


def split_attributes(total: int, relations: int) -> List[List[str]]:
    """Distribute ``total`` attribute names uniformly over relations."""
    if relations <= 0 or total < relations:
        raise ValueError(
            f"cannot spread {total} attributes over {relations} relations"
        )
    names = [attribute_name(i) for i in range(total)]
    base, extra = divmod(total, relations)
    out: List[List[str]] = []
    start = 0
    for r in range(relations):
        width = base + (1 if r < extra else 0)
        out.append(names[start : start + width])
        start += width
    return out


def zipf_values(
    rng: random.Random, count: int, domain: int, exponent: float = 1.0
) -> List[int]:
    """Bounded Zipf samples over [1, domain] with the given exponent."""
    weights = [1.0 / (k**exponent) for k in range(1, domain + 1)]
    return rng.choices(range(1, domain + 1), weights=weights, k=count)


def random_database(
    relations: int,
    attributes: int,
    tuples: int,
    domain: int = 100,
    distribution: str = "uniform",
    seed: int = 0,
    arities: Optional[Sequence[int]] = None,
    sizes: Optional[Sequence[int]] = None,
) -> Database:
    """A random database in the style of Experiments 1-4.

    ``arities``/``sizes`` override the uniform attribute spread and the
    per-relation tuple count (used by the combinatorial dataset of
    Figure 7, right column).
    """
    if distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown distribution {distribution!r}")
    rng = random.Random(seed)
    if arities is None:
        schemas = split_attributes(attributes, relations)
    else:
        if sum(arities) != attributes:
            raise ValueError("arities must sum to the attribute count")
        names = [attribute_name(i) for i in range(attributes)]
        schemas, start = [], 0
        for width in arities:
            schemas.append(names[start : start + width])
            start += width
    db = Database()
    for r, attrs in enumerate(schemas):
        n = tuples if sizes is None else sizes[r]
        width = len(attrs)
        if distribution == "uniform":
            flat = [rng.randint(1, domain) for _ in range(n * width)]
        else:
            flat = zipf_values(rng, n * width, domain)
        rows = [
            tuple(flat[i * width : (i + 1) * width]) for i in range(n)
        ]
        db.add_rows(f"R{r}", attrs, rows)
    return db


def random_equalities(
    db: Database, count: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """``count`` non-redundant equalities over the database attributes.

    Each equality merges two previously distinct attribute classes
    (the paper's non-redundancy requirement); raises ``ValueError``
    when more equalities are requested than classes can be merged.
    """
    attrs = db.attributes()
    if count > len(attrs) - 1:
        raise ValueError(
            f"at most {len(attrs) - 1} non-redundant equalities exist"
        )
    rng = random.Random(seed)
    uf = UnionFind(attrs)
    out: List[Tuple[str, str]] = []
    guard = 0
    while len(out) < count:
        left, right = rng.sample(attrs, 2)
        if uf.union(left, right):
            out.append((left, right))
        guard += 1
        if guard > 100_000:
            raise RuntimeError("equality generation did not converge")
    return out


def random_query(db: Database, equalities: int, seed: int = 0) -> Query:
    """An equi-join over all relations with K non-redundant equalities."""
    return Query.make(
        db.names, equalities=random_equalities(db, equalities, seed)
    )


def random_spj_query(
    db: Database,
    seed: int = 0,
    max_relations: Optional[int] = None,
    max_equalities: int = 3,
    max_constants: int = 2,
    projection_probability: float = 0.5,
) -> Query:
    """A random full SPJ query over a subset of the database.

    Unlike :func:`random_query` (the paper's equi-join over *all*
    relations), this draws from the whole SPJ space served by every
    engine: a random relation subset, non-redundant equalities over its
    attributes, constant comparisons drawn from the *actual* attribute
    values (so selections are rarely trivially empty), and an optional
    projection.  Used by the cross-engine differential harness.
    """
    rng = random.Random(seed)
    names = db.names
    cap = len(names) if max_relations is None else min(
        max_relations, len(names)
    )
    relations = rng.sample(names, rng.randint(1, cap))
    attrs = [a for name in relations for a in db[name].attributes]

    equalities: List[Tuple[str, str]] = []
    eq_cap = min(max_equalities, len(attrs) - 1)
    if eq_cap > 0:
        uf = UnionFind(attrs)
        wanted = rng.randint(0, eq_cap)
        tries = 0
        while len(equalities) < wanted and tries < 1000:
            left, right = rng.sample(attrs, 2)
            if uf.union(left, right):
                equalities.append((left, right))
            tries += 1

    constants: List[Tuple[str, str, object]] = []
    for _ in range(rng.randint(0, max_constants)):
        attr = rng.choice(attrs)
        values = db.relation_of(attr).values(attr)
        constants.append(
            (
                attr,
                rng.choice(("=", "!=", "<", "<=", ">", ">=")),
                rng.choice(values) if values else 1,
            )
        )

    projection: Optional[List[str]] = None
    if rng.random() < projection_probability:
        projection = rng.sample(attrs, rng.randint(1, len(attrs)))
    return Query.make(
        relations,
        equalities=equalities,
        constants=constants,
        projection=projection,
    )


def random_spj_queries(
    db: Database, count: int, seed: int = 0, **kwargs
) -> List[Query]:
    """``count`` independent :func:`random_spj_query` draws."""
    rng = random.Random(seed)
    return [
        random_spj_query(db, seed=rng.randrange(2**31), **kwargs)
        for _ in range(count)
    ]


def permuted_variant(query: Query, seed: int = 0) -> Query:
    """A semantically identical reformulation of ``query``.

    Shuffles relation order, equality order and direction, constant
    order and projection order -- every rewrite that
    :meth:`~repro.query.query.Query.canonical_key` normalises away --
    so repeated-query workloads exercise the plan cache with queries
    that are equal in meaning but not in syntax.
    """
    rng = random.Random(seed)
    relations = list(query.relations)
    rng.shuffle(relations)
    equalities = [
        (eq.right, eq.left) if rng.random() < 0.5 else (eq.left, eq.right)
        for eq in query.equalities
    ]
    rng.shuffle(equalities)
    constants = [
        (c.attribute, c.op, c.value) for c in query.constants
    ]
    rng.shuffle(constants)
    projection = None
    if query.projection is not None:
        projection = list(query.projection)
        rng.shuffle(projection)
    return Query.make(
        relations,
        equalities=equalities,
        constants=constants,
        projection=projection,
    )


def repeated_query_workload(
    db: Database,
    unique: int = 8,
    total: int = 40,
    equalities: int = 2,
    seed: int = 0,
) -> List[Query]:
    """A workload of ``total`` queries drawn from ``unique`` templates.

    Models repeated traffic against one database: each template is a
    paper-style equi-join (distinct canonical keys guaranteed), and
    every repeat is a shuffled :func:`permuted_variant`, so a plan
    cache keyed canonically sees ``unique`` misses and
    ``total - unique`` hits.
    """
    if unique > total:
        raise ValueError("unique templates cannot exceed the total")
    rng = random.Random(seed)
    base: List[Query] = []
    seen = set()
    guard = 0
    while len(base) < unique:
        query = random_query(db, equalities, seed=rng.randrange(2**31))
        key = query.canonical_key()
        if key not in seen:
            seen.add(key)
            base.append(query)
        guard += 1
        if guard > 1000:
            raise RuntimeError(
                f"could not draw {unique} distinct query templates"
            )
    out = list(base)
    while len(out) < total:
        template = rng.choice(base)
        out.append(permuted_variant(template, seed=rng.randrange(2**31)))
    rng.shuffle(out)
    return out


def combinatorial_database(
    distribution: str = "uniform", seed: int = 0
) -> Database:
    """The Figure 7 (right column) dataset.

    Four relations over A = 10 attributes: two binary relations with
    8^2 = 64 tuples and two ternary relations with 8^3 = 512 tuples,
    values drawn from [1, 20].
    """
    return random_database(
        relations=4,
        attributes=10,
        tuples=0,  # overridden by sizes
        domain=20,
        distribution=distribution,
        seed=seed,
        arities=[2, 2, 3, 3],
        sizes=[64, 64, 512, 512],
    )


def random_followup_equalities(
    tree: FTree, count: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """``count`` equalities over the classes of a result f-tree.

    Experiments 2 and 4: "the selections are conjunctions of L random
    (not already implied) equalities on attribute equivalence classes
    of T."  Each returned pair joins two distinct classes, and the
    conjunction is non-redundant.
    """
    labels = [node.label for node in tree.iter_nodes()]
    if count > len(labels) - 1:
        raise ValueError(
            f"at most {len(labels) - 1} class-merging equalities exist"
        )
    rng = random.Random(seed)
    uf = UnionFind(range(len(labels)))
    out: List[Tuple[str, str]] = []
    guard = 0
    while len(out) < count:
        i, j = rng.sample(range(len(labels)), 2)
        if uf.union(i, j):
            out.append((min(labels[i]), min(labels[j])))
        guard += 1
        if guard > 100_000:
            raise RuntimeError("equality generation did not converge")
    return out
