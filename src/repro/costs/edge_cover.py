"""Fractional and integral edge cover numbers.

Section 2 defines the size-bound parameter ``s(T)`` through the
*fractional edge cover number* of each root-to-leaf path: the optimum
of the linear program

    minimise    sum_i x_{R_i}
    subject to  sum_{i : R_i covers A} x_{R_i} >= 1   for every class A,
                x_{R_i} >= 0.

The paper solves these LPs with GLPK; we solve them *exactly* instead,
with a small simplex over :class:`fractions.Fraction`.  Rather than
running two-phase simplex on the primal (whose origin is infeasible),
we solve the LP dual -- the fractional *packing* problem

    maximise    sum_A y_A
    subject to  sum_{A covered by R} y_A <= 1   for every edge R,
                y_A >= 0,

whose origin is feasible, and rely on strong duality.  Bland's rule
guarantees termination.  When SciPy is installed the test-suite
cross-checks this solver against ``scipy.optimize.linprog``.

The integral (non-weighted) edge cover number is provided for
completeness via branch-free subset enumeration -- the instances here
are tiny (one edge per query relation).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import AbstractSet, FrozenSet, List, Optional, Sequence, Tuple

INFEASIBLE = Fraction(-1)  # sentinel; callers treat it as "no cover"


class CoverError(ValueError):
    """Raised when no (finite) cover exists for some class."""


def _simplex_max(
    objective: Sequence[Fraction],
    matrix: Sequence[Sequence[Fraction]],
    rhs: Sequence[Fraction],
) -> Fraction:
    """Maximise ``objective . y`` s.t. ``matrix y <= rhs``, ``y >= 0``.

    Requires ``rhs >= 0`` so the origin is feasible.  Returns the
    optimal objective value; raises :class:`CoverError` if unbounded.
    Dense tableau simplex with Bland's anti-cycling rule -- exact, and
    plenty fast for covers with at most a few dozen classes/edges.
    """
    n = len(objective)
    m = len(matrix)
    width = n + m + 1
    # tableau rows: constraints, then the objective row (negated costs).
    tableau: List[List[Fraction]] = []
    for i in range(m):
        row = [Fraction(v) for v in matrix[i]]
        row += [Fraction(1) if j == i else Fraction(0) for j in range(m)]
        row.append(Fraction(rhs[i]))
        tableau.append(row)
    zrow = [-Fraction(c) for c in objective]
    zrow += [Fraction(0)] * (m + 1)
    tableau.append(zrow)
    basis = list(range(n, n + m))

    while True:
        # Bland: entering variable = smallest index with negative cost.
        enter = -1
        for j in range(width - 1):
            if tableau[m][j] < 0:
                enter = j
                break
        if enter < 0:
            return tableau[m][-1]
        # Ratio test; Bland tie-break on the leaving basic variable.
        leave = -1
        best: Optional[Fraction] = None
        for i in range(m):
            coef = tableau[i][enter]
            if coef > 0:
                ratio = tableau[i][-1] / coef
                if best is None or ratio < best or (
                    ratio == best and basis[i] < basis[leave]
                ):
                    best = ratio
                    leave = i
        if leave < 0:
            raise CoverError("LP is unbounded (a class has no cover)")
        # Pivot.
        pivot = tableau[leave][enter]
        tableau[leave] = [v / pivot for v in tableau[leave]]
        for i in range(m + 1):
            if i != leave and tableau[i][enter] != 0:
                factor = tableau[i][enter]
                tableau[i] = [
                    v - factor * p
                    for v, p in zip(tableau[i], tableau[leave])
                ]
        basis[leave] = enter


def fractional_edge_cover(
    classes: Sequence[AbstractSet[str]],
    edges: Sequence[AbstractSet[str]],
) -> Fraction:
    """The fractional edge cover number of ``classes`` by ``edges``.

    A class is covered by an edge when they share an attribute.  Raises
    :class:`CoverError` if some class is covered by no edge at all.

    >>> fractional_edge_cover([{"a"}, {"b"}], [{"a", "b"}])
    Fraction(1, 1)
    >>> fractional_edge_cover(                   # the triangle query
    ...     [{"a"}, {"b"}, {"c"}],
    ...     [{"a", "b"}, {"b", "c"}, {"a", "c"}])
    Fraction(3, 2)
    """
    classes = [frozenset(c) for c in classes]
    edges = [frozenset(e) for e in edges]
    if not classes:
        return Fraction(0)
    covers: List[List[int]] = []
    for cls in classes:
        covering = [j for j, edge in enumerate(edges) if edge & cls]
        if not covering:
            raise CoverError(f"class {sorted(cls)} has no covering edge")
        covers.append(covering)
    # Dual packing LP: variables y per class, one <=1 row per edge.
    relevant = sorted({j for covering in covers for j in covering})
    remap = {j: i for i, j in enumerate(relevant)}
    matrix = [
        [Fraction(0)] * len(classes) for _ in range(len(relevant))
    ]
    for i, covering in enumerate(covers):
        for j in covering:
            matrix[remap[j]][i] = Fraction(1)
    objective = [Fraction(1)] * len(classes)
    rhs = [Fraction(1)] * len(relevant)
    return _simplex_max(objective, matrix, rhs)


def integral_edge_cover(
    classes: Sequence[AbstractSet[str]],
    edges: Sequence[AbstractSet[str]],
) -> int:
    """The non-weighted cover number (smallest covering edge subset)."""
    classes = [frozenset(c) for c in classes]
    edges = [frozenset(e) for e in edges]
    if not classes:
        return 0
    useful = [e for e in edges if any(e & c for c in classes)]
    for size in range(1, len(useful) + 1):
        for subset in combinations(useful, size):
            if all(any(e & c for e in subset) for c in classes):
                return size
    raise CoverError("some class has no covering edge")


def fractional_edge_cover_scipy(
    classes: Sequence[AbstractSet[str]],
    edges: Sequence[AbstractSet[str]],
) -> float:
    """Primal LP via ``scipy.optimize.linprog`` (cross-check only)."""
    from scipy.optimize import linprog  # deferred optional import

    classes = [frozenset(c) for c in classes]
    edges = [frozenset(e) for e in edges]
    if not classes:
        return 0.0
    n = len(edges)
    a_ub = []
    for cls in classes:
        row = [-1.0 if edge & cls else 0.0 for edge in edges]
        if all(v == 0.0 for v in row):
            raise CoverError(f"class {sorted(cls)} has no covering edge")
        a_ub.append(row)
    result = linprog(
        c=[1.0] * n,
        A_ub=a_ub,
        b_ub=[-1.0] * len(classes),
        bounds=[(0, None)] * n,
        method="highs",
    )
    if not result.success:
        raise CoverError(f"linprog failed: {result.message}")
    return float(result.fun)
