"""Cardinality-estimate cost measure (Section 4.1, "Cost Based on
Estimates").

The number of ``A``-singletons in an f-representation over ``T`` equals
``|Q_anc(A)(D)|`` where ``anc(A)`` are the classes from the root to
``A``'s node; the size of the whole factorisation is the sum over all
attributes.  We estimate ``|Q_anc(A)(D)|`` with textbook System-R
machinery over the catalogue statistics: join size = product of
relation cardinalities divided by the maximum distinct count of every
join class (counted once per extra covering relation), then capped by
the product of the per-class domain sizes for the projection to the
path classes.

These estimates drive the alternative cost measure of the optimisers;
the paper notes both measures "lead to very similar choices", which
our tests confirm on random workloads.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence

from repro.core.ftree import FNode, FTree
from repro.relational.database import Database


class Statistics:
    """Catalogue statistics: relation sizes and distinct counts.

    Decoupled from :class:`Database` so that estimates survive when the
    data itself has been factorised away (Experiments 2 and 4 optimise
    on factorised inputs using the statistics of the original data).
    """

    def __init__(
        self,
        cardinalities: Mapping[str, int],
        distincts: Mapping[str, Mapping[str, int]],
    ) -> None:
        #: relation name -> #tuples
        self.cardinalities: Dict[str, int] = dict(cardinalities)
        #: relation name -> attribute -> #distinct values
        self.distincts: Dict[str, Dict[str, int]] = {
            name: dict(attrs) for name, attrs in distincts.items()
        }
        self._owner: Dict[str, str] = {}
        for name, attrs in self.distincts.items():
            for attr in attrs:
                self._owner[attr] = name

    @staticmethod
    def of_database(database: Database) -> "Statistics":
        cardinalities = {}
        distincts: Dict[str, Dict[str, int]] = {}
        for relation in database:
            cardinalities[relation.name] = len(relation)
            distincts[relation.name] = {
                attr: relation.distinct_count(attr)
                for attr in relation.attributes
            }
        return Statistics(cardinalities, distincts)

    def relations_covering(self, label: FrozenSet[str]) -> List[str]:
        """Names of relations owning at least one attribute of ``label``."""
        return sorted(
            {self._owner[attr] for attr in label if attr in self._owner}
        )

    def class_distinct(self, label: FrozenSet[str]) -> int:
        """Estimated distinct values of a class: min over its attributes.

        Equality shrinks the active domain to (at most) the smallest
        participating attribute domain.
        """
        values = [
            self.distincts[self._owner[attr]][attr]
            for attr in label
            if attr in self._owner
        ]
        return max(1, min(values)) if values else 1

    def estimate_join(self, labels: Sequence[FrozenSet[str]]) -> float:
        """Estimated size of the join of all relations touching ``labels``.

        |R1| * ... * |Rk| / prod_over_classes V(class)^(deg - 1).
        """
        names = sorted(
            {
                name
                for label in labels
                for name in self.relations_covering(label)
            }
        )
        if not names:
            return 1.0
        size = 1.0
        for name in names:
            size *= max(1, self.cardinalities[name])
        for label in labels:
            degree = sum(
                1
                for name in names
                if any(
                    attr in self.distincts[name] for attr in label
                )
            )
            if degree > 1:
                size /= float(self.class_distinct(label)) ** (degree - 1)
        return max(size, 0.0)

    def estimate_path_cardinality(
        self, path_labels: Sequence[FrozenSet[str]]
    ) -> float:
        """Estimated ``|Q_anc(A)(D)|`` for a root-to-node path.

        The projection onto the path classes cannot exceed the product
        of their domain sizes, nor the unprojected join size.
        """
        join_size = self.estimate_join(path_labels)
        domain_cap = 1.0
        for label in path_labels:
            domain_cap *= float(self.class_distinct(label))
        return max(1.0, min(join_size, domain_cap))


def estimate_representation_size(
    tree: FTree, stats: Statistics
) -> float:
    """Estimated ``|E|`` of an f-representation over ``tree``.

    Sum over nodes of (#attributes in the label) x ``|Q_anc(node)|``.
    Constant nodes contribute a single singleton.
    """
    total = 0.0

    def walk(node: FNode, path: List[FrozenSet[str]]) -> None:
        nonlocal total
        here = path + ([] if node.constant else [node.label])
        if node.constant:
            total += len(node.label)
        else:
            total += len(node.label) * stats.estimate_path_cardinality(
                here
            )
        for child in node.children:
            walk(child, here)

    for root in tree.roots:
        walk(root, [])
    return total


def estimate_plan_cost(
    trees: Iterable[FTree], stats: Statistics
) -> float:
    """Estimate-based f-plan cost: summed estimated sizes (Section 4.1)."""
    return sum(
        estimate_representation_size(tree, stats) for tree in trees
    )
