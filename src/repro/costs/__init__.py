"""Cost measures: fractional edge covers, ``s(T)``, and estimates.

- :mod:`repro.costs.edge_cover` -- exact fractional edge cover numbers
  via a Fraction-arithmetic simplex on the dual packing LP (the paper
  used GLPK); integral covers for the non-weighted variant;
- :mod:`repro.costs.cost_model` -- ``s(T)``, the bottleneck plan cost
  ``s(f)`` and the lexicographic plan order of Section 4.1;
- :mod:`repro.costs.cardinality` -- the estimate-based cost measure
  built on catalogue statistics.
"""

from repro.costs.edge_cover import (
    CoverError,
    fractional_edge_cover,
    integral_edge_cover,
)
from repro.costs.cost_model import (
    clear_cover_cache,
    path_cover,
    PlanCost,
    s_plan,
    s_tree,
)
from repro.costs.cardinality import (
    estimate_plan_cost,
    estimate_representation_size,
    Statistics,
)

__all__ = [
    "clear_cover_cache",
    "CoverError",
    "estimate_plan_cost",
    "estimate_representation_size",
    "fractional_edge_cover",
    "integral_edge_cover",
    "path_cover",
    "PlanCost",
    "s_plan",
    "s_tree",
    "Statistics",
]
