"""Cost measures for f-trees and f-plans (Section 4.1).

The asymptotic measure: ``s(T)`` is the maximum, over root-to-leaf
paths of ``T``, of the fractional edge cover number of the attribute
classes on the path (constant nodes are ignored, cf. Section 3.3).
The cost of an f-plan is the bottleneck ``s(f) = max_i s(T_i)`` over
the f-trees it traverses, and f-plans compare lexicographically by
``(s(f), s(T_final))`` -- the paper's ``<max x <s(T)`` order.

Covers are memoised on the (path classes, edges) pair: during the
optimiser's search thousands of trees share paths.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import FrozenSet, List, Sequence, Tuple

from repro.core.ftree import FTree
from repro.costs.edge_cover import CoverError, fractional_edge_cover

_Classes = Tuple[FrozenSet[str], ...]
_Edges = FrozenSet[FrozenSet[str]]


@lru_cache(maxsize=262144)
def _cover_cached(classes: _Classes, edges: _Edges) -> Fraction:
    return fractional_edge_cover(list(classes), list(edges))


def path_cover(
    classes: Sequence[FrozenSet[str]], edges: _Edges
) -> Fraction:
    """Fractional cover of one path's classes (order-insensitive)."""
    canonical = tuple(sorted(set(classes), key=lambda c: tuple(sorted(c))))
    return _cover_cached(canonical, edges)


def s_tree(tree: FTree) -> Fraction:
    """The parameter ``s(T)``: worst root-to-leaf fractional cover.

    >>> from repro.core.ftree import FTree
    >>> t = FTree.from_nested(
    ...     [("a", [("b", [])])], edges=[{"a", "b"}])
    >>> s_tree(t)
    Fraction(1, 1)
    """
    edges = tree.edges.edges
    best = Fraction(0)
    for path in tree.root_to_leaf_paths():
        classes = [node.label for node in path if not node.constant]
        if not classes:
            continue
        try:
            cover = path_cover(classes, edges)
        except CoverError:
            # A class with no covering edge cannot occur for query
            # f-trees; treat it as infinitely expensive if it does.
            return Fraction(10**9)
        if cover > best:
            best = cover
    return best


def s_plan(trees: Sequence[FTree]) -> Fraction:
    """Bottleneck cost ``s(f)`` of an f-plan through ``trees``."""
    if not trees:
        return Fraction(0)
    return max(s_tree(tree) for tree in trees)


class PlanCost:
    """The lexicographic f-plan cost ``<max x <s(T)`` of Section 4.1.

    Comparison is by (bottleneck ``s(f)``, final ``s(T)``), then by the
    number of operators as an implementation-level tiebreak so that
    shorter equally-good plans win deterministically.
    """

    __slots__ = ("bottleneck", "final", "length")

    def __init__(
        self, bottleneck: Fraction, final: Fraction, length: int
    ) -> None:
        self.bottleneck = bottleneck
        self.final = final
        self.length = length

    def as_tuple(self) -> Tuple[Fraction, Fraction, int]:
        return (self.bottleneck, self.final, self.length)

    def __lt__(self, other: "PlanCost") -> bool:
        return self.as_tuple() < other.as_tuple()

    def __le__(self, other: "PlanCost") -> bool:
        return self.as_tuple() <= other.as_tuple()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PlanCost)
            and self.as_tuple() == other.as_tuple()
        )

    def __repr__(self) -> str:
        return (
            f"PlanCost(s(f)={self.bottleneck}, s(T)={self.final}, "
            f"ops={self.length})"
        )

    @staticmethod
    def of_trees(trees: Sequence[FTree]) -> "PlanCost":
        """Cost of a plan that traverses ``trees`` (first = input)."""
        return PlanCost(
            s_plan(trees), s_tree(trees[-1]), max(0, len(trees) - 1)
        )

    @staticmethod
    def of_floats(
        total: float, final: float, length: int
    ) -> "PlanCost":
        """Estimate-based cost (Section 4.1's alternative measure).

        Values are floats rather than Fractions; the comparison logic
        is identical, so estimate-based and asymptotic costs each form
        their own consistent order (they are never mixed in one
        optimiser run).
        """
        return PlanCost(total, final, length)  # type: ignore[arg-type]


def clear_cover_cache() -> None:
    """Reset the memoised covers (between benchmark configurations)."""
    _cover_cached.cache_clear()
