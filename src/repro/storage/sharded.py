"""Horizontally sharded databases.

"On the Scalability of Multidimensional Databases" (Szepkuti,
PAPERS.md) observes that a compressed physical representation only
pays off at scale when the physical organisation scales with the
data.  :class:`ShardedDatabase` is that organisation for this engine:
every relation is split row-wise over ``shards`` per-shard
:class:`~repro.relational.database.Database` instances while the class
itself *remains* a ``Database`` -- the merged catalogue view -- so all
existing engines, statistics and the serving layer keep working
unchanged on top of it.

Partitioning strategies
-----------------------

``hash``
    Row ``r`` lives on shard ``stable_row_hash(r) % shards``.  The
    hash is content-based and process-stable (``zlib.crc32`` over
    ``repr``), so parent and pool workers agree on placement and a
    deleted/updated row is found on the shard its content names.
``round_robin``
    Row ``i`` of the (sorted, duplicate-free) relation lives on shard
    ``i % shards`` -- deterministic because relations store their
    tuples in lexicographic order, and balanced by construction.

Every mutation (insert, delete, update) goes through the merged view
first -- reusing the ``Database`` mutation semantics, its ``version``
counter and its recorded delta -- and then repartitions.  Under the
``hash`` strategy repartitioning is *incremental*: placement is
content-addressed, so the recorded delta's inserted/removed rows are
routed to exactly the shards their content names and every other
partition is left untouched (``repartitions_delta``); ``round_robin``
placement depends on global row positions and falls back to wholesale
rebuilds (``repartitions_full``).  Either way shards never drift from
the catalogue.

The per-shard evaluation contract used by :mod:`repro.exec`:
:meth:`ShardedDatabase.shard_view` builds a plain ``Database`` holding
shard ``i``'s partition of one *fan-out* relation plus full copies of
every other relation.  Evaluating a join query against each view and
unioning the factorised results (:func:`repro.ops.union.union_all`)
reproduces the unsharded answer exactly, because the fan-out
partitions are disjoint and every result tuple embeds exactly one
fan-out row.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.costs.cardinality import Statistics
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Supported row-placement strategies.
PARTITION_STRATEGIES = ("hash", "round_robin")


class ShardingError(ValueError):
    """Raised for invalid shard configurations or shard lookups."""


def stable_row_hash(row: Tuple[object, ...]) -> int:
    """A process-stable, content-based hash of one row.

    Python's built-in ``hash`` is salted per process for strings
    (``PYTHONHASHSEED``), which would make parent and pool workers
    disagree on row placement; CRC32 over ``repr`` is stable across
    processes and runs.
    """
    return zlib.crc32(repr(row).encode("utf-8"))


class ShardedDatabase(Database):
    """A ``Database`` whose relations are row-partitioned over shards.

    The instance itself holds the merged view (all rows of every
    relation), so the full ``Database`` read API -- schema, lookup,
    statistics, iteration -- is inherited unchanged; :meth:`shard`
    exposes the per-shard partitions.

    >>> sdb = ShardedDatabase(shards=2)
    >>> _ = sdb.add_rows("R", ("a", "b"), [(i, i) for i in range(6)])
    >>> len(sdb["R"])
    6
    >>> sum(len(sdb.shard(i)["R"]) for i in range(2))
    6
    """

    def __init__(
        self,
        shards: int = 2,
        strategy: str = "hash",
        relations: Iterable[Relation] = (),
    ) -> None:
        if shards < 1:
            raise ShardingError(f"need at least one shard, got {shards}")
        if strategy not in PARTITION_STRATEGIES:
            raise ShardingError(
                f"unknown strategy {strategy!r}; "
                f"pick one of {PARTITION_STRATEGIES}"
            )
        self.strategy = strategy
        self._shard_dbs: List[Database] = [
            Database() for _ in range(shards)
        ]
        self._shard_stats: List[Optional[Statistics]] = [None] * shards
        self._shard_stats_version = -1
        #: Monotone repartition counters: ``full`` counts wholesale
        #: per-relation rebuilds (:meth:`_partition`), ``delta`` counts
        #: incremental routings that touched only affected shards.
        self.repartitions_full = 0
        self.repartitions_delta = 0
        super().__init__(relations)

    @classmethod
    def from_database(
        cls, database: Database, shards: int, strategy: str = "hash"
    ) -> "ShardedDatabase":
        """Shard an existing flat database (relations are shared, not
        copied; the row lists are immutable by convention)."""
        return cls(
            shards=shards, strategy=strategy, relations=iter(database)
        )

    # -- shard access ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shard_dbs)

    def shard(self, index: int) -> Database:
        """The ``index``-th partition as a plain ``Database``."""
        if not 0 <= index < len(self._shard_dbs):
            raise ShardingError(
                f"shard {index} out of range 0..{len(self._shard_dbs) - 1}"
            )
        return self._shard_dbs[index]

    def shard_sizes(self, name: str) -> List[int]:
        """Per-shard tuple counts of one relation (balance check)."""
        self[name]  # raise on unknown relations
        return [len(shard[name]) for shard in self._shard_dbs]

    def shard_statistics(self, index: int) -> Statistics:
        """Per-shard catalogue statistics, cached per :attr:`version`.

        The merged-view statistics remain available through the
        inherited API (``Statistics.of_database(self)`` sees the full
        rows); these describe one partition, e.g. for per-worker cost
        decisions.
        """
        if self._shard_stats_version != self.version:
            self._shard_stats = [None] * len(self._shard_dbs)
            self._shard_stats_version = self.version
        if self._shard_stats[index] is None:
            self._shard_stats[index] = Statistics.of_database(
                self.shard(index)
            )
        return self._shard_stats[index]

    def shard_view(self, index: int, fanout: str) -> Database:
        """A single-shard evaluation view: shard ``index``'s partition
        of the ``fanout`` relation plus full copies of all others.

        Relation objects are shared with the merged view (no row
        copies); the returned ``Database`` is throwaway.
        """
        partition = self.shard(index)[fanout]
        view = Database()
        for relation in self:
            view.add(partition if relation.name == fanout else relation)
        return view

    # -- mutations (merged view first, then repartition) -------------------

    def add(self, relation: Relation) -> Relation:
        super().add(relation)
        self._partition(relation.name)
        return relation

    def extend_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> Relation:
        if self.strategy == "hash":
            # Append fast path: hash placement is content-based, so
            # existing rows cannot move -- route only the genuinely
            # fresh rows (read off the recorded delta) to their shards
            # instead of re-hashing the whole relation.
            merged = super().extend_rows(name, rows)
            self._route_appended(name, self.delta_log.last().inserted)
            self.repartitions_delta += 1
            return merged
        # Round-robin placement depends on every row's global sorted
        # position, which an insert shifts: full rebuild required.
        merged = super().extend_rows(name, rows)
        self._partition(name)
        return merged

    def _route_appended(
        self, name: str, fresh: Sequence[Tuple[object, ...]]
    ) -> None:
        """Merge genuinely new rows into their hash shards only."""
        count = len(self._shard_dbs)
        buckets: List[List[Tuple[object, ...]]] = [
            [] for _ in range(count)
        ]
        for row in fresh:
            buckets[stable_row_hash(row) % count].append(row)
        schema = self[name].schema
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue  # untouched shards keep their partition
            shard_db = self._shard_dbs[index]
            part = shard_db[name]
            shard_db._store(
                Relation(
                    schema,
                    sorted(list(part.rows) + bucket),
                )
            )

    def delete_rows(self, name, rows=None, where=None) -> int:
        removed = super().delete_rows(name, rows=rows, where=where)
        if removed:
            if self.strategy == "hash":
                # A deleted row is found on the shard its content
                # names: drop the recorded rows from just those
                # shards, leaving the others untouched.
                self._route_removed(name, self.delta_log.last().removed)
                self.repartitions_delta += 1
            else:
                self._partition(name)
        return removed

    def update_rows(self, name, where, updates) -> int:
        changed = super().update_rows(name, where, updates)
        if changed:
            if self.strategy == "hash":
                # An update is a remove+insert pair on the recorded
                # delta; the rewritten rows may hash to *different*
                # shards than the originals, and routing both sides
                # touches exactly the affected partitions.
                delta = self.delta_log.last()
                self._route_removed(name, delta.removed)
                self._route_appended(name, delta.inserted)
                self.repartitions_delta += 1
            else:
                self._partition(name)
        return changed

    def _route_removed(
        self, name: str, removed: Sequence[Tuple[object, ...]]
    ) -> None:
        """Drop removed rows from the hash shards that hold them."""
        count = len(self._shard_dbs)
        buckets: List[set] = [set() for _ in range(count)]
        for row in removed:
            buckets[stable_row_hash(row) % count].add(row)
        schema = self[name].schema
        for index, doomed in enumerate(buckets):
            if not doomed:
                continue  # untouched shards keep their partition
            shard_db = self._shard_dbs[index]
            part = shard_db[name]
            shard_db._store(
                Relation(
                    schema,
                    [row for row in part.rows if row not in doomed],
                )
            )

    def _partition(self, name: str) -> None:
        """Rebuild every shard's partition of ``name`` from the merged
        view (deterministic for both strategies)."""
        relation = self[name]
        count = len(self._shard_dbs)
        buckets: List[List[Tuple[object, ...]]] = [
            [] for _ in range(count)
        ]
        if self.strategy == "hash":
            for row in relation.rows:
                buckets[stable_row_hash(row) % count].append(row)
        else:  # round_robin over the sorted row order
            for i, row in enumerate(relation.rows):
                buckets[i % count].append(row)
        for shard_db, bucket in zip(self._shard_dbs, buckets):
            # Buckets preserve the sorted order of ``relation.rows``,
            # so the Relation constructor's invariant holds directly.
            part = Relation(relation.schema, bucket)
            if name in shard_db:
                shard_db._store(part)
            else:
                shard_db.add(part)
        self._shard_stats = [None] * count
        self.repartitions_full += 1

    def repartition_counters(self) -> Dict[str, int]:
        """How partitions have been maintained: ``full`` wholesale
        rebuilds vs ``delta`` incremental routings."""
        return {
            "full": self.repartitions_full,
            "delta": self.repartitions_delta,
        }

    # -- fan-out choice ----------------------------------------------------

    def fanout_relation(self, names: Sequence[str]) -> str:
        """The relation of ``names`` to partition a query over.

        The largest relation wins (most work to spread); ties break on
        the name so parent and workers agree.
        """
        if not names:
            raise ShardingError("no relations to fan out over")
        return max(names, key=lambda n: (len(self[n]), n))
