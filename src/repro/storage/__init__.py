"""The storage layer: physical organisation of relations.

Splits *where data lives* from *how queries run* (:mod:`repro.exec`)
and *how sessions are served* (:mod:`repro.service`).  The flat
single-copy store stays :class:`~repro.relational.database.Database`;
this package adds :class:`ShardedDatabase`, a horizontally partitioned
store behind the same read API, enabling the per-shard parallel
execution path.
"""

from repro.storage.sharded import (
    PARTITION_STRATEGIES,
    ShardedDatabase,
    ShardingError,
    stable_row_hash,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "ShardedDatabase",
    "ShardingError",
    "stable_row_hash",
]
