"""A bounded LRU cache for compiled plans.

The PR-1 serving layer cached plans in a plain dict, which grows
without bound under adversarial or long-tailed traffic (every distinct
canonical query leaves a compiled f-tree behind forever).
:class:`PlanCache` bounds that: least-recently-*used* entries are
evicted once ``capacity`` is exceeded, and hit/miss/eviction counters
expose the cache's behaviour to the session stats and the CLI.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple


class PlanCache:
    """An LRU mapping from canonical keys to compiled plans.

    ``capacity=None`` means unbounded (the PR-1 behaviour); otherwise
    inserting beyond capacity evicts the least recently used entry.

    >>> cache = PlanCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")  # touches "a": "b" is now the LRU entry
    1
    >>> cache.put("c", 3)  # evicts "b"
    'b'
    >>> cache.get("b") is None
    True
    >>> (cache.hits, cache.misses, cache.evictions)
    (1, 1, 1)
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"cache capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key) -> Optional[object]:
        """The cached value (marked most recently used), or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> Optional[object]:
        """Insert (as most recently used); returns the evicted key, if
        the insert pushed the cache over capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if (
            self.capacity is not None
            and len(self._entries) > self.capacity
        ):
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def peek(self, key) -> Optional[object]:
        """The cached value without touching recency *or* counters
        (observability reads must not skew hit rates)."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership test; does *not* refresh recency."""
        return key in self._entries

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    def values(self) -> List[object]:
        """Cached values, least recently used first."""
        return list(self._entries.values())

    def clear(self) -> None:
        """Drop all entries (counters are kept: they are monotone)."""
        self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }
