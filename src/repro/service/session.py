"""Query sessions: the serving layer's thin coordinator.

The paper's experiments (Figure 9) show that for FDB the *optimiser*
dominates per-query cost: finding an optimal f-tree or f-plan is
exponential in the worst case, while executing the chosen plan on
factorised data is cheap.  A production deployment serving repeated
traffic therefore must not pay the optimiser per arriving query.

:class:`QuerySession` is the serving layer of the three-layer stack
(storage -> execution -> serving).  It owns the *policy*:

- **plan cache**: compiled plans (optimal f-trees for the flat input
  path, :class:`~repro.optimiser.fplan.FPlan` step sequences for the
  factorised input path) are cached under
  :meth:`~repro.query.query.Query.canonical_key` in an LRU-bounded
  :class:`~repro.service.cache.PlanCache`, so reformulated repeats
  (reordered ``FROM``/``WHERE``, flipped equalities) hit;
- **statistics reuse**: one :class:`~repro.costs.cardinality.
  Statistics` catalogue per session, shared by every engine and
  rebuilt only when the :class:`~repro.relational.database.Database`
  version counter moves (row-level inserts, deletes and updates all
  bump it);
- **batch execution**: :meth:`QuerySession.run_batch` deduplicates
  canonically-equal queries and evaluates each equivalence class once;
- **explosion fallback**: when the estimated factorised size exceeds
  ``fallback_budget``, evaluation routes to the flat engine under the
  session's (time/row) :class:`~repro.relational.budget.Budget`
  instead of materialising a pathological factorisation;
- **warm start**: with a :class:`~repro.persist.PlanStore`, the
  in-memory plan cache becomes the hot tier of a two-tier cache --
  lookups fall through to the disk store (hits are promoted into the
  LRU), compiles are written through to it -- so a fresh session, or a
  fresh *process*, starts with every previously compiled plan.

The *mechanism* -- how the deduplicated queries actually run -- lives
in the injected :class:`~repro.exec.Executor`: serial in-process by
default, or :class:`~repro.exec.ParallelExecutor` for pool-parallel
compilation and (on a :class:`~repro.storage.ShardedDatabase`)
per-shard fan-out.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import cycle guard: persist sits beside serving
    from repro.persist import PlanStore

from repro import ops
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.costs.cardinality import Statistics, estimate_representation_size
from repro.engine import FDB
from repro.exec import Executor, SerialExecutor
from repro.ivm import ResultCache
from repro.optimiser.fplan import FPlan
from repro.query.query import Query, QueryError, equality_partition
from repro.relational.budget import Budget
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.relation import Relation
from repro.relational.sqlite_engine import SQLiteEngine
from repro.service.cache import PlanCache

#: Engines a session can route a query to.  ``auto`` means "factorised
#: unless the estimate says the factorisation explodes".
ENGINES = ("auto", "fdb", "flat", "sqlite")


@dataclass
class SessionStats:
    """Counters describing what a session did (all monotone)."""

    queries: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    fplan_hits: int = 0
    fplan_misses: int = 0
    fplan_evictions: int = 0
    stats_builds: int = 0
    invalidations: int = 0
    delta_refreshes: int = 0
    result_hits: int = 0
    result_misses: int = 0
    fallbacks: int = 0
    batch_queries: int = 0
    batch_deduped: int = 0
    store_hits: int = 0
    store_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit rate over flat-path queries (0.0 when idle)."""
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items()]
        return f"SessionStats({', '.join(parts)})"


@dataclass
class CachedPlan:
    """A compiled flat-path plan: the optimal f-tree plus metadata."""

    key: Tuple
    tree: FTree
    hits: int = 0
    #: Estimated factorisation size (singletons), filled lazily the
    #: first time the fallback check needs it.
    estimated_size: Optional[float] = None


@dataclass
class SessionResult:
    """One evaluated query, normalised across engines.

    ``rows()`` always yields sorted distinct tuples over the sorted
    attribute order, so results from different engines (or a cached
    result shared by canonically-equal queries whose projections list
    attributes in different orders) compare equal exactly when they
    represent the same relation.
    """

    query: Query
    engine: str
    cached: bool
    elapsed: float
    deduped: bool = False
    factorised: Optional[FactorisedRelation] = None
    flat: Optional[Relation] = None
    raw: Optional[List[tuple]] = None
    raw_attributes: Optional[Tuple[str, ...]] = None
    plan: Optional[FPlan] = None
    #: Span records of the trace that served this query (plain dicts,
    #: see :mod:`repro.obs.trace`); ``None`` when tracing was off.
    spans: Optional[List[dict]] = None
    trace_id: Optional[str] = None

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Result attributes in canonical (sorted) order."""
        if self.factorised is not None:
            return self.factorised.attributes
        if self.flat is not None:
            return tuple(sorted(self.flat.attributes))
        return tuple(sorted(set(self.raw_attributes or ())))

    def rows(self) -> List[tuple]:
        """Sorted distinct result tuples over :attr:`attributes`."""
        order = self.attributes
        if self.factorised is not None:
            return sorted(set(self.factorised.rows(order)))
        if self.flat is not None:
            perm = [self.flat.schema.index_of(a) for a in order]
            return sorted(
                {tuple(row[i] for i in perm) for row in self.flat}
            )
        raw_attrs = list(self.raw_attributes or ())
        perm = [raw_attrs.index(a) for a in order]
        return sorted(
            {tuple(row[i] for i in perm) for row in self.raw or []}
        )

    def count(self) -> int:
        """Number of distinct result tuples (no enumeration for FDB)."""
        if self.factorised is not None:
            return self.factorised.count()
        if self.flat is not None:
            return len(self.flat)
        return len(self.rows())


class QuerySession:
    """A stateful facade over the three engines with plan caching.

    Parameters
    ----------
    database:
        The shared flat (or :class:`~repro.storage.ShardedDatabase`)
        store.  Sessions watch its
        :attr:`~repro.relational.database.Database.version` and drop
        every cache when it moves.
    plan_search / cost_model / encoding:
        Forwarded to :class:`~repro.engine.FDB`.  ``encoding="arena"``
        evaluates factorised results in the flat columnar encoding of
        :mod:`repro.core.arena` (``repro batch --arena`` on the CLI);
        answers are identical, the hot paths faster.
    fallback_budget:
        Estimated-singleton threshold above which ``auto`` queries are
        routed to the flat engine; ``None`` disables the fallback.
    budget:
        Optional :class:`~repro.relational.budget.Budget` guarding the
        flat engine (fallbacks inherit the paper's timeout protocol).
    executor:
        The :class:`~repro.exec.Executor` evaluating (deduplicated)
        queries; defaults to a fresh
        :class:`~repro.exec.SerialExecutor`.  The session owns it:
        :meth:`close` shuts it down.
    cache_size:
        LRU bound applied to both plan caches (``None`` = unbounded).
    plan_store:
        Optional :class:`~repro.persist.PlanStore`.  The in-memory
        plan cache becomes a write-through LRU tier over it: lookups
        that miss the LRU consult the store (a disk hit skips the
        optimiser and is promoted into the LRU), and freshly compiled
        plans are written through, giving cross-session and
        cross-process plan sharing.  Stale entries (other database
        version) are evicted by the store itself.
    result_cache_size:
        LRU bound of the delta-maintained result cache
        (:mod:`repro.ivm`): unprojected factorised join results are
        kept across data-only mutations and caught up by factorising
        just the delta rows.  ``None`` = unbounded, ``0`` = disabled
        (every query re-evaluates, the pre-IVM behaviour).
    tracing / slow_log / registry:
        Observability (:mod:`repro.obs`).  ``tracing`` (default on,
        near-free) records lifecycle spans per evaluation and attaches
        them to each :class:`SessionResult`; ``slow_log`` is an
        optional :class:`~repro.obs.slowlog.SlowQueryLog` receiving
        structured entries for queries over its threshold;
        ``registry`` injects a shared
        :class:`~repro.obs.metrics.MetricsRegistry` (a fresh one is
        created otherwise) -- see :meth:`snapshot`.

    >>> from repro.relational.database import Database
    >>> from repro.query.parser import parse_query
    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    >>> _ = db.add_rows("S", ("c", "d"), [(1, 5), (2, 5), (2, 6)])
    >>> session = QuerySession(db)
    >>> q = parse_query("SELECT * FROM R, S WHERE b = c")
    >>> session.run(q).count()
    5
    >>> session.run(parse_query(
    ...     "SELECT * FROM S, R WHERE c = b")).cached
    True
    """

    def __init__(
        self,
        database: Database,
        plan_search: str = "exhaustive",
        cost_model: str = "asymptotic",
        fallback_budget: Optional[float] = None,
        budget: Optional[Budget] = None,
        check_invariants: bool = False,
        executor: Optional[Executor] = None,
        cache_size: Optional[int] = None,
        plan_store: Optional["PlanStore"] = None,
        encoding: str = "object",
        result_cache_size: Optional[int] = 64,
        tracing: bool = True,
        slow_log: Optional[SlowQueryLog] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.database = database
        self.plan_search = plan_search
        self.cost_model = cost_model
        self.encoding = encoding
        self.fallback_budget = fallback_budget
        self.budget = budget
        self.check_invariants = check_invariants
        self.cache_size = cache_size
        self.plan_store = plan_store
        self.executor = executor if executor is not None else SerialExecutor()
        self.stats = SessionStats()
        self._sqlite: Optional[SQLiteEngine] = None
        self._submitter = None
        self._submitter_lock = threading.Lock()
        #: Delta-maintained unprojected results (:mod:`repro.ivm`);
        #: ``result_cache_size=0`` disables result caching entirely.
        self._results: Optional[ResultCache] = (
            ResultCache(result_cache_size)
            if result_cache_size != 0
            else None
        )
        #: Observability (see :mod:`repro.obs`): ``tracing`` gates the
        #: per-query lifecycle spans (near-free, on by default --
        #: ``bench_obs.py`` holds it to <5%); the registry unifies the
        #: session's scattered counters behind one :meth:`snapshot`,
        #: and servers graft their own collectors onto it.
        self.tracing = tracing
        self.slow_log = slow_log
        self.registry = registry if registry is not None else MetricsRegistry()
        self._query_seconds = self.registry.histogram("query_seconds")
        self._slow_queries = self.registry.counter("slow_queries_total")
        self._traces = self.registry.counter("traces_total")
        self.registry.register("session", self.stats.as_dict)
        self.registry.register("caches", self.cache_counters)
        self.registry.register(
            "submitter",
            lambda: (
                self._submitter.counters()
                if self._submitter is not None
                else None
            ),
        )
        self.registry.register(
            "plan_store",
            lambda: (
                self.plan_store.counters()
                if self.plan_store is not None
                else None
            ),
        )
        self.registry.register(
            "slow_log",
            lambda: (
                self.slow_log.counters()
                if self.slow_log is not None
                else None
            ),
        )
        self._bind()

    # -- cache lifecycle ---------------------------------------------------

    def _bind(self) -> None:
        """(Re)build engines and empty caches for the current version.

        The cache *objects* survive rebinds (only their entries drop),
        so :meth:`cache_counters` stays a lifetime view, consistent
        with the monotone counters in :attr:`stats`.
        """
        self._version = self.database.version
        if not hasattr(self, "_plans"):
            self._plans: PlanCache = PlanCache(self.cache_size)
            self._fplans: PlanCache = PlanCache(self.cache_size)
        else:
            self._plans.clear()
            self._fplans.clear()
        self._statistics: Optional[Statistics] = None
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        shared = None
        if self.cost_model == "estimates":
            shared = self.statistics()
        self._fdb = FDB(
            self.database,
            plan_search=self.plan_search,
            check_invariants=self.check_invariants,
            cost_model=self.cost_model,
            statistics=shared,
            encoding=self.encoding,
        )
        self._flat = RelationalEngine(self.database, budget=self.budget)
        if self._results is not None:
            self._results.clear()
        self.executor.invalidate()

    def _refresh(self) -> None:
        """Bring the session up to date after database mutations.

        A version move whose recorded deltas are data-only
        (:meth:`~repro.relational.database.Database.changes_since`)
        takes the *delta* path: compiled plans and cached results
        survive -- plans stay valid under row-level change, results
        are caught up lazily by the :class:`~repro.ivm.ResultCache` --
        and only the derived per-version state (statistics, fallback
        estimates, pools, the SQLite mirror) is dropped.  Schema
        changes and unexplainable gaps fall back to the wholesale
        :meth:`_bind`, the pre-IVM behaviour.
        """
        if self.database.version == self._version:
            return
        self.stats.invalidations += 1
        if self.database.changes_since(self._version) is None:
            self._bind()
            return
        self.stats.delta_refreshes += 1
        self._version = self.database.version
        self._statistics = None
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        for plan in self._plans.values():
            plan.estimated_size = None
        if self.cost_model == "estimates":
            # The engine pins a statistics catalogue; rebuild it over
            # fresh statistics so estimate-based costs track the data.
            self._fdb = FDB(
                self.database,
                plan_search=self.plan_search,
                check_invariants=self.check_invariants,
                cost_model=self.cost_model,
                statistics=self.statistics(),
                encoding=self.encoding,
            )
        self.executor.invalidate()

    def statistics(self) -> Statistics:
        """The session's statistics catalogue (built at most once per
        database version)."""
        if self._statistics is None:
            self._statistics = Statistics.of_database(self.database)
            self.stats.stats_builds += 1
        return self._statistics

    @property
    def cached_plan_count(self) -> int:
        return len(self._plans) + len(self._fplans)

    def cache_counters(self) -> Dict[str, Dict[str, int]]:
        """Counters of the plan caches, the delta-maintained result
        cache (zeros when result caching is disabled) and the
        process-wide arena<->object adapter tallies -- the latter so a
        kernel silently falling back to the object encoding shows up
        in STATS as counted round trips."""
        from repro.core.factorised import ADAPTER

        return {
            "plans": self._plans.counters(),
            "fplans": self._fplans.counters(),
            "results": (
                self._results.counters()
                if self._results is not None
                else ResultCache().counters()
            ),
            "adapter": ADAPTER.snapshot(),
        }

    def snapshot(self) -> Dict:
        """The unified observability snapshot (:mod:`repro.obs`):
        instruments plus every registered collector namespace --
        session stats, cache/ivm/adapter counters, submitter, plan
        store, slow log, and (when a server grafted itself on) the
        server counters."""
        return self.registry.snapshot()

    def close(self) -> None:
        if self._submitter is not None:
            self._submitter.close()
            self._submitter = None
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        self.executor.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- planning ----------------------------------------------------------

    def lookup_plan(self, query: Query) -> Optional[CachedPlan]:
        """The cached flat-path plan for ``query``, or ``None``.

        Executor hook: a hit updates recency and the hit counters; a
        miss only counts (callers compile and :meth:`store_plan`).

        With a :attr:`plan_store`, an LRU miss falls through to the
        disk tier: a disk hit is promoted into the LRU and reported as
        a (store) hit, so callers skip the optimiser exactly as for an
        in-memory hit.
        """
        with obs_trace.span("plan-cache"):
            key = query.canonical_key()
            plan = self._plans.get(key)
            if plan is not None:
                plan.hits += 1
                self.stats.plan_hits += 1
                return plan
            if self.plan_store is not None:
                tree = self.plan_store.get(query, self.database)
                if tree is not None:
                    plan = CachedPlan(key=key, tree=tree)
                    if self._plans.put(key, plan) is not None:
                        self.stats.plan_evictions += 1
                    plan.hits += 1
                    self.stats.plan_hits += 1
                    self.stats.store_hits += 1
                    return plan
                self.stats.store_misses += 1
            self.stats.plan_misses += 1
            return None

    def store_plan(self, query: Query, tree: FTree) -> CachedPlan:
        """Executor hook: cache a freshly compiled f-tree.

        Write-through: with a :attr:`plan_store` the plan also lands
        on disk, so other sessions and processes warm-start from it.
        """
        key = query.canonical_key()
        plan = CachedPlan(key=key, tree=tree)
        if self._plans.put(key, plan) is not None:
            self.stats.plan_evictions += 1
        if self.plan_store is not None:
            self.plan_store.put(query, self.database, tree)
        return plan

    def compile(self, query: Query) -> Tuple[CachedPlan, bool]:
        """The cached flat-path plan for ``query`` and whether it hit.

        A miss runs the f-tree optimiser (the expensive step this
        subsystem exists to amortise) and caches the result under the
        query's canonical key.
        """
        self._refresh()
        cached = self.lookup_plan(query)
        if cached is not None:
            return cached, True
        query.validate_against(self.database.schema())
        with obs_trace.span("optimise"):
            tree = self._fdb.optimal_tree(query)
        return self.store_plan(query, tree), False

    def _would_explode(self, plan: CachedPlan) -> bool:
        if self.fallback_budget is None:
            return False
        if plan.estimated_size is None:
            plan.estimated_size = estimate_representation_size(
                plan.tree, self.statistics()
            )
        return plan.estimated_size > self.fallback_budget

    # -- execution ---------------------------------------------------------

    def run(self, query: Query, engine: str = "auto") -> SessionResult:
        """Evaluate one query, routed per ``engine``."""
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick {ENGINES}")
        self._refresh()
        self.stats.queries += 1
        trace = self._begin_trace()
        with obs_trace.activate(trace):
            result = self.executor.execute(self, [query], engine)[0]
        self._observe(
            result,
            trace=trace if trace is not None else obs_trace.current(),
        )
        return result

    def submitter(self, max_wave: Optional[int] = None):
        """The session's lazily created :class:`~repro.service.
        batching.BatchSubmitter` (overlapping submission).

        The first call fixes ``max_wave``; later calls return the same
        submitter.  While it is active the submitter's coalescer thread
        is the session's only evaluator -- do not call :meth:`run` /
        :meth:`run_batch` concurrently from other threads.
        """
        with self._submitter_lock:
            if self._submitter is None:
                from repro.service.batching import BatchSubmitter

                self._submitter = BatchSubmitter(self, max_wave=max_wave)
            return self._submitter

    def submit(self, query: Query, engine: str = "auto", trace=None):
        """Overlapping submission: enqueue one query, get a
        :class:`concurrent.futures.Future` of its
        :class:`SessionResult`.

        Concurrent submitters (threads, asyncio handlers via
        ``asyncio.wrap_future``) are coalesced into shared batch waves
        -- deduplicated and fanned out together -- by the session's
        :meth:`submitter`; see :mod:`repro.service.batching`.
        ``trace`` optionally carries the submitting request's
        :class:`~repro.obs.trace.Trace` through the coalescer so its
        spans (e.g. the server-side parse) land on the served result.
        """
        return self.submitter().submit(query, engine, trace=trace)

    def run_batch(
        self,
        queries: Sequence[Query],
        engine: str = "auto",
        observe: bool = True,
    ) -> List[SessionResult]:
        """Evaluate a batch, one evaluation per canonical query.

        Results come back in input order; canonically-equal repeats
        share the first occurrence's result (flagged ``deduped``, with
        zero elapsed time).  Evaluation goes through the session's
        executor.  Snapshot semantics depend on it: a
        :class:`~repro.exec.ParallelExecutor` pins the snapshot its
        pool workers hold for every pooled (factorised-path) query,
        while the serial path -- and the fallback/flat/sqlite routes
        of either executor -- read the live database, so mutating it
        mid-batch from another thread yields mixed-version answers.
        """
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick {ENGINES}")
        self._refresh()
        slots: List[Tuple[Tuple, bool]] = []
        unique: List[Query] = []
        position: Dict[Tuple, int] = {}
        for query in queries:
            self.stats.batch_queries += 1
            key = query.canonical_key()
            if key in position:
                self.stats.batch_deduped += 1
                slots.append((key, True))
            else:
                position[key] = len(unique)
                unique.append(query)
                slots.append((key, False))
        self.stats.queries += len(unique)
        trace = self._begin_trace() if observe else None
        with obs_trace.activate(trace):
            evaluated = self.executor.execute(self, unique, engine)
        out: List[SessionResult] = []
        for query, (key, deduped) in zip(queries, slots):
            result = evaluated[position[key]]
            if deduped:
                out.append(
                    replace(result, query=query, deduped=True, elapsed=0.0)
                )
            else:
                out.append(result)
        if observe:
            # The batch shares one trace; ``observe=False`` callers
            # (the BatchSubmitter) observe per item themselves.
            active = trace if trace is not None else obs_trace.current()
            for result in out:
                self._observe(result, trace=active)
        return out

    def run_on(
        self, fr: FactorisedRelation, query: Query
    ) -> SessionResult:
        """Evaluate over a factorised input, caching the f-plan.

        Mirrors :meth:`FDB.evaluate_on` (constants, then equalities via
        an f-plan, then projection) but keys the optimised
        :class:`FPlan` on (input f-tree, canonical equality partition)
        so repeated follow-up selections replay the cached step
        sequence instead of re-optimising.
        """
        self._refresh()
        self.stats.queries += 1
        trace = self._begin_trace()
        with obs_trace.activate(trace):
            start = time.perf_counter()
            current = fr
            for cond in query.constants:
                if cond.attribute not in current.tree.attributes():
                    raise QueryError(
                        f"unknown attribute {cond.attribute!r}"
                    )
                with obs_trace.span("select"):
                    current = ops.select_constant(current, cond)
                if self.check_invariants:
                    current.validate()
            key = (
                current.tree.key(),
                equality_partition(query.equalities),
            )
            with obs_trace.span("fplan-cache"):
                plan = self._fplans.get(key)
            if plan is not None:
                self.stats.fplan_hits += 1
                hit = True
            else:
                self.stats.fplan_misses += 1
                hit = False
                pairs = [(eq.left, eq.right) for eq in query.equalities]
                with obs_trace.span("fplan-optimise"):
                    plan = self._fdb.plan_for(current.tree, pairs)
                if self._fplans.put(key, plan) is not None:
                    self.stats.fplan_evictions += 1
            with obs_trace.span("fplan-execute", steps=len(plan.steps)):
                current = plan.execute(current)
            if self.check_invariants:
                current.validate()
            if query.projection is not None:
                with obs_trace.span("project"):
                    current = ops.project(current, query.projection)
                if self.check_invariants:
                    current.validate()
            result = SessionResult(
                query=query,
                engine="fdb",
                cached=hit,
                elapsed=time.perf_counter() - start,
                factorised=current,
                plan=plan,
            )
        self._observe(
            result,
            trace=trace if trace is not None else obs_trace.current(),
        )
        return result

    # -- executor hooks ----------------------------------------------------
    #
    # Executors evaluate queries through these; they encapsulate result
    # construction and engine access so the execution layer never
    # imports the serving layer.

    def _execute_serial(self, query: Query, engine: str) -> SessionResult:
        """Evaluate one query in-process (the serial reference path)."""
        start = time.perf_counter()
        if engine == "flat":
            return self._flat_result(query, start, cached=False)
        if engine == "sqlite":
            return self._sqlite_result(query, start)
        plan, hit = self.compile(query)
        if engine == "auto" and self._would_explode(plan):
            return self._fallback_result(query, start, cached=hit)
        with obs_trace.span("result-cache"):
            served = self._serve_cached(query)
        if served is not None:
            return SessionResult(
                query=query,
                engine="fdb",
                cached=True,
                elapsed=time.perf_counter() - start,
                factorised=served,
            )
        with obs_trace.span("factorise"):
            fr = self._fdb.factorise_query(query, tree=plan.tree)
        self._cache_result(query, plan.tree, fr)
        if query.projection is not None:
            with obs_trace.span("project"):
                fr = ops.project(fr, query.projection)
            if self.check_invariants:
                fr.validate()
        return SessionResult(
            query=query,
            engine="fdb",
            cached=hit,
            elapsed=time.perf_counter() - start,
            factorised=fr,
        )

    def _flat_result(
        self, query: Query, start: float, cached: bool
    ) -> SessionResult:
        flat = self._flat.evaluate(query)
        return SessionResult(
            query=query,
            engine="flat",
            cached=cached,
            elapsed=time.perf_counter() - start,
            flat=flat,
        )

    def _fallback_result(
        self, query: Query, start: float, cached: bool
    ) -> SessionResult:
        """Route an exploding ``auto`` query to the flat engine."""
        self.stats.fallbacks += 1
        return self._flat_result(query, start, cached=cached)

    def _sqlite_result(self, query: Query, start: float) -> SessionResult:
        query.validate_against(self.database.schema())
        rows = self._sqlite_engine().evaluate(query)
        if query.projection is not None:
            columns = query.projection
        else:
            columns = tuple(
                attr
                for name in query.relations
                for attr in self.database[name].attributes
            )
        return SessionResult(
            query=query,
            engine="sqlite",
            cached=False,
            elapsed=time.perf_counter() - start,
            raw=rows,
            raw_attributes=columns,
        )

    def _serve_cached(
        self, query: Query
    ) -> Optional[FactorisedRelation]:
        """Executor hook: serve ``query`` from the delta-maintained
        result cache, or ``None`` on a miss.

        The cache stores unprojected join results (union of delta
        terms does not commute with projection, see
        :mod:`repro.ivm.maintain`); the projection is applied here,
        at serve time.  A version-lagging entry is caught up -- only
        the fresh rows are factorised and unioned in -- before being
        served, so answers are always current.
        """
        if self._results is None:
            return None
        entry = self._results.lookup(
            query,
            self.database,
            encoding=self.encoding,
            check_invariants=self.check_invariants,
        )
        if entry is None:
            self.stats.result_misses += 1
            return None
        self.stats.result_hits += 1
        fr = entry.result
        if query.projection is not None:
            pkey = tuple(query.projection)
            memo = entry.projected.get(pkey)
            if memo is not None and memo[0] == entry.version:
                return memo[1]
            fr = ops.project(fr, query.projection)
            if self.check_invariants:
                fr.validate()
            entry.projected[pkey] = (entry.version, fr)
        return fr

    def _cache_result(
        self, query: Query, tree: FTree, fr: FactorisedRelation
    ) -> None:
        """Executor hook: cache a freshly evaluated **unprojected**
        join result for delta maintenance (no-op when disabled)."""
        if self._results is not None:
            self._results.store(query, self.database, tree, fr)

    def _wrap_fdb_result(
        self,
        query: Query,
        factorised: FactorisedRelation,
        cached: bool,
        elapsed: float,
    ) -> SessionResult:
        """Executor hook: package a factorised result."""
        return SessionResult(
            query=query,
            engine="fdb",
            cached=cached,
            elapsed=elapsed,
            factorised=factorised,
        )

    # -- observability -----------------------------------------------------

    def _begin_trace(self) -> Optional[obs_trace.Trace]:
        """A fresh :class:`~repro.obs.trace.Trace` for one top-level
        evaluation -- or ``None`` when tracing is off *or* a trace is
        already active (a server request or batch wave owns it)."""
        if not self.tracing or obs_trace.current() is not None:
            return None
        self._traces.inc()
        return obs_trace.Trace()

    def _observe(
        self,
        result: SessionResult,
        trace: Optional[obs_trace.Trace] = None,
        wave: Optional[obs_trace.Trace] = None,
    ) -> None:
        """Account one served result: latency histogram, span
        attachment, slow-query log.

        ``trace`` is the per-request trace (request-scoped spans plus
        the identity used for correlation); ``wave`` the shared batch-
        wave trace a :class:`~repro.service.batching.BatchSubmitter`
        evaluated the result under (its spans cover every query of the
        wave and are appended after the request's own).
        """
        records: List[dict] = []
        trace_id = None
        origin = None
        if trace is not None:
            trace_id = trace.trace_id
            origin = trace.origin
            records.extend(trace.records)
        if wave is not None and wave is not trace:
            if trace_id is None:
                trace_id = wave.trace_id
            records.extend(wave.records)
        if records:
            result.spans = records
        if trace_id is not None:
            result.trace_id = trace_id
        self._query_seconds.observe(result.elapsed)
        log = self.slow_log
        if log is None:
            return
        if result.elapsed < log.threshold:
            log.note_fast()
        else:
            self._slow_queries.inc()
            log.observe(
                sql=str(result.query),
                engine=result.engine,
                elapsed=result.elapsed,
                trace_id=trace_id,
                origin=origin,
                spans=records,
                plan=self._plan_text(result),
            )

    def _plan_text(self, result: SessionResult) -> Optional[str]:
        """The chosen plan of a logged slow query, compactly: the
        f-plan when the result carries one, else the cached f-tree."""
        if result.plan is not None:
            return str(result.plan)
        entry = self._plans.peek(result.query.canonical_key())
        if entry is None:
            return None
        return entry.tree.pretty()

    # -- helpers -----------------------------------------------------------

    def _sqlite_engine(self) -> SQLiteEngine:
        if self._sqlite is None:
            self._sqlite = SQLiteEngine(self.database, budget=self.budget)
        return self._sqlite
