"""Overlapping batch submission: futures over a coalescing wave loop.

:meth:`QuerySession.run_batch` is synchronous: the caller hands over a
complete batch and blocks until every result is back.  That is the
wrong shape for a *server*, where independent clients submit queries
at arbitrary times and each wants its own answer as soon as possible
-- but where the batch machinery (canonical-key deduplication, shared
compile waves, per-shard fan-out) only pays off when concurrent
requests are evaluated *together*.

:class:`BatchSubmitter` closes that gap (the ROADMAP's "async
(overlapping) batch submission" item):

- :meth:`BatchSubmitter.submit` enqueues one query and immediately
  returns a :class:`concurrent.futures.Future`; callers from any
  thread (or an asyncio event loop, via ``asyncio.wrap_future``)
  overlap freely;
- a single *coalescer* thread drains everything pending into one
  **wave** and evaluates it with ``session.run_batch`` -- so queries
  submitted by independent clients while a previous wave was running
  are deduplicated and fan out together, exactly as if they had
  arrived in one batch;
- errors are isolated per query: when a wave fails wholesale, each of
  its queries is retried individually so one malformed query rejects
  only its own future.

The coalescer is the sole caller of ``session.run``/``run_batch``
while a submitter is active, so the session's single-threaded
execution contract is preserved; :meth:`submit` itself only touches
the submitter's queue and is safe from any thread.

>>> from repro.relational.database import Database
>>> from repro.query.parser import parse_query
>>> from repro.service.session import QuerySession
>>> db = Database()
>>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
>>> session = QuerySession(db)
>>> future = session.submit(parse_query("SELECT a FROM R"))
>>> future.result().rows()
[(1,), (2,)]
>>> session.close()
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

from repro.obs import trace as obs_trace
from repro.query.query import Query

#: One queued submission: (query, engine, future, trace-or-None).
#: The trace is the submitting request's (a server attaches the one
#: seeded from the client's frame header) so its spans and identity
#: follow the query through the coalescer.
_Pending = Tuple[Query, str, Future, Optional[obs_trace.Trace]]


class BatchSubmitter:
    """Coalesce overlapping :meth:`submit` calls into batch waves.

    Parameters
    ----------
    session:
        The :class:`~repro.service.session.QuerySession` evaluating the
        waves.  The submitter drives it from its own thread; do not
        call ``session.run``/``run_batch`` concurrently while the
        submitter is active.
    max_wave:
        Upper bound on queries per wave (``None`` = drain everything
        pending).  Bounding trades batching efficiency for latency of
        the queries at the front of the queue.
    start:
        Start the coalescer thread immediately (default).  Tests may
        pass ``False`` and drive :meth:`drain_once` deterministically.
    """

    def __init__(
        self,
        session,
        max_wave: Optional[int] = None,
        start: bool = True,
    ) -> None:
        if max_wave is not None and max_wave < 1:
            raise ValueError("max_wave must be positive")
        self.session = session
        self.max_wave = max_wave
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._closed = False
        #: Monotone counters, readable from any thread.
        self.submitted = 0
        self.waves = 0
        self.wave_queries = 0
        self.largest_wave = 0
        self.isolated_errors = 0
        self._thread: Optional[threading.Thread] = None
        if start:
            self._thread = threading.Thread(
                target=self._loop,
                name="repro-batch-submitter",
                daemon=True,
            )
            self._thread.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        query: Query,
        engine: str = "auto",
        trace: Optional[obs_trace.Trace] = None,
    ) -> Future:
        """Enqueue one query; the future resolves to a
        :class:`~repro.service.session.SessionResult`."""
        from repro.service.session import ENGINES

        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; pick one of {ENGINES}"
            )
        future: Future = Future()
        with self._wake:
            if self._closed:
                raise RuntimeError("submitter is closed")
            self._pending.append((query, engine, future, trace))
            self.submitted += 1
            self._wake.notify()
        return future

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def counters(self) -> Dict[str, int]:
        """Lifetime counters (coalescing quality is ``wave_queries /
        waves``: the mean number of queries evaluated together)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "pending": len(self._pending),
                "waves": self.waves,
                "wave_queries": self.wave_queries,
                "largest_wave": self.largest_wave,
                "isolated_errors": self.isolated_errors,
            }

    # -- the coalescer -----------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if not self._pending:
                    return  # closed and drained
            self.drain_once()

    def drain_once(self) -> int:
        """Evaluate one wave of everything currently pending.

        Returns the number of queries evaluated.  Public so tests (and
        ``start=False`` embeddings) can drive waves deterministically.
        """
        with self._lock:
            if self.max_wave is None:
                wave, self._pending = self._pending, []
            else:
                wave = self._pending[: self.max_wave]
                del self._pending[: self.max_wave]
        # Honour cancellations that raced the drain.
        wave = [
            item
            for item in wave
            if item[2].set_running_or_notify_cancel()
        ]
        if not wave:
            return 0
        with self._lock:
            self.waves += 1
            self.wave_queries += len(wave)
            self.largest_wave = max(self.largest_wave, len(wave))
        by_engine: Dict[str, List[_Pending]] = {}
        for item in wave:
            by_engine.setdefault(item[1], []).append(item)
        for engine, items in by_engine.items():
            self._run_group(engine, items)
        return len(wave)

    def _run_group(self, engine: str, items: List[_Pending]) -> None:
        queries = [query for query, _, _, _ in items]
        # One trace per wave group: executor spans (compile, shard
        # fan-out, union) cover the whole wave and are merged into each
        # item's result next to its own request-scoped spans.
        wave_trace = (
            obs_trace.Trace()
            if getattr(self.session, "tracing", False)
            else None
        )
        try:
            with obs_trace.activate(wave_trace):
                results = self.session.run_batch(
                    queries, engine=engine, observe=False
                )
        except Exception:
            # A wave-wide failure names no culprit: retry one by one
            # so only the offending queries reject their futures.
            with self._lock:
                self.isolated_errors += 1
            for query, _, future, _ in items:
                try:
                    future.set_result(
                        self.session.run(query, engine=engine)
                    )
                except Exception as exc:
                    future.set_exception(exc)
            return
        for (query, _, future, trace), result in zip(items, results):
            self.session._observe(result, trace=trace, wave=wave_trace)
            future.set_result(result)

    # -- lifecycle ---------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting submissions; drain what is queued.

        With ``wait`` (default) blocks until the coalescer has
        evaluated every pending query and exited.  Idempotent.
        """
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        if self._thread is not None and wait:
            if self._thread is not threading.current_thread():
                self._thread.join()
        if self._thread is None:
            # Unstarted submitter: drain synchronously on close so no
            # future is left forever pending.  Loop on the queue, not
            # on drain_once()'s count -- a wave whose futures were all
            # cancelled evaluates zero queries but must not stop the
            # drain.
            while self.pending:
                self.drain_once()

    def __enter__(self) -> "BatchSubmitter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
