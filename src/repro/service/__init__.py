"""The serving layer: cached, batched query sessions.

Separates per-workload cost (optimisation, statistics) from per-query
cost (plan replay) for repeated traffic -- see
:mod:`repro.service.session` for the design rationale.
"""

from repro.service.session import (
    CachedPlan,
    QuerySession,
    SessionResult,
    SessionStats,
)

__all__ = [
    "CachedPlan",
    "QuerySession",
    "SessionResult",
    "SessionStats",
]
