"""The serving layer: cached, batched query sessions.

Separates per-workload cost (optimisation, statistics) from per-query
cost (plan replay) for repeated traffic, and delegates the actual
evaluation to the execution layer (:mod:`repro.exec`) -- see
:mod:`repro.service.session` for the design rationale.
"""

from repro.service.batching import BatchSubmitter
from repro.service.cache import PlanCache
from repro.service.session import (
    CachedPlan,
    QuerySession,
    SessionResult,
    SessionStats,
)

__all__ = [
    "BatchSubmitter",
    "CachedPlan",
    "PlanCache",
    "QuerySession",
    "SessionResult",
    "SessionStats",
]
