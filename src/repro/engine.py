"""The FDB engine facade.

Ties the layers together into the two evaluation paths of the paper:

- :meth:`FDB.evaluate` -- an SPJ query over a *flat* database: find an
  optimal f-tree for the query result (Section 4 / Experiment 1),
  factorise the join directly from the input relations (Experiment 3),
  then apply constant selections and the projection;
- :meth:`FDB.evaluate_on` -- an SPJ query over a *factorised* input:
  optimise an f-plan (exhaustive or greedy, Section 4.2/4.3) and
  execute its operator sequence on the representation (Experiment 4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import ops
from repro.core.build import ENCODINGS, factorise
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.optimiser.exhaustive import exhaustive_fplan
from repro.optimiser.fplan import FPlan
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    query_classes_and_edges,
)
from repro.optimiser.greedy import greedy_fplan
from repro.query.query import Query, QueryError
from repro.relational.database import Database
from repro.relational.operators import select_constant as flat_select
from repro.relational.relation import Relation


class FDB:
    """In-memory query engine for factorised relational databases.

    Parameters
    ----------
    database:
        The flat input database (used by :meth:`evaluate`; queries over
        factorised inputs via :meth:`evaluate_on` do not touch it).
    plan_search:
        ``"exhaustive"`` (Section 4.2) or ``"greedy"`` (Section 4.3) --
        the optimiser used for f-plans over factorised inputs.
    check_invariants:
        When true, every produced representation is validated against
        the structural invariants (for tests and debugging).
    encoding:
        Physical encoding of produced representations: ``"object"``
        (``ProductRep`` trees) or ``"arena"`` (the flat columnar
        encoding of :mod:`repro.core.arena`; same relations, faster
        build/count/enumerate hot paths).

    >>> from repro.relational import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
    >>> _ = db.add_rows("S", ("c", "d"), [(1, 5), (2, 5), (2, 6)])
    >>> fdb = FDB(db)
    >>> result = fdb.evaluate(parse_query(
    ...     "SELECT * FROM R, S WHERE b = c"))
    >>> result.count()
    5
    """

    def __init__(
        self,
        database: Database,
        plan_search: str = "exhaustive",
        check_invariants: bool = False,
        cost_model: str = "asymptotic",
        statistics=None,
        encoding: str = "object",
        shared_pool=None,
    ) -> None:
        if plan_search not in ("exhaustive", "greedy"):
            raise ValueError(f"unknown plan search {plan_search!r}")
        if cost_model not in ("asymptotic", "estimates"):
            raise ValueError(f"unknown cost model {cost_model!r}")
        if encoding not in ENCODINGS:
            raise ValueError(
                f"unknown encoding {encoding!r}; pick one of {ENCODINGS}"
            )
        if statistics is not None and cost_model != "estimates":
            raise ValueError(
                "statistics only apply with cost_model='estimates'"
            )
        self.database = database
        self.plan_search = plan_search
        self.check_invariants = check_invariants
        self.cost_model = cost_model
        self.encoding = encoding
        # Arena encoding only: intern values into this shared
        # ValuePool (one per worker/connection) so independently built
        # results recombine by id -- see ArenaFactoriser.run.
        self.shared_pool = shared_pool
        # ``statistics`` lets a session share one catalogue across
        # engines instead of rescanning the database per engine.
        self._stats = statistics
        if cost_model == "estimates" and self._stats is None:
            from repro.costs.cardinality import Statistics

            self._stats = Statistics.of_database(database)

    # -- flat input path ------------------------------------------------------

    def optimal_tree(self, query: Query) -> FTree:
        """Optimal f-tree for the query result (all attributes)."""
        classes, edges = query_classes_and_edges(self.database, query)
        tree, _ = FTreeOptimiser(classes, edges).optimise()
        return tree

    def factorise_query(
        self, query: Query, tree: Optional[FTree] = None
    ) -> FactorisedRelation:
        """Factorised equi-join result over ``tree`` (constants applied).

        Constant conditions are pushed into the base relations before
        factorisation (they are the cheapest operators and evaluated
        first, Section 4); equality conditions then additionally mark
        the node constant so it floats to the root and drops out of
        the cost parameter.
        """
        query.validate_against(self.database.schema())
        if tree is None:
            tree = self.optimal_tree(query)
        relations: List[Relation] = []
        for name in query.relations:
            relation = self.database[name]
            for cond in query.constants:
                if cond.attribute in relation.schema:
                    relation = flat_select(relation, cond)
            relations.append(relation)
        data = factorise(
            relations, tree, encoding=self.encoding, pool=self.shared_pool
        )
        if self.encoding == "arena":
            fr = FactorisedRelation(tree, arena=data)
        else:
            fr = FactorisedRelation(tree, data)
        for cond in query.constants:
            if cond.op == "=":
                fr = ops.select_constant(fr, cond)
        if self.check_invariants:
            fr.validate()
        return fr

    def evaluate(self, query: Query) -> FactorisedRelation:
        """Full SPJ evaluation over the flat database."""
        fr = self.factorise_query(query)
        if query.projection is not None:
            fr = ops.project(fr, query.projection)
            if self.check_invariants:
                fr.validate()
        return fr

    # -- factorised input path --------------------------------------------------

    def plan_for(
        self,
        tree: FTree,
        equalities: Sequence[Tuple[str, str]],
    ) -> FPlan:
        """Optimise an f-plan for equality selections on ``tree``."""
        pairs = list(equalities)
        if self.plan_search == "exhaustive":
            return exhaustive_fplan(tree, pairs, stats=self._stats)
        return greedy_fplan(tree, pairs, stats=self._stats)

    def evaluate_on(
        self, fr: FactorisedRelation, query: Query
    ) -> Tuple[FactorisedRelation, FPlan]:
        """Evaluate a query over a factorised input relation.

        Returns the result and the f-plan chosen for the equality
        conditions (constants run first, projection last, exactly as
        in Section 4's operator ordering).
        """
        current = fr
        for cond in query.constants:
            if cond.attribute not in current.tree.attributes():
                raise QueryError(
                    f"unknown attribute {cond.attribute!r}"
                )
            current = ops.select_constant(current, cond)
            if self.check_invariants:
                current.validate()
        pairs = [(eq.left, eq.right) for eq in query.equalities]
        plan = self.plan_for(current.tree, pairs)
        current = plan.execute(current)
        if self.check_invariants:
            current.validate()
        if query.projection is not None:
            current = ops.project(current, query.projection)
            if self.check_invariants:
                current.validate()
        return current, plan
