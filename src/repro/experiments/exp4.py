"""Experiment 4: query evaluation on factorised data (Figure 8).

Follow-up queries of L equality conditions are evaluated (a) by FDB on
the *factorised* result of a K-equality query over the combinatorial
R = 4, A = 10 database -- executing the f-plan chosen by the full-search
optimiser -- and (b) by RDB as a single selection scan over the
materialised flat result.

Expected shape: FDB's factorised inputs and outputs stay orders of
magnitude smaller than the flat equivalents, and evaluation time
follows size; the gap closes only when the data shrinks to ~1000
tuples, where both engines answer in well under 0.1 s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.engine import FDB
from repro.query.query import EqualityCondition, Query
from repro.relational.operators import select_equality
from repro.workloads.generator import (
    combinatorial_database,
    random_equalities,
    random_followup_equalities,
)

DNF = float("nan")


@dataclass(frozen=True)
class Exp4Row:
    input_equalities: int  # K
    query_equalities: int  # L
    distribution: str
    fdb_result_singletons: float
    flat_result_elements: float
    fdb_time_seconds: float
    rdb_time_seconds: float
    #: Consuming the factorised *input* (enumerate every tuple, plus
    #: count and size) in each physical encoding; NaN when the flat
    #: materialisation was skipped as too large.
    consume_object_seconds: float = DNF
    consume_arena_seconds: float = DNF


def _measure_consumption(fr) -> (float, float):
    """Seconds to enumerate + count + size the factorised input, in
    the object encoding and in the arena encoding.

    This is the work RDB's side of Figure 8 starts from (materialising
    the flat input) and the canonical use of a *compiled* factorised
    result; the conversion itself is not timed -- an arena-evaluated
    pipeline holds its results in columns already.
    """
    order = fr.attributes
    fa = fr.to_arena()

    start = time.perf_counter()
    object_rows = sum(1 for _ in fr.rows(order))
    object_count, object_size = fr.count(), fr.size()
    object_seconds = time.perf_counter() - start

    start = time.perf_counter()
    arena_rows = sum(1 for _ in fa.rows(order))
    arena_count, arena_size = fa.count(), fa.size()
    arena_seconds = time.perf_counter() - start

    assert (object_rows, object_count, object_size) == (
        arena_rows,
        arena_count,
        arena_size,
    ), "encodings disagree while consuming the factorised input"
    return object_seconds, arena_seconds


def run_experiment4(
    k_values: Sequence[int] = tuple(range(1, 9)),
    l_values: Sequence[int] = tuple(range(1, 6)),
    distributions: Sequence[str] = ("uniform",),
    timeout: float = 60.0,
    max_flat_tuples: int = 2_000_000,
    seed: int = 0,
) -> List[Exp4Row]:
    """Figure 8: follow-up queries on factorised vs flat results."""
    rows: List[Exp4Row] = []
    for distribution in distributions:
        for k in k_values:
            db = combinatorial_database(
                distribution=distribution, seed=seed + 5
            )
            query = Query.make(
                db.names,
                equalities=random_equalities(db, k, seed=seed + k),
            )
            fdb = FDB(db, plan_search="exhaustive")
            fr = fdb.evaluate(query)
            if fr.is_empty():
                continue
            flat_count = fr.count()
            flat = None
            consume_object = consume_arena = DNF
            if flat_count <= max_flat_tuples:
                flat = fr.to_relation("flat")
                consume_object, consume_arena = _measure_consumption(fr)

            for l_eq in l_values:
                try:
                    eqs = random_followup_equalities(
                        fr.tree, l_eq, seed=seed + 13 * l_eq + k
                    )
                except ValueError:
                    continue
                followup = Query.make([], equalities=eqs)

                start = time.perf_counter()
                result, _plan = fdb.evaluate_on(fr, followup)
                fdb_time = time.perf_counter() - start
                fdb_size = float(result.size())

                if flat is None:
                    rdb_time = DNF
                    flat_size = float(result.flat_data_elements())
                else:
                    deadline = time.perf_counter() + timeout
                    start = time.perf_counter()
                    selected = flat
                    timed_out = False
                    for left, right in eqs:
                        selected = select_equality(
                            selected, EqualityCondition(left, right)
                        )
                        if time.perf_counter() > deadline:
                            timed_out = True
                            break
                    rdb_time = (
                        DNF
                        if timed_out
                        else time.perf_counter() - start
                    )
                    flat_size = float(
                        len(selected) * selected.schema.arity
                    )
                rows.append(
                    Exp4Row(
                        input_equalities=k,
                        query_equalities=l_eq,
                        distribution=distribution,
                        fdb_result_singletons=fdb_size,
                        flat_result_elements=flat_size,
                        fdb_time_seconds=fdb_time,
                        rdb_time_seconds=rdb_time,
                        consume_object_seconds=consume_object,
                        consume_arena_seconds=consume_arena,
                    )
                )
    return rows


def headers() -> List[str]:
    return [
        "K",
        "L",
        "dist",
        "FDB size",
        "flat size",
        "FDB t[s]",
        "RDB t[s]",
        "obj consume[s]",
        "arena consume[s]",
    ]


def as_cells(rows: Iterable[Exp4Row]) -> List[List[object]]:
    return [
        [
            row.input_equalities,
            row.query_equalities,
            row.distribution,
            row.fdb_result_singletons,
            row.flat_result_elements,
            row.fdb_time_seconds,
            row.rdb_time_seconds,
            row.consume_object_seconds,
            row.consume_arena_seconds,
        ]
        for row in rows
    ]
