"""Experiment 2: query optimisation on factorised data (Figures 6, 9).

Input f-trees are results of queries with K equalities over R = 4
relations with A = 10 attributes; the new queries have L further
equalities over the result's attribute classes (K + L < A).  For each
(K, L) we compare the *full-search* (Section 4.2) and *greedy*
(Section 4.3) optimisers on

- the f-plan cost ``s(f)`` and result f-tree cost ``s(T)`` (Figure 6),
- the optimisation time (Figure 9).

Expected shape: greedy is optimal or near-optimal except for small K
with large L; all average plan costs lie in [1, 2]; greedy runs 2-3
orders of magnitude faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.costs.cost_model import clear_cover_cache
from repro.optimiser.exhaustive import exhaustive_fplan
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    query_classes_and_edges,
)
from repro.optimiser.greedy import greedy_fplan
from repro.workloads.generator import (
    random_database,
    random_followup_equalities,
    random_query,
)


@dataclass(frozen=True)
class Exp2Row:
    input_equalities: int  # K
    query_equalities: int  # L
    full_plan_cost: float  # s(f), full search
    full_result_cost: float  # s(T_final), full search
    greedy_plan_cost: float
    greedy_result_cost: float
    full_time_seconds: float
    greedy_time_seconds: float


def run_experiment2(
    k_values: Sequence[int] = tuple(range(1, 9)),
    l_values: Sequence[int] = tuple(range(1, 7)),
    relations: int = 4,
    attributes: int = 10,
    repeats: int = 3,
    tuples: int = 10,
    seed: int = 0,
) -> List[Exp2Row]:
    """Figures 6 and 9: plan quality and optimisation time."""
    rows: List[Exp2Row] = []
    for k in k_values:
        for l_eq in l_values:
            if k + l_eq >= attributes:
                continue
            samples: List[Tuple[float, float, float, float, float, float]] = []
            for rep in range(repeats):
                run_seed = seed + 997 * k + 31 * l_eq + rep
                db = random_database(
                    relations, attributes, tuples, seed=run_seed
                )
                query = random_query(db, k, seed=run_seed + 1)
                classes, edges = query_classes_and_edges(db, query)
                tree, _ = FTreeOptimiser(classes, edges).optimise()
                try:
                    followups = random_followup_equalities(
                        tree, l_eq, seed=run_seed + 2
                    )
                except ValueError:
                    continue  # result tree too small for L merges

                clear_cover_cache()
                start = time.perf_counter()
                full = exhaustive_fplan(tree, followups)
                full_time = time.perf_counter() - start

                clear_cover_cache()
                start = time.perf_counter()
                greedy = greedy_fplan(tree, followups)
                greedy_time = time.perf_counter() - start

                samples.append(
                    (
                        float(full.cost.bottleneck),
                        float(full.cost.final),
                        float(greedy.cost.bottleneck),
                        float(greedy.cost.final),
                        full_time,
                        greedy_time,
                    )
                )
            if not samples:
                continue
            n = len(samples)
            mean = [sum(col) / n for col in zip(*samples)]
            rows.append(
                Exp2Row(
                    input_equalities=k,
                    query_equalities=l_eq,
                    full_plan_cost=mean[0],
                    full_result_cost=mean[1],
                    greedy_plan_cost=mean[2],
                    greedy_result_cost=mean[3],
                    full_time_seconds=mean[4],
                    greedy_time_seconds=mean[5],
                )
            )
    return rows


def headers() -> List[str]:
    return [
        "K",
        "L",
        "s(f) full",
        "s(T) full",
        "s(f) greedy",
        "s(T) greedy",
        "t full [s]",
        "t greedy [s]",
    ]


def as_cells(rows: Iterable[Exp2Row]) -> List[List[object]]:
    return [
        [
            row.input_equalities,
            row.query_equalities,
            row.full_plan_cost,
            row.full_result_cost,
            row.greedy_plan_cost,
            row.greedy_result_cost,
            row.full_time_seconds,
            row.greedy_time_seconds,
        ]
        for row in rows
    ]
