"""Experiment 1: query optimisation on flat data (Figure 5).

"For schemas with A = 40 attributes over R = 1..8 relations, we
optimised queries of K = 1..9 equality selections" and report (left
plot) the time to find an optimal f-tree and (right plot) the cost
``s(T)`` of the chosen tree.

Expected shape: cost 1 for up to two relations; mostly <= 2 even for
nine equalities on eight relations; optimisation time grows with both
R and K but stays interactive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Sequence

from repro.costs.cost_model import clear_cover_cache
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    query_classes_and_edges,
)
from repro.workloads.generator import random_database, random_query


@dataclass(frozen=True)
class Exp1Row:
    relations: int
    equalities: int
    mean_time_seconds: float
    mean_cost: float
    max_cost: float


def run_experiment1(
    relations_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    equalities_values: Sequence[int] = tuple(range(1, 10)),
    attributes: int = 40,
    repeats: int = 5,
    tuples: int = 10,
    seed: int = 0,
    per_run_budget: float = 20.0,
) -> List[Exp1Row]:
    """Figure 5: optimal f-tree time and cost per (R, K).

    The input *data* is irrelevant to this experiment (only the schema
    matters), so tiny relations are generated.  ``per_run_budget``
    bounds each optimisation: past it the DP commits greedily (see
    :class:`FTreeOptimiser`), so a pathological random instance slows
    a sweep by at most the budget.
    """
    rows: List[Exp1Row] = []
    for r in relations_values:
        for k in equalities_values:
            if k > attributes - 1:
                continue
            times: List[float] = []
            costs: List[Fraction] = []
            for rep in range(repeats):
                run_seed = seed + 1000 * r + 10 * k + rep
                db = random_database(
                    r, attributes, tuples, seed=run_seed
                )
                query = random_query(db, k, seed=run_seed + 1)
                classes, edges = query_classes_and_edges(db, query)
                clear_cover_cache()
                start = time.perf_counter()
                _, cost = FTreeOptimiser(
                    classes, edges, time_budget=per_run_budget
                ).optimise()
                times.append(time.perf_counter() - start)
                costs.append(cost)
            rows.append(
                Exp1Row(
                    relations=r,
                    equalities=k,
                    mean_time_seconds=sum(times) / len(times),
                    mean_cost=sum(float(c) for c in costs)
                    / len(costs),
                    max_cost=float(max(costs)),
                )
            )
    return rows


def headers() -> List[str]:
    return ["R", "K", "opt time [s]", "mean s(T)", "max s(T)"]


def as_cells(rows: Iterable[Exp1Row]) -> List[List[object]]:
    return [
        [
            row.relations,
            row.equalities,
            row.mean_time_seconds,
            row.mean_cost,
            row.max_cost,
        ]
        for row in rows
    ]
