"""The experimental harness of Section 5.

One module per experiment; each exposes a ``run_*`` function returning
plain result rows (named tuples) plus a formatter that prints the same
series the paper plots.  The benchmarks under ``benchmarks/`` and the
integration tests drive these functions at different scales.

=============  ==========================  =============================
experiment     paper figure                 module
=============  ==========================  =============================
Experiment 1   Figure 5 (left + right)      :mod:`repro.experiments.exp1`
Experiment 2   Figure 6 and Figure 9        :mod:`repro.experiments.exp2`
Experiment 3   Figure 7 (all panels)        :mod:`repro.experiments.exp3`
Experiment 4   Figure 8 (both panels)       :mod:`repro.experiments.exp4`
=============  ==========================  =============================
"""

from repro.experiments.exp1 import Exp1Row, run_experiment1
from repro.experiments.exp2 import Exp2Row, run_experiment2
from repro.experiments.exp3 import Exp3Row, run_experiment3
from repro.experiments.exp4 import Exp4Row, run_experiment4
from repro.experiments.report import format_table

__all__ = [
    "Exp1Row",
    "Exp2Row",
    "Exp3Row",
    "Exp4Row",
    "format_table",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_experiment4",
]
