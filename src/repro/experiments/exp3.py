"""Experiment 3: query evaluation on flat data (Figure 7).

Two workload families:

- **scaling panels** (left/middle columns): three ternary relations of
  N tuples each, values uniform or Zipf over [1, 100], queries with
  K = 2..4 equalities; result sizes and evaluation times vs N;
- **combinatorial panel** (right column): two binary relations of 8^2
  tuples and two ternary relations of 8^3 tuples over [1, 20]; result
  sizes and times vs K = 1..8.

For each configuration we evaluate with FDB (factorised result;
size = #singletons), RDB (flat result; size = #tuples x arity) and
SQLite (time only, via an aggregation that forces full evaluation).
Configurations exceeding the timeout are reported as NaN, mirroring
the paper's missing data points under its 100-second timeout.

Expected shape: the factorised size is orders of magnitude below the
flat size and the gap *grows* with N (power laws with different
exponents); times follow sizes; Zipf skew widens the gap.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.engine import FDB
from repro.query.query import Query
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.sqlite_engine import SQLiteEngine
from repro.workloads.generator import (
    combinatorial_database,
    random_database,
    random_equalities,
)

DNF = float("nan")


@dataclass(frozen=True)
class Exp3Row:
    dataset: str  # "scaling" or "combinatorial"
    distribution: str
    tuples: int  # N per relation (0 for combinatorial)
    equalities: int  # K
    fdb_size_singletons: float
    flat_size_elements: float
    fdb_time_seconds: float
    rdb_time_seconds: float
    sqlite_time_seconds: float
    #: Plan fixed, evaluation only: factorise + report size and count,
    #: in the object encoding vs the columnar arena encoding.
    fdb_object_eval_seconds: float = DNF
    fdb_arena_eval_seconds: float = DNF


def _measure_fdb(db: Database, query: Query) -> (float, float):
    fdb = FDB(db)
    start = time.perf_counter()
    fr = fdb.evaluate(query)
    elapsed = time.perf_counter() - start
    return float(fr.size()), elapsed, fr


def _measure_encodings(db: Database, query: Query) -> (float, float):
    """Per-encoding evaluation time with the optimiser factored out.

    Both encodings evaluate the same fixed f-tree (the optimal one) and
    then report size and count -- exactly what every Figure 7 cell
    needs -- so the pair isolates the physical-encoding cost the arena
    exists to cut.  Raises AssertionError if the encodings ever
    disagree on those measures (they must not).
    """
    object_engine = FDB(db)
    tree = object_engine.optimal_tree(query)

    start = time.perf_counter()
    fr = object_engine.factorise_query(query, tree=tree)
    object_size, object_count = fr.size(), fr.count()
    object_seconds = time.perf_counter() - start

    arena_engine = FDB(db, encoding="arena")
    start = time.perf_counter()
    fa = arena_engine.factorise_query(query, tree=tree)
    arena_size, arena_count = fa.size(), fa.count()
    arena_seconds = time.perf_counter() - start

    assert (object_size, object_count) == (arena_size, arena_count), (
        f"encodings disagree on {query}: "
        f"{(object_size, object_count)} != {(arena_size, arena_count)}"
    )
    return object_seconds, arena_seconds


def _measure_rdb(
    db: Database, query: Query, timeout: float, max_rows: int
) -> (float, float):
    engine = RelationalEngine(
        db, budget=Budget(timeout_seconds=timeout, max_rows=max_rows)
    )
    start = time.perf_counter()
    try:
        flat = engine.evaluate(query)
    except BudgetExceeded:
        return DNF, DNF
    elapsed = time.perf_counter() - start
    return float(len(flat) * flat.schema.arity), elapsed


def _measure_sqlite(
    db: Database, query: Query, timeout: float
) -> float:
    with SQLiteEngine(db) as sqlite:
        start = time.perf_counter()
        try:
            sqlite.count_with_timeout(query, timeout)
        except BudgetExceeded:
            return DNF
        return time.perf_counter() - start


def _flat_size_via_factorised(fr) -> float:
    """Exact flat size computed on the factorisation (no flattening).

    When RDB times out, the paper still knows the flat result size;
    counting on the factorised form gives it exactly and cheaply.
    """
    try:
        return float(fr.flat_data_elements())
    except OverflowError:  # pragma: no cover - astronomically large
        return math.inf


def run_experiment3(
    sizes: Sequence[int] = (1000, 3162, 10000),
    k_values: Sequence[int] = (2, 3, 4),
    distributions: Sequence[str] = ("uniform", "zipf"),
    domain: int = 100,
    timeout: float = 60.0,
    max_rows: int = 3_000_000,
    include_combinatorial: bool = True,
    combinatorial_k: Sequence[int] = tuple(range(1, 9)),
    seed: int = 0,
) -> List[Exp3Row]:
    """Figure 7, all panels."""
    rows: List[Exp3Row] = []
    for distribution in distributions:
        for n in sizes:
            for k in k_values:
                run_seed = seed + hash((distribution, n, k)) % 10_000
                db = random_database(
                    3,
                    9,
                    n,
                    domain=domain,
                    distribution=distribution,
                    seed=run_seed,
                )
                query = Query.make(
                    db.names,
                    equalities=random_equalities(
                        db, k, seed=run_seed + 1
                    ),
                )
                fdb_size, fdb_time, fr = _measure_fdb(db, query)
                object_eval, arena_eval = _measure_encodings(db, query)
                flat_size, rdb_time = _measure_rdb(
                    db, query, timeout, max_rows
                )
                rdb_dnf = rdb_time != rdb_time  # NaN: timed out
                if flat_size != flat_size:
                    flat_size = _flat_size_via_factorised(fr)
                # SQLite runs ~3x slower than RDB throughout Section 5:
                # when RDB already timed out, SQLite certainly would,
                # so skip the attempt and record the DNF directly.
                sqlite_time = (
                    DNF
                    if rdb_dnf
                    else _measure_sqlite(db, query, timeout)
                )
                rows.append(
                    Exp3Row(
                        dataset="scaling",
                        distribution=distribution,
                        tuples=n,
                        equalities=k,
                        fdb_size_singletons=fdb_size,
                        flat_size_elements=flat_size,
                        fdb_time_seconds=fdb_time,
                        rdb_time_seconds=rdb_time,
                        sqlite_time_seconds=sqlite_time,
                        fdb_object_eval_seconds=object_eval,
                        fdb_arena_eval_seconds=arena_eval,
                    )
                )
        if include_combinatorial:
            for k in combinatorial_k:
                db = combinatorial_database(
                    distribution=distribution, seed=seed + 77
                )
                query = Query.make(
                    db.names,
                    equalities=random_equalities(
                        db, k, seed=seed + k
                    ),
                )
                fdb_size, fdb_time, fr = _measure_fdb(db, query)
                object_eval, arena_eval = _measure_encodings(db, query)
                flat_size, rdb_time = _measure_rdb(
                    db, query, timeout, max_rows
                )
                rdb_dnf = rdb_time != rdb_time
                if flat_size != flat_size:
                    flat_size = _flat_size_via_factorised(fr)
                sqlite_time = (
                    DNF
                    if rdb_dnf
                    else _measure_sqlite(db, query, timeout)
                )
                rows.append(
                    Exp3Row(
                        dataset="combinatorial",
                        distribution=distribution,
                        tuples=0,
                        equalities=k,
                        fdb_size_singletons=fdb_size,
                        flat_size_elements=flat_size,
                        fdb_time_seconds=fdb_time,
                        rdb_time_seconds=rdb_time,
                        sqlite_time_seconds=sqlite_time,
                        fdb_object_eval_seconds=object_eval,
                        fdb_arena_eval_seconds=arena_eval,
                    )
                )
    return rows


def headers() -> List[str]:
    return [
        "dataset",
        "dist",
        "N",
        "K",
        "FDB size",
        "flat size",
        "FDB t[s]",
        "RDB t[s]",
        "SQLite t[s]",
        "obj eval[s]",
        "arena eval[s]",
    ]


def as_cells(rows: Iterable[Exp3Row]) -> List[List[object]]:
    return [
        [
            row.dataset,
            row.distribution,
            row.tuples,
            row.equalities,
            row.fdb_size_singletons,
            row.flat_size_elements,
            row.fdb_time_seconds,
            row.rdb_time_seconds,
            row.sqlite_time_seconds,
            row.fdb_object_eval_seconds,
            row.fdb_arena_eval_seconds,
        ]
        for row in rows
    ]
