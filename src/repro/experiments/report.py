"""Small text-table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule.

    >>> print(format_table(["a", "b"], [[1, "x"], [23, "y"]]))
    a  | b
    ---+--
    1  | x
    23 | y
    """
    materialised: List[List[str]] = [
        [_cell(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = " | ".join(
        h.ljust(w) for h, w in zip(headers, widths)
    ).rstrip()
    rule = "-+-".join("-" * w for w in widths)
    lines = [header, rule]
    for row in materialised:
        lines.append(
            " | ".join(
                c.ljust(w) for c, w in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN marks a DNF/timeout
            return "timeout"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
