"""In-memory relations with set semantics and sorted tuple storage.

The paper's RDB engine receives its relations sorted, enabling optimal
multi-way sort-merge join plans (Section 5, "Competing Engines").  We
keep the same invariant: a :class:`Relation` stores distinct tuples in
lexicographic order, so merge-based operators can rely on the order
without re-sorting.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.schema import RelationSchema, SchemaError

Row = Tuple[object, ...]


class Relation:
    """A sorted, duplicate-free in-memory relation.

    >>> r = Relation.from_rows("R", ("a", "b"), [(2, 1), (1, 2), (2, 1)])
    >>> list(r)
    [(1, 2), (2, 1)]
    >>> r.cardinality
    2
    """

    __slots__ = ("schema", "_rows", "_distinct_cache")

    def __init__(self, schema: RelationSchema, rows: List[Row]) -> None:
        """Build from ``rows`` assumed sorted and distinct.

        Use :meth:`from_rows` for unsorted input.
        """
        self.schema = schema
        self._rows = rows
        self._distinct_cache: Dict[str, int] = {}

    @staticmethod
    def from_rows(
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> "Relation":
        """Normalise arbitrary row input: tuple-ify, dedupe, sort."""
        schema = RelationSchema(name, tuple(attributes))
        normalised = sorted({tuple(row) for row in rows})
        for row in normalised:
            if len(row) != schema.arity:
                raise SchemaError(
                    f"row {row!r} does not match arity {schema.arity} "
                    f"of {name!r}"
                )
        return Relation(schema, normalised)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self.schema.attributes

    @property
    def cardinality(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[Row]:
        """The sorted tuple list (do not mutate)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        import bisect

        key = tuple(row)
        idx = bisect.bisect_left(self._rows, key)
        return idx < len(self._rows) and self._rows[idx] == key

    def __eq__(self, other: object) -> bool:
        """Equality as sets of tuples over the same attribute set."""
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.attributes) != set(other.attributes):
            return False
        if self.attributes == other.attributes:
            return self._rows == other._rows
        # Align attribute order before comparing.
        perm = [other.schema.index_of(a) for a in self.attributes]
        reordered = sorted(tuple(row[i] for i in perm) for row in other)
        return self._rows == reordered

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {self.attributes}, "
            f"{self.cardinality} rows)"
        )

    def distinct_count(self, attribute: str) -> int:
        """Number of distinct values of ``attribute`` (cached)."""
        if attribute not in self._distinct_cache:
            idx = self.schema.index_of(attribute)
            self._distinct_cache[attribute] = len(
                {row[idx] for row in self._rows}
            )
        return self._distinct_cache[attribute]

    def values(self, attribute: str) -> List[object]:
        """Sorted distinct values of ``attribute``."""
        idx = self.schema.index_of(attribute)
        return sorted({row[idx] for row in self._rows})

    def renamed(
        self, new_name: str, mapping: Optional[Dict[str, str]] = None
    ) -> "Relation":
        """Copy with renamed relation/attributes; rows are shared."""
        return Relation(
            self.schema.renamed(new_name, mapping or {}), self._rows
        )

    def sorted_by(self, attributes: Sequence[str]) -> List[Row]:
        """Rows sorted by the given attributes first (stable)."""
        positions = [self.schema.index_of(a) for a in attributes]
        return sorted(
            self._rows, key=lambda row: tuple(row[p] for p in positions)
        )

    def head(self, n: int = 10) -> List[Row]:
        """First ``n`` rows, for display."""
        return self._rows[:n]

    def pretty(self, limit: int = 10) -> str:
        """A small fixed-width rendering for examples and docs."""
        header = " | ".join(self.attributes)
        rule = "-" * len(header)
        body = [" | ".join(str(v) for v in row) for row in self.head(limit)]
        suffix = [] if len(self) <= limit else [f"... ({len(self)} rows)"]
        return "\n".join([header, rule, *body, *suffix])
