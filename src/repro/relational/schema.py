"""Relation schemas.

A schema is an ordered tuple of globally-unique attribute names.  The
paper treats attributes positionally within a relation but identifies
them globally for join conditions; we follow that convention, so two
relations in one database never share an attribute name (self-joins are
expressed by registering a renamed copy, see
:meth:`repro.relational.database.Database.add_renamed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple


class SchemaError(ValueError):
    """Raised for malformed schemas or schema mismatches."""


@dataclass(frozen=True)
class RelationSchema:
    """An ordered relation schema: a name plus attribute names.

    >>> s = RelationSchema("R", ("a", "b"))
    >>> s.index_of("b")
    1
    >>> s.project(["b"]).attributes
    ('b',)
    """

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"duplicate attribute in schema of {self.name!r}: "
                f"{self.attributes}"
            )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} not in relation {self.name!r} "
                f"with schema {self.attributes}"
            ) from None

    def positions(self) -> Dict[str, int]:
        """Mapping attribute -> position."""
        return {attr: i for i, attr in enumerate(self.attributes)}

    def project(self, attributes: Sequence[str]) -> "RelationSchema":
        """Schema restricted to ``attributes`` (kept in the given order)."""
        for attr in attributes:
            self.index_of(attr)
        return RelationSchema(self.name, tuple(attributes))

    def renamed(
        self, new_name: str, mapping: Dict[str, str]
    ) -> "RelationSchema":
        """Rename the relation and attributes through ``mapping``."""
        return RelationSchema(
            new_name,
            tuple(mapping.get(attr, attr) for attr in self.attributes),
        )

    def concat(self, other: "RelationSchema", name: str) -> "RelationSchema":
        """Schema of the Cartesian product with ``other``."""
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise SchemaError(
                f"product schemas overlap on {sorted(overlap)}"
            )
        return RelationSchema(name, self.attributes + other.attributes)
