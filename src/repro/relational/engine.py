"""The RDB engine: flat evaluation of SPJ queries.

This is the paper's "homebred in-memory" comparator.  It evaluates a
:class:`~repro.query.Query` over a :class:`~repro.relational.Database`
with the classic recipe:

1. push constant selections to the base relations,
2. enforce intra-relation equalities,
3. join relations pairwise with sort-merge joins, ordering the joins
   greedily by estimated output cardinality (the stand-in for the
   paper's "hand-crafted optimised query plan"),
4. apply the projection last.

Evaluation honours an optional :class:`~repro.relational.budget.Budget`
so that benchmark configurations which would explode (flat many-to-many
join results) abort exactly like the paper's 100-second timeout.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.query.query import EqualityCondition, Query, QueryError
from repro.relational.budget import Budget
from repro.relational.database import Database
from repro.relational.operators import (
    hash_join,
    project,
    select_constant,
    select_equality,
    sort_merge_join,
)
from repro.relational.relation import Relation


class RelationalEngine:
    """Flat SPJ evaluation with greedy join ordering.

    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 10), (2, 20)])
    >>> _ = db.add_rows("S", ("c", "d"), [(10, 5), (30, 6)])
    >>> engine = RelationalEngine(db)
    >>> result = engine.evaluate(Query.make(["R", "S"], [("b", "c")]))
    >>> list(result)
    [(1, 10, 10, 5)]
    """

    def __init__(
        self,
        database: Database,
        join_method: str = "sort-merge",
        budget: Optional[Budget] = None,
    ) -> None:
        if join_method not in ("sort-merge", "hash"):
            raise ValueError(f"unknown join method {join_method!r}")
        self.database = database
        self.join_method = join_method
        self.budget = budget

    # -- planning helpers -------------------------------------------------

    def _classes(self, query: Query) -> List[FrozenSet[str]]:
        attrs: List[str] = []
        for name in query.relations:
            attrs.extend(self.database[name].attributes)
        return query.attribute_classes(attrs)

    def _estimate_join_size(
        self,
        left: Relation,
        right: Relation,
        pairs: Sequence[Tuple[str, str]],
    ) -> float:
        """System-R style estimate: |L||R| / prod max(V(L,a), V(R,b))."""
        size = float(len(left)) * float(len(right))
        for la, rb in pairs:
            denom = max(left.distinct_count(la), right.distinct_count(rb), 1)
            size /= denom
        return size

    @staticmethod
    def _join_pairs(
        left: Relation,
        right: Relation,
        classes: Sequence[FrozenSet[str]],
    ) -> List[Tuple[str, str]]:
        """One (left, right) attribute pair per class spanning both sides."""
        lattrs = set(left.attributes)
        rattrs = set(right.attributes)
        pairs: List[Tuple[str, str]] = []
        for cls in classes:
            in_left = sorted(cls & lattrs)
            in_right = sorted(cls & rattrs)
            if in_left and in_right:
                pairs.append((in_left[0], in_right[0]))
        return pairs

    def _prepare_base(self, query: Query) -> List[Relation]:
        """Constant selections + intra-relation equalities per relation."""
        classes = self._classes(query)
        prepared: List[Relation] = []
        for name in query.relations:
            relation = self.database[name]
            for cond in query.constants:
                if cond.attribute in relation.schema:
                    relation = select_constant(relation, cond)
            for cls in classes:
                inside = sorted(cls & set(relation.attributes))
                for other in inside[1:]:
                    relation = select_equality(
                        relation, EqualityCondition(inside[0], other)
                    )
            prepared.append(relation)
        return prepared

    # -- evaluation --------------------------------------------------------

    def evaluate(self, query: Query) -> Relation:
        """Evaluate ``query`` and return the flat result relation."""
        query.validate_against(self.database.schema())
        if not query.relations:
            raise QueryError("query must reference at least one relation")
        if self.budget is not None:
            self.budget.restart()

        classes = self._classes(query)
        pending = self._prepare_base(query)

        join = sort_merge_join if self.join_method == "sort-merge" else (
            hash_join
        )

        # Greedy join ordering: start from the smallest relation and
        # repeatedly pick the join with the smallest estimated output.
        current = min(pending, key=len)
        pending = [r for r in pending if r is not current]
        step = 0
        while pending:
            best_idx, best_pairs, best_est = -1, [], float("inf")
            for idx, candidate in enumerate(pending):
                pairs = self._join_pairs(current, candidate, classes)
                est = self._estimate_join_size(current, candidate, pairs)
                # Prefer connected joins over Cartesian products.
                if not pairs:
                    est = est * 1e6 + 1e18
                if est < best_est:
                    best_idx, best_pairs, best_est = idx, pairs, est
            candidate = pending.pop(best_idx)
            step += 1
            current = join(
                current,
                candidate,
                best_pairs,
                name=f"step{step}",
                budget=self.budget,
            )
            if self.budget is not None:
                self.budget.check_now()

        if query.projection is not None:
            current = project(current, query.projection)
        return current

    def count(self, query: Query) -> int:
        """Number of result tuples (evaluates fully; for tests)."""
        return len(self.evaluate(query))

    def result_data_elements(self, query: Query) -> int:
        """Result size in *data elements* (#tuples x arity).

        This is the unit used by Figure 7/8 for the relational engines:
        the flat result stores one value per attribute per tuple.
        """
        result = self.evaluate(query)
        return len(result) * result.schema.arity
