"""Physical operators of the flat relational engine.

These are textbook in-memory operators with set semantics: selection,
projection, Cartesian product, and equi-joins in two flavours -- a
sort-merge join (the paper's RDB uses "optimal relational join plans
implemented as multi-way sort-merge joins") and a hash join used when
inputs are not conveniently ordered.

All operators consume and produce :class:`~repro.relational.relation.
Relation` objects and preserve the sorted/distinct invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.query import ConstantCondition, EqualityCondition
from repro.relational.budget import Budget
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema


def select_constant(relation: Relation, cond: ConstantCondition) -> Relation:
    """``sigma_{A theta c}`` on a flat relation."""
    idx = relation.schema.index_of(cond.attribute)
    rows = [row for row in relation.rows if cond.test(row[idx])]
    return Relation(relation.schema, rows)


def select_equality(relation: Relation, cond: EqualityCondition) -> Relation:
    """``sigma_{A = B}`` where both attributes are in ``relation``."""
    left = relation.schema.index_of(cond.left)
    right = relation.schema.index_of(cond.right)
    rows = [row for row in relation.rows if row[left] == row[right]]
    return Relation(relation.schema, rows)


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """``pi_A`` with duplicate elimination."""
    positions = [relation.schema.index_of(a) for a in attributes]
    rows = sorted({tuple(row[p] for p in positions) for row in relation})
    return Relation(relation.schema.project(attributes), rows)


def product(
    left: Relation,
    right: Relation,
    name: str = "x",
    budget: Optional[Budget] = None,
) -> Relation:
    """Cartesian product; output stays lexicographically sorted."""
    schema = left.schema.concat(right.schema, name)
    rows: List[Row] = []
    for lrow in left.rows:
        if budget is not None:
            budget.check(len(rows))
        for rrow in right.rows:
            rows.append(lrow + rrow)
    return Relation(schema, rows)


def _join_schema(left: Relation, right: Relation, name: str) -> RelationSchema:
    return left.schema.concat(right.schema, name)


def sort_merge_join(
    left: Relation,
    right: Relation,
    pairs: Sequence[Tuple[str, str]],
    name: str = "join",
    budget: Optional[Budget] = None,
) -> Relation:
    """Equi-join on ``pairs`` of (left attribute, right attribute).

    Both sides are sorted by their join keys, then merged; groups of
    equal keys produce the Cartesian product of their rows (general
    many-to-many behaviour).
    """
    if not pairs:
        return product(left, right, name, budget=budget)
    lpos = [left.schema.index_of(a) for a, _ in pairs]
    rpos = [right.schema.index_of(b) for _, b in pairs]

    lrows = sorted(left.rows, key=lambda r: tuple(r[p] for p in lpos))
    rrows = sorted(right.rows, key=lambda r: tuple(r[p] for p in rpos))

    schema = _join_schema(left, right, name)
    out: List[Row] = []
    i = j = 0
    while i < len(lrows) and j < len(rrows):
        lkey = tuple(lrows[i][p] for p in lpos)
        rkey = tuple(rrows[j][p] for p in rpos)
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            i_end = i
            while i_end < len(lrows) and (
                tuple(lrows[i_end][p] for p in lpos) == lkey
            ):
                i_end += 1
            j_end = j
            while j_end < len(rrows) and (
                tuple(rrows[j_end][p] for p in rpos) == rkey
            ):
                j_end += 1
            for li in range(i, i_end):
                if budget is not None:
                    budget.check(len(out))
                for rj in range(j, j_end):
                    out.append(lrows[li] + rrows[rj])
            i, j = i_end, j_end
    out.sort()
    return Relation(schema, out)


def hash_join(
    left: Relation,
    right: Relation,
    pairs: Sequence[Tuple[str, str]],
    name: str = "join",
    budget: Optional[Budget] = None,
) -> Relation:
    """Equi-join via a hash table on the smaller input."""
    if not pairs:
        return product(left, right, name, budget=budget)
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_is_left = build is left
    bpos = [
        build.schema.index_of(a if build_is_left else b) for a, b in pairs
    ]
    ppos = [
        probe.schema.index_of(b if build_is_left else a) for a, b in pairs
    ]

    table: Dict[Tuple[object, ...], List[Row]] = {}
    for row in build.rows:
        table.setdefault(tuple(row[p] for p in bpos), []).append(row)

    schema = _join_schema(left, right, name)
    out: List[Row] = []
    for row in probe.rows:
        if budget is not None:
            budget.check(len(out))
        for match in table.get(tuple(row[p] for p in ppos), ()):
            out.append(match + row if build_is_left else row + match)
    out.sort()
    return Relation(schema, out)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations over the same attribute order."""
    if left.attributes != right.attributes:
        perm = [right.schema.index_of(a) for a in left.attributes]
        rrows = [tuple(row[i] for i in perm) for row in right]
    else:
        rrows = list(right.rows)
    rows = sorted(set(left.rows) | set(rrows))
    return Relation(left.schema, rows)
