"""Plain-text I/O for relations and databases.

The paper's FDB and RDB "use the plain text format" to read their
inputs; this module provides the equivalent: whitespace/comma separated
value files with a header line of attribute names.  Values that parse
as integers are loaded as ``int`` (the experiments use 8-byte integer
singletons), everything else stays a string.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, List, Sequence

from repro.relational.database import Database
from repro.relational.relation import Relation


def _coerce(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token


def load_relation_text(
    name: str, text: str, delimiter: str = ","
) -> Relation:
    """Parse a relation from CSV text with a header row.

    >>> r = load_relation_text("R", "a,b\\n1,2\\n3,x\\n")
    >>> list(r)
    [(1, 2), (3, 'x')]
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"empty input for relation {name!r}")
    header = [token.strip() for token in rows[0]]
    data = [
        tuple(_coerce(token.strip()) for token in row) for row in rows[1:]
    ]
    return Relation.from_rows(name, header, data)


def load_relation(path: str, name: str = "", delimiter: str = ",") -> Relation:
    """Load a relation from a CSV file; name defaults to the stem."""
    if not name:
        name = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8") as handle:
        return load_relation_text(name, handle.read(), delimiter)


def dump_relation(relation: Relation, path: str, delimiter: str = ",") -> None:
    """Write a relation as CSV with a header row."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attributes)
        writer.writerows(relation.rows)


def load_database(
    paths: Sequence[str], delimiter: str = ","
) -> Database:
    """Load several CSV files into one database."""
    db = Database()
    for path in paths:
        db.add(load_relation(path, delimiter=delimiter))
    return db


def dump_database(
    database: Database, directory: str, delimiter: str = ","
) -> List[str]:
    """Write every relation to ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for relation in database:
        path = os.path.join(directory, f"{relation.name}.csv")
        dump_relation(relation, path, delimiter)
        paths.append(path)
    return paths
